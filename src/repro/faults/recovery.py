"""Drive a scenario through the platform with faults injected.

:func:`run_with_faults` is the fault-aware sibling of
:func:`~repro.auction.round_driver.replay_scenario`: it applies a
:class:`~repro.faults.plan.FaultPlan` (or draws one from a
:class:`~repro.faults.plan.FaultConfig` and a seed) while feeding the
scenario through :class:`~repro.auction.CrowdsourcingPlatform`, lets the
platform's recovery machinery reallocate failed tasks, and returns the
finalized outcome together with complete fault bookkeeping.  With
``paired=True`` it also runs the *same* bids fault-free on a second
platform, enabling welfare-degradation metrics.

Every recovered outcome is sanitized by default: structural feasibility
(constraints (4)-(6)), individual rationality for paying winners, and
zero payments to non-deliverers are enforced via
:func:`repro.analysis.sanitizer.sanitize_outcome`.
"""

from __future__ import annotations

import dataclasses
import os
from typing import (
    Dict,
    List,
    Mapping,
    Optional,
    Set,
    Tuple,
    Union,
)

import numpy as np

from repro.agents.base import BiddingStrategy
from repro.analysis.sanitizer import sanitize_outcome
from repro.auction.events import AuctionEvent, TaskFailed
from repro.auction.platform import CrowdsourcingPlatform
from repro.errors import FaultError, SanitizationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultConfig, FaultPlan
from repro.metrics.reliability import ReliabilityReport, reliability_report
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.scenario import Scenario


@dataclasses.dataclass(frozen=True)
class FaultReport:
    """Complete bookkeeping of one fault-injected run.

    Attributes
    ----------
    plan:
        The fault schedule that was applied.
    submitted / lost_bids / delayed_bids:
        Phones whose bid reached the platform, never reached it, and
        reached it late (delayed bids also appear in ``submitted``).
    dropped:
        Phones that departed early (the reported dropouts).
    failed_deliverers / withheld:
        Winners whose delivery failed, and phones whose payment was
        withheld (identical sets by construction).
    delivered:
        Winners whose delivery was confirmed and paid.
    reassignments:
        Per-task recovery chain lengths (``task_id -> count``).
    failure_events:
        Every ``TaskFailed`` incident, in platform order.
    failed_tasks / recovered_tasks / abandoned_tasks:
        Tasks that failed at least once; the subset ultimately delivered
        by a replacement winner; the subset that ended unserved.
    """

    plan: FaultPlan
    submitted: Tuple[int, ...]
    lost_bids: Tuple[int, ...]
    delayed_bids: Tuple[int, ...]
    dropped: Tuple[int, ...]
    failed_deliverers: Tuple[int, ...]
    withheld: Tuple[int, ...]
    delivered: Tuple[int, ...]
    reassignments: Mapping[int, int]
    failure_events: Tuple[TaskFailed, ...]
    failed_tasks: Tuple[int, ...]
    recovered_tasks: Tuple[int, ...]
    abandoned_tasks: Tuple[int, ...]


@dataclasses.dataclass(frozen=True)
class FaultyRunResult:
    """Everything produced by one fault-injected platform run.

    Attributes
    ----------
    outcome / events:
        The recovered :class:`~repro.model.AuctionOutcome` and the full
        platform event log (including the fault events).
    report:
        The :class:`FaultReport` bookkeeping.
    result:
        The metric bundle of the faulty run.
    fault_free:
        The paired fault-free run of the same bids (``paired=True``
        only).
    reliability:
        Completion/recovery/degradation metrics (``paired=True`` only).
    """

    outcome: AuctionOutcome
    events: Tuple[AuctionEvent, ...]
    report: FaultReport
    result: SimulationResult
    fault_free: Optional[SimulationResult] = None
    reliability: Optional[ReliabilityReport] = None


def apply_bid_faults(
    bids: List[Bid], plan: FaultPlan
) -> Tuple[List[Bid], Tuple[int, ...], Tuple[int, ...]]:
    """Apply submission faults: lost and delayed bids.

    Returns the effective bid list plus the phone ids whose bids were
    lost and delayed.  A delayed bid claims its (later) submission slot
    as arrival; a bid delayed past its departure — or past the phone's
    scheduled dropout — is lost.
    """
    effective: List[Bid] = []
    lost: List[int] = []
    delayed: List[int] = []
    for bid in bids:
        record = plan.for_phone(bid.phone_id)
        if record is None:
            effective.append(bid)
            continue
        if record.bid_lost:
            lost.append(bid.phone_id)
            continue
        arrival = bid.arrival + record.bid_delay
        if arrival > bid.departure:
            lost.append(bid.phone_id)
            continue
        if record.dropout_slot is not None and arrival > record.dropout_slot:
            lost.append(bid.phone_id)
            continue
        if record.bid_delay:
            delayed.append(bid.phone_id)
            bid = bid.with_window(arrival, bid.departure)
        effective.append(bid)
    return effective, tuple(lost), tuple(delayed)


def _drive(
    bids: List[Bid],
    scenario: Scenario,
    plan: Optional[FaultPlan],
    reserve_price: bool,
    payment_rule: str,
    max_reassignments: int,
) -> CrowdsourcingPlatform:
    """Feed ``bids`` through a platform, reporting faults when given."""
    by_arrival: Dict[int, List[Bid]] = {}
    for bid in bids:
        by_arrival.setdefault(bid.arrival, []).append(bid)
    dropouts_at: Dict[int, List[int]] = {}
    if plan is not None:
        departures = {bid.phone_id: bid.departure for bid in bids}
        for record in plan:
            if record.phone_id not in departures:
                continue  # bid lost: the phone never joined
            if record.dropout_slot is None:
                continue
            if record.dropout_slot > departures[record.phone_id]:
                continue  # "drops" after its claimed departure: a no-op
            dropouts_at.setdefault(record.dropout_slot, []).append(
                record.phone_id
            )

    platform = CrowdsourcingPlatform(
        num_slots=scenario.num_slots,
        reserve_price=reserve_price,
        payment_rule=payment_rule,
        max_reassignments=max_reassignments,
    )
    for slot in range(1, scenario.num_slots + 1):
        for bid in by_arrival.get(slot, ()):
            platform.submit_bid(bid)
            if plan is not None:
                record = plan.for_phone(bid.phone_id)
                if record is not None and record.fails_task:
                    platform.report_task_failure(bid.phone_id)
        for phone_id in dropouts_at.get(slot, ()):
            platform.report_dropout(phone_id)
        for task in scenario.schedule.tasks_in_slot(slot):
            platform.submit_tasks(1, value=task.value)
        platform.close_slot()
    return platform


def run_with_faults(
    scenario: Scenario,
    faults: Union[FaultConfig, FaultPlan],
    seed: int = 0,
    reserve_price: bool = False,
    payment_rule: str = "paper",
    strategies: Optional[Mapping[int, BiddingStrategy]] = None,
    rng: Optional[np.random.Generator] = None,
    sanitize: bool = True,
    paired: bool = False,
    journal_dir: Optional[os.PathLike] = None,
) -> FaultyRunResult:
    """Run ``scenario`` through the platform with faults injected.

    Parameters
    ----------
    scenario:
        The round to execute.
    faults:
        Either a materialised :class:`FaultPlan`, or a
        :class:`FaultConfig` from which a plan is drawn using ``seed``.
    seed:
        Master seed of the fault draw (ignored when a plan is given).
    reserve_price / payment_rule:
        Forwarded to the platform.
    strategies / rng:
        Optional per-phone bidding strategies (default: truthful); bids
        are generated once and shared with the paired run.
    sanitize:
        Check the recovered outcome (feasibility, IR for paying winners,
        zero payments to non-deliverers) and raise
        :class:`~repro.errors.SanitizationError` on any violation.
    paired:
        Also run the same bids fault-free and attach the comparison
        (:class:`~repro.metrics.reliability.ReliabilityReport`).
    journal_dir:
        When given, the faulty run is driven through a
        :class:`~repro.durability.JournaledPlatform` writing a
        write-ahead journal into this directory — the outcome is
        identical to the unjournaled drive (same feeding order), and a
        crashed round can be resumed from the journal via
        :func:`repro.durability.resume_round`.
    """
    if isinstance(faults, FaultPlan):
        plan = faults
    elif isinstance(faults, FaultConfig):
        plan = FaultInjector(faults).plan(scenario, seed=seed)
    else:
        raise FaultError(
            f"faults must be a FaultConfig or FaultPlan, got "
            f"{type(faults).__name__}"
        )

    if strategies:
        bids = scenario.bids_from_strategies(strategies, rng)
    else:
        bids = scenario.truthful_bids()

    effective, lost, delayed = apply_bid_faults(bids, plan)
    if journal_dir is None:
        platform = _drive(
            effective,
            scenario,
            plan,
            reserve_price=reserve_price,
            payment_rule=payment_rule,
            max_reassignments=plan.config.max_reassignments,
        )
        outcome = platform.finalize()
    else:
        # Lazy import: durability depends on the fault plan types, so
        # importing it at module scope would be circular.
        from repro.durability import Journal
        from repro.durability.journaled import JournaledPlatform
        from repro.durability.replay import (
            execute_commands,
            round_commands,
        )

        commands = round_commands(effective, scenario, plan)
        journal = Journal(journal_dir)
        try:
            journaled = JournaledPlatform(
                journal,
                num_slots=scenario.num_slots,
                reserve_price=reserve_price,
                payment_rule=payment_rule,
                max_reassignments=plan.config.max_reassignments,
            )
            outcome_or_none = execute_commands(journaled, commands)
        finally:
            journal.close()
        assert outcome_or_none is not None
        outcome = outcome_or_none
        platform = journaled
    events = platform.events

    failure_events = tuple(
        event for event in events if isinstance(event, TaskFailed)
    )
    failed_tasks: Set[int] = {event.task_id for event in failure_events}
    allocated = set(outcome.allocation)
    report = FaultReport(
        plan=plan,
        submitted=tuple(bid.phone_id for bid in effective),
        lost_bids=lost,
        delayed_bids=delayed,
        dropped=tuple(sorted(platform.dropped_phones)),
        failed_deliverers=tuple(sorted(platform.failed_deliverers)),
        withheld=tuple(sorted(platform.withheld_payments)),
        delivered=platform.delivered_phones,
        reassignments=platform.reassignment_counts,
        failure_events=failure_events,
        failed_tasks=tuple(sorted(failed_tasks)),
        recovered_tasks=tuple(sorted(failed_tasks & allocated)),
        abandoned_tasks=tuple(sorted(failed_tasks - allocated)),
    )

    if sanitize:
        violations = sanitize_outcome(
            outcome,
            non_deliverers=report.failed_deliverers,
            require_ir=True,
        )
        if violations:
            details = "; ".join(str(v) for v in violations)
            raise SanitizationError(
                f"fault recovery produced an outcome violating "
                f"{len(violations)} invariant"
                f"{'s' if len(violations) != 1 else ''}: {details}",
                violations=violations,
            )

    result = SimulationEngine.package("online-greedy+faults", outcome, scenario)

    fault_free: Optional[SimulationResult] = None
    reliability: Optional[ReliabilityReport] = None
    if paired:
        clean = _drive(
            bids,
            scenario,
            plan=None,
            reserve_price=reserve_price,
            payment_rule=payment_rule,
            max_reassignments=plan.config.max_reassignments,
        )
        fault_free = SimulationEngine.package(
            "online-greedy", clean.finalize(), scenario
        )
        reliability = reliability_report(result, report, fault_free)

    return FaultyRunResult(
        outcome=outcome,
        events=events,
        report=report,
        result=result,
        fault_free=fault_free,
        reliability=reliability,
    )
