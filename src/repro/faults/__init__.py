"""Deterministic fault injection, platform recovery, and reliability.

The paper's premise is that smartphones are *dynamic* — they arrive and
depart unpredictably — yet a plain reproduction assumes every winner
delivers its sensing task.  This package drops that assumption:

* :mod:`repro.faults.plan` — the fault model: seeded, replayable
  schedules of phone dropouts, task-completion failures, and
  delayed/lost bid submissions;
* :mod:`repro.faults.injector` — deterministic plan drawing from a
  master seed via :class:`~repro.utils.rng.RngStreams`;
* :mod:`repro.faults.recovery` — the fault-aware round driver: feeds a
  scenario through :class:`~repro.auction.CrowdsourcingPlatform`, which
  withholds payments from non-deliverers and reallocates failed tasks
  in-slot, then sanitizes and packages the recovered outcome.

Reliability metrics (completion rate, recovered fraction, welfare
degradation) live in :mod:`repro.metrics.reliability`.
"""

from repro.faults.crash import (
    CRASH_MODES,
    CrashController,
    CrashPlan,
    SimulatedCrash,
    draw_crash_plan,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultConfig, FaultPlan, PhoneFaults
from repro.faults.recovery import (
    FaultReport,
    FaultyRunResult,
    apply_bid_faults,
    run_with_faults,
)

__all__ = [
    "FaultConfig",
    "FaultPlan",
    "PhoneFaults",
    "FaultInjector",
    "FaultReport",
    "FaultyRunResult",
    "apply_bid_faults",
    "run_with_faults",
    "CRASH_MODES",
    "CrashPlan",
    "CrashController",
    "SimulatedCrash",
    "draw_crash_plan",
]
