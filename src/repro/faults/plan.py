"""The deterministic fault model: what goes wrong, and when.

A :class:`FaultConfig` describes *how unreliable* the smartphone
population is (dropout / task-failure / bid-delay / bid-loss
probabilities); a :class:`FaultPlan` is the materialised schedule of
faults for one concrete :class:`~repro.simulation.Scenario` — which
phone departs early in which slot, which winner fails to deliver, whose
bid is delayed or lost.  Plans are pure data: building one from a seed
is deterministic (see :class:`~repro.faults.injector.FaultInjector`), so
any scenario can be replayed identically with and without faults.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Iterator, Mapping, Optional, Tuple

from repro.errors import FaultError
from repro.utils.validation import check_type


def _check_probability(name: str, value: float) -> None:
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise FaultError(
            f"{name} must be a number, got {type(value).__name__}"
        )
    if not 0.0 <= float(value) <= 1.0:
        raise FaultError(f"{name} must be in [0, 1], got {value}")


@dataclasses.dataclass(frozen=True)
class FaultConfig:
    """Unreliability knobs for a smartphone population.

    Attributes
    ----------
    dropout_prob:
        Per-phone probability of departing early without notice; the
        drop slot is uniform over the phone's real active window.
    task_failure_prob:
        Per-phone probability of never delivering an allocated task.
    bid_delay_prob:
        Per-phone probability of submitting the bid late; the delay is
        uniform on ``[1, max_bid_delay]`` slots and shrinks the claimed
        window (a bid delayed past the departure is lost).
    max_bid_delay:
        Largest possible submission delay, in slots (>= 1).
    bid_loss_prob:
        Per-phone probability of the bid never reaching the platform.
    max_reassignments:
        Bound on the platform's per-task recovery chain.
    """

    dropout_prob: float = 0.0
    task_failure_prob: float = 0.0
    bid_delay_prob: float = 0.0
    max_bid_delay: int = 2
    bid_loss_prob: float = 0.0
    max_reassignments: int = 3

    def __post_init__(self) -> None:
        _check_probability("dropout_prob", self.dropout_prob)
        _check_probability("task_failure_prob", self.task_failure_prob)
        _check_probability("bid_delay_prob", self.bid_delay_prob)
        _check_probability("bid_loss_prob", self.bid_loss_prob)
        check_type("max_bid_delay", self.max_bid_delay, int)
        if self.max_bid_delay < 1:
            raise FaultError(
                f"max_bid_delay must be >= 1, got {self.max_bid_delay}"
            )
        check_type("max_reassignments", self.max_reassignments, int)
        if self.max_reassignments < 0:
            raise FaultError(
                f"max_reassignments must be >= 0, got "
                f"{self.max_reassignments}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (plan metadata, reports)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultConfig":
        """Inverse of :meth:`to_dict` (validates on reconstruction)."""
        try:
            return cls(**dict(payload))
        except TypeError as exc:
            raise FaultError(f"malformed fault config: {exc}") from exc


@dataclasses.dataclass(frozen=True)
class PhoneFaults:
    """The faults scheduled for one smartphone.

    Attributes
    ----------
    phone_id:
        The afflicted phone.
    dropout_slot:
        Slot (1-based) during which the phone departs early, or ``None``
        for a phone that stays its full window.
    fails_task:
        Whether the phone fails to deliver an allocated task.
    bid_delay:
        Slots the bid submission is delayed by (0 for on-time).
    bid_lost:
        Whether the bid is lost entirely (never submitted).
    """

    phone_id: int
    dropout_slot: Optional[int] = None
    fails_task: bool = False
    bid_delay: int = 0
    bid_lost: bool = False

    def __post_init__(self) -> None:
        check_type("phone_id", self.phone_id, int)
        if self.dropout_slot is not None:
            check_type("dropout_slot", self.dropout_slot, int)
            if self.dropout_slot < 1:
                raise FaultError(
                    f"dropout_slot must be >= 1, got {self.dropout_slot}"
                )
        check_type("bid_delay", self.bid_delay, int)
        if self.bid_delay < 0:
            raise FaultError(
                f"bid_delay must be >= 0, got {self.bid_delay}"
            )

    @property
    def is_faulty(self) -> bool:
        """Whether any fault is actually scheduled."""
        return (
            self.dropout_slot is not None
            or self.fails_task
            or self.bid_delay > 0
            or self.bid_lost
        )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "PhoneFaults":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(**dict(payload))
        except TypeError as exc:
            raise FaultError(f"malformed phone faults: {exc}") from exc


class FaultPlan:
    """The full fault schedule for one scenario.

    Parameters
    ----------
    faults:
        Per-phone fault records; phones without a record are reliable.
        Records with no scheduled fault are dropped.
    config:
        The :class:`FaultConfig` the plan was drawn under (carried for
        ``max_reassignments`` and for reporting).
    seed:
        The master seed the plan was drawn from, or ``None`` for a
        hand-built plan.
    """

    def __init__(
        self,
        faults: Mapping[int, PhoneFaults] = (),
        config: Optional[FaultConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        by_id: Dict[int, PhoneFaults] = {}
        for phone_id, record in dict(faults).items():
            if not isinstance(record, PhoneFaults):
                raise FaultError(
                    f"faults must map phone ids to PhoneFaults, got "
                    f"{type(record).__name__}"
                )
            if record.phone_id != phone_id:
                raise FaultError(
                    f"fault record for phone {record.phone_id} filed "
                    f"under key {phone_id}"
                )
            if record.is_faulty:
                by_id[phone_id] = record
        self._faults = {pid: by_id[pid] for pid in sorted(by_id)}
        self._config = config if config is not None else FaultConfig()
        self._seed = seed

    @property
    def config(self) -> FaultConfig:
        """The configuration the plan was drawn under."""
        return self._config

    @property
    def seed(self) -> Optional[int]:
        """The master seed, or ``None`` for a hand-built plan."""
        return self._seed

    @property
    def affected_phones(self) -> Tuple[int, ...]:
        """Phone ids with at least one scheduled fault, sorted."""
        return tuple(self._faults)

    def for_phone(self, phone_id: int) -> Optional[PhoneFaults]:
        """The fault record of ``phone_id``, or ``None`` if reliable."""
        return self._faults.get(phone_id)

    def __len__(self) -> int:
        return len(self._faults)

    def __iter__(self) -> Iterator[PhoneFaults]:
        return iter(self._faults.values())

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (trace archiving, debugging)."""
        return {
            "seed": self._seed,
            "config": self._config.to_dict(),
            "faults": [record.to_dict() for record in self],
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FaultPlan":
        """Inverse of :meth:`to_dict` (validates on reconstruction)."""
        try:
            records = [
                PhoneFaults.from_dict(entry) for entry in payload["faults"]
            ]
            config = FaultConfig.from_dict(payload["config"])
            seed = payload["seed"]
        except (KeyError, TypeError) as exc:
            raise FaultError(f"malformed fault plan: {exc}") from exc
        return cls(
            faults={record.phone_id: record for record in records},
            config=config,
            seed=None if seed is None else int(seed),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultPlan(affected={len(self._faults)}, seed={self._seed})"
        )
