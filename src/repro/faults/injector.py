"""Seeded, deterministic fault scheduling.

:class:`FaultInjector` turns a :class:`~repro.faults.plan.FaultConfig`
plus a master seed into a :class:`~repro.faults.plan.FaultPlan` for a
concrete scenario.  Determinism rules:

* every fault category draws from its own named
  :class:`~repro.utils.rng.RngStreams` stream, so changing one
  probability never perturbs another category's schedule;
* every category draws exactly once per phone (in phone-id order)
  whether or not the fault fires, so changing a probability only flips
  individual phones rather than shifting the whole sequence.
"""

from __future__ import annotations

from typing import Dict, Union

from repro.errors import FaultError
from repro.faults.plan import FaultConfig, FaultPlan, PhoneFaults
from repro.simulation.scenario import Scenario
from repro.utils.rng import RngStreams


class FaultInjector:
    """Draws reproducible fault plans for scenarios.

    Example
    -------
    >>> from repro.simulation import WorkloadConfig
    >>> scenario = WorkloadConfig(num_slots=10).generate(seed=1)
    >>> injector = FaultInjector(FaultConfig(dropout_prob=0.3))
    >>> plan_a = injector.plan(scenario, seed=7)
    >>> plan_b = injector.plan(scenario, seed=7)
    >>> plan_a.to_dict() == plan_b.to_dict()
    True
    """

    def __init__(self, config: FaultConfig) -> None:
        if not isinstance(config, FaultConfig):
            raise FaultError(
                f"config must be a FaultConfig, got "
                f"{type(config).__name__}"
            )
        self._config = config

    @property
    def config(self) -> FaultConfig:
        """The unreliability knobs this injector draws under."""
        return self._config

    def plan(
        self, scenario: Scenario, seed: Union[int, RngStreams] = 0
    ) -> FaultPlan:
        """Draw the fault schedule for ``scenario``.

        ``seed`` is a master seed (or an existing
        :class:`~repro.utils.rng.RngStreams` to derive the category
        streams from, e.g. one repetition's child factory).
        """
        streams = (
            seed if isinstance(seed, RngStreams) else RngStreams(seed)
        )
        cfg = self._config
        dropout_rng = streams.get("faults.dropout")
        dropout_slot_rng = streams.get("faults.dropout-slot")
        failure_rng = streams.get("faults.task-failure")
        delay_rng = streams.get("faults.bid-delay")
        delay_len_rng = streams.get("faults.bid-delay-length")
        loss_rng = streams.get("faults.bid-loss")

        faults: Dict[int, PhoneFaults] = {}
        for profile in scenario.profiles:
            # Always draw once per phone per category (see module doc).
            drops = dropout_rng.random() < cfg.dropout_prob
            drop_slot = int(
                dropout_slot_rng.integers(
                    profile.arrival, profile.departure + 1
                )
            )
            fails = failure_rng.random() < cfg.task_failure_prob
            delayed = delay_rng.random() < cfg.bid_delay_prob
            delay = int(delay_len_rng.integers(1, cfg.max_bid_delay + 1))
            lost = loss_rng.random() < cfg.bid_loss_prob

            record = PhoneFaults(
                phone_id=profile.phone_id,
                dropout_slot=drop_slot if drops else None,
                fails_task=fails,
                bid_delay=delay if delayed else 0,
                bid_lost=lost,
            )
            if record.is_faulty:
                faults[profile.phone_id] = record
        return FaultPlan(faults=faults, config=cfg, seed=streams.seed)
