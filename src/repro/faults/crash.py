"""Seeded crash-fault injection for the write-ahead journal.

A :class:`CrashPlan` describes one process death, drawn deterministically
from the :class:`~repro.utils.rng.RngStreams` discipline like every
other fault in this package: *the process dies during its Nth journal
write*, optionally corrupting the record it was writing the way real
crashes do —

* ``"clean"`` — the record hits the disk intact, the process dies right
  after (a kill between ``write()`` and return);
* ``"torn"`` — only a prefix of the record's bytes land (a power cut
  mid-``write``);
* ``"duplicate"`` — the record's bytes land twice (a retried write that
  had in fact succeeded);
* ``"flip"`` — one character of the record's stored checksum is flipped
  (media corruption of the tail).

All four leave at most the *final* record of the journal invalid, which
is exactly the class of damage recovery repairs by truncation
(:func:`repro.durability.journal.scan_journal`); the journal's hash
chain turns anything worse into a typed refusal.

:class:`CrashController` is the runtime half: it plugs into
``Journal(crash_hook=...)`` and raises :class:`SimulatedCrash` at the
planned write.  The "dead" journal object refuses further appends; the
test or driver then recovers by opening a fresh
:class:`~repro.durability.Journal` over the same directory, exactly as
a restarted process would.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Union

from repro.errors import FaultError
from repro.utils.rng import RngStreams

#: Corruption applied to the record being written when the crash hits.
CRASH_CLEAN = "clean"
CRASH_TORN = "torn"
CRASH_DUPLICATE = "duplicate"
CRASH_FLIP = "flip"
CRASH_MODES = (CRASH_CLEAN, CRASH_TORN, CRASH_DUPLICATE, CRASH_FLIP)


class SimulatedCrash(FaultError):
    """The simulated process death, raised mid-append by the hook."""


@dataclasses.dataclass(frozen=True)
class CrashPlan:
    """One deterministic process death, in journal-write coordinates.

    Attributes
    ----------
    after_writes:
        The 1-based journal write during which the process dies (the
        record of that write is the one corrupted).
    mode:
        One of :data:`CRASH_MODES`.
    torn_fraction:
        For ``"torn"``: the fraction of the record's bytes that land
        (clamped to at least one byte).
    flip_offset:
        For ``"flip"``: which of the 64 checksum hex characters is
        flipped.
    """

    after_writes: int
    mode: str = CRASH_CLEAN
    torn_fraction: float = 0.5
    flip_offset: int = 0

    def __post_init__(self) -> None:
        if self.after_writes < 1:
            raise FaultError(
                f"after_writes must be >= 1, got {self.after_writes}"
            )
        if self.mode not in CRASH_MODES:
            raise FaultError(
                f"unknown crash mode {self.mode!r}; expected one of "
                f"{CRASH_MODES}"
            )
        if not 0.0 < self.torn_fraction < 1.0:
            raise FaultError(
                f"torn_fraction must be in (0, 1), got "
                f"{self.torn_fraction}"
            )
        if not 0 <= self.flip_offset < 64:
            raise FaultError(
                f"flip_offset must be in [0, 64), got {self.flip_offset}"
            )

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation."""
        return {
            "after_writes": self.after_writes,
            "mode": self.mode,
            "torn_fraction": self.torn_fraction,
            "flip_offset": self.flip_offset,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CrashPlan":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                after_writes=int(payload["after_writes"]),
                mode=str(payload["mode"]),
                torn_fraction=float(payload["torn_fraction"]),
                flip_offset=int(payload["flip_offset"]),
            )
        except KeyError as exc:
            raise FaultError(
                f"crash-plan payload missing key: {exc}"
            ) from exc


def draw_crash_plan(
    seed_or_streams: Union[int, RngStreams],
    total_writes: int,
) -> CrashPlan:
    """Draw one seeded :class:`CrashPlan` for a round of known length.

    Streams used (one draw each, in order): ``faults.crash-write``,
    ``faults.crash-mode``, ``faults.crash-torn``, ``faults.crash-flip``
    — so the draw is stable under the same named-stream discipline as
    :class:`~repro.faults.injector.FaultInjector`.
    """
    if total_writes < 1:
        raise FaultError(
            f"total_writes must be >= 1, got {total_writes}"
        )
    streams = (
        seed_or_streams
        if isinstance(seed_or_streams, RngStreams)
        else RngStreams(seed_or_streams)
    )
    after = int(
        streams.get("faults.crash-write").integers(1, total_writes + 1)
    )
    mode = CRASH_MODES[
        int(streams.get("faults.crash-mode").integers(0, len(CRASH_MODES)))
    ]
    torn_fraction = float(
        streams.get("faults.crash-torn").uniform(0.1, 0.9)
    )
    flip_offset = int(streams.get("faults.crash-flip").integers(0, 64))
    return CrashPlan(
        after_writes=after,
        mode=mode,
        torn_fraction=torn_fraction,
        flip_offset=flip_offset,
    )


def _flip_checksum(data: bytes, offset: int) -> bytes:
    """Flip one hex character of the stored ``"hash"`` field."""
    marker = b'"hash":"'
    start = data.find(marker)
    if start < 0:  # pragma: no cover - every record carries a hash
        return data
    position = start + len(marker) + offset
    original = data[position : position + 1]
    replacement = b"0" if original != b"0" else b"1"
    return data[:position] + replacement + data[position + 1 :]


class CrashController:
    """The journal-side hook executing a :class:`CrashPlan`.

    Counts journal writes; at write ``plan.after_writes`` it corrupts
    the outgoing bytes per ``plan.mode`` (``mutate``) and raises
    :class:`SimulatedCrash` once the bytes are on disk
    (``after_append``).  :attr:`fired` records whether the death
    happened — a plan whose ``after_writes`` exceeds the round's write
    count never fires, and the run completes normally.
    """

    def __init__(self, plan: CrashPlan) -> None:
        self.plan = plan
        self.writes = 0
        self.fired = False

    def mutate(self, seq: int, data: bytes) -> bytes:
        """Corrupt the bytes of the fatal write, pass others through."""
        self.writes += 1
        if self.writes != self.plan.after_writes:
            return data
        mode = self.plan.mode
        if mode == CRASH_TORN:
            # The trailing newline is part of the record's bytes; a torn
            # write loses it along with the record's suffix.
            body = data[:-1] if data.endswith(b"\n") else data
            keep = max(1, int(len(body) * self.plan.torn_fraction))
            return body[:keep]
        if mode == CRASH_DUPLICATE:
            return data + data
        if mode == CRASH_FLIP:
            return _flip_checksum(data, self.plan.flip_offset)
        return data

    def after_append(self, seq: int) -> None:
        """Die (once) after the planned write reached the file."""
        if self.writes == self.plan.after_writes and not self.fired:
            self.fired = True
            raise SimulatedCrash(
                f"simulated crash during journal write "
                f"{self.plan.after_writes} (mode {self.plan.mode!r}, "
                f"record seq {seq})"
            )
