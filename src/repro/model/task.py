"""Sensing tasks and the per-round task schedule.

Section III-A of the paper: tasks arrive at random; ``r_t`` tasks arrive in
slot ``t`` and the k-th task arriving in slot ``j`` is ``τ_{j,k}``.  A task
is completed within its single arrival slot by at most one smartphone that
is active in that slot, and the platform obtains a fixed value ``ν`` per
completed task.  We attach the value to each task (all equal under the
paper's model) so the library also supports heterogeneous task values.
"""

from __future__ import annotations

import dataclasses
from typing import (
    Any,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import ValidationError
from repro.utils.validation import check_non_negative, check_positive, check_type


@dataclasses.dataclass(frozen=True, order=True)
class SensingTask:
    """One sensing task ``τ_{slot, index}``.

    Attributes
    ----------
    task_id:
        Identifier, unique within a round (assigned by the schedule).
    slot:
        Arrival slot ``j`` (1-based); the task must be served in this slot.
    index:
        1-based position ``k`` among the tasks arriving in the same slot.
    value:
        The platform's value ``ν`` for completing this task.
    """

    task_id: int
    slot: int
    index: int
    value: float

    def __post_init__(self) -> None:
        check_type("task_id", self.task_id, int)
        check_type("slot", self.slot, int)
        check_type("index", self.index, int)
        if self.task_id < 0:
            raise ValidationError(f"task_id must be >= 0, got {self.task_id}")
        check_positive("slot", self.slot)
        check_positive("index", self.index)
        check_non_negative("value", self.value)
        object.__setattr__(self, "value", float(self.value))

    @property
    def label(self) -> str:
        """Paper-style label ``τ_{j,k}``, e.g. ``"t3.2"``."""
        return f"t{self.slot}.{self.index}"

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a JSON-friendly dict (used by trace recording)."""
        return {
            "task_id": self.task_id,
            "slot": self.slot,
            "index": self.index,
            "value": self.value,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SensingTask":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                task_id=int(payload["task_id"]),
                slot=int(payload["slot"]),
                index=int(payload["index"]),
                value=float(payload["value"]),
            )
        except KeyError as exc:
            raise ValidationError(f"task payload missing key: {exc}") from exc


class TaskSchedule:
    """The full arrival schedule of sensing tasks for one round.

    An immutable, validated collection of :class:`SensingTask` ordered by
    ``(slot, index)``.  Provides the per-slot views the online mechanism
    needs and the flat view the offline mechanism needs.
    """

    def __init__(self, num_slots: int, tasks: Iterable[SensingTask]) -> None:
        check_type("num_slots", num_slots, int)
        check_positive("num_slots", num_slots)
        self._num_slots = num_slots
        materialised = list(tasks)
        for task in materialised:
            if not isinstance(task, SensingTask):
                raise ValidationError(
                    f"tasks must be SensingTask, got {type(task).__name__}"
                )
        ordered = sorted(
            materialised, key=lambda t: (t.slot, t.index, t.task_id)
        )
        seen_ids = set()
        seen_positions = set()
        for task in ordered:
            if task.slot > num_slots:
                raise ValidationError(
                    f"task {task.label} arrives in slot {task.slot}, beyond "
                    f"the round horizon of {num_slots} slots"
                )
            if task.task_id in seen_ids:
                raise ValidationError(f"duplicate task_id {task.task_id}")
            position = (task.slot, task.index)
            if position in seen_positions:
                raise ValidationError(
                    f"duplicate task position slot={task.slot} "
                    f"index={task.index}"
                )
            seen_ids.add(task.task_id)
            seen_positions.add(position)
        self._tasks: Tuple[SensingTask, ...] = tuple(ordered)
        by_slot: Dict[int, List[SensingTask]] = {}
        for task in self._tasks:
            by_slot.setdefault(task.slot, []).append(task)
        self._by_slot = {slot: tuple(ts) for slot, ts in by_slot.items()}
        self._by_id = {task.task_id: task for task in self._tasks}
        values = {task.value for task in self._tasks}
        self._uniform_value: Optional[float] = (
            values.pop() if len(values) == 1 else None
        )

    @classmethod
    def from_counts(
        cls,
        counts: Sequence[int],
        value: float,
        first_task_id: int = 0,
    ) -> "TaskSchedule":
        """Build a schedule from the paper's arrival vector ``R=(r_1..r_m)``.

        ``counts[t-1]`` tasks arrive in slot ``t``; every task is worth
        ``value``.  Task ids are assigned sequentially from
        ``first_task_id`` in arrival order.
        """
        if not counts:
            raise ValidationError("counts must contain at least one slot")
        tasks: List[SensingTask] = []
        next_id = first_task_id
        for slot_index, count in enumerate(counts, start=1):
            check_type(f"counts[{slot_index - 1}]", count, int)
            check_non_negative(f"counts[{slot_index - 1}]", count)
            for k in range(1, count + 1):
                tasks.append(
                    SensingTask(
                        task_id=next_id, slot=slot_index, index=k, value=value
                    )
                )
                next_id += 1
        return cls(num_slots=len(counts), tasks=tasks)

    @property
    def num_slots(self) -> int:
        """The round horizon ``m`` this schedule was built for."""
        return self._num_slots

    @property
    def tasks(self) -> Tuple[SensingTask, ...]:
        """All tasks ordered by ``(slot, index)``."""
        return self._tasks

    @property
    def counts(self) -> Tuple[int, ...]:
        """The arrival vector ``R = (r_1, ..., r_m)``."""
        return tuple(
            len(self._by_slot.get(slot, ())) for slot in range(1, self._num_slots + 1)
        )

    @property
    def uniform_value(self) -> Optional[float]:
        """The single value shared by every task, or ``None``.

        The paper's model prices all tasks at a common ``ν``; several
        incremental shortcuts (notably the streaming engine's
        critical-threshold maintenance under a reserve price) are only
        valid in that homogeneous regime.  ``None`` means the schedule
        is empty or carries heterogeneous values.
        """
        return self._uniform_value

    @property
    def total_value(self) -> float:
        """Sum of task values (the welfare upper bound if costs were zero)."""
        return sum(task.value for task in self._tasks)

    def tasks_in_slot(self, slot: int) -> Tuple[SensingTask, ...]:
        """Tasks arriving in ``slot`` (1-based), ordered by index."""
        if slot < 1 or slot > self._num_slots:
            raise ValidationError(
                f"slot must be in [1, {self._num_slots}], got {slot}"
            )
        return self._by_slot.get(slot, ())

    def task(self, task_id: int) -> SensingTask:
        """Look a task up by id."""
        try:
            return self._by_id[task_id]
        except KeyError as exc:
            raise ValidationError(f"unknown task_id {task_id}") from exc

    def __len__(self) -> int:
        return len(self._tasks)

    def __iter__(self) -> Iterator[SensingTask]:
        return iter(self._tasks)

    def __contains__(self, task_id: object) -> bool:
        return task_id in self._by_id

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TaskSchedule):
            return NotImplemented
        return self._num_slots == other._num_slots and self._tasks == other._tasks

    def __hash__(self) -> int:
        return hash((self._num_slots, self._tasks))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TaskSchedule(num_slots={self._num_slots}, "
            f"tasks={len(self._tasks)})"
        )
