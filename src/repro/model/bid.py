"""The bid submitted by a smartphone to the platform.

Section III-B of the paper: within a round of ``m`` slots, each smartphone
``i`` submits at most one bid ``B_i = (ã_i, d̃_i, b_i)`` where ``ã_i`` is
the claimed begin of active time (arrival slot), ``d̃_i`` the claimed end of
active time (departure slot), and ``b_i`` the claimed per-task cost.  Slots
are 1-based and the bid claims the phone is active in every slot ``t`` with
``ã_i <= t <= d̃_i`` (inclusive on both ends, matching the worked example in
Fig. 4 where Smartphone 2 is active in slots 1 through 4).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from repro.errors import ValidationError
from repro.utils.validation import check_non_negative, check_positive, check_type


@dataclasses.dataclass(frozen=True, order=True)
class Bid:
    """An immutable claimed bid ``(arrival, departure, cost)`` of one phone.

    Attributes
    ----------
    phone_id:
        Identifier of the submitting smartphone.  Unique within a round.
    arrival:
        Claimed first active slot ``ã_i`` (1-based, inclusive).
    departure:
        Claimed last active slot ``d̃_i`` (1-based, inclusive).
    cost:
        Claimed cost ``b_i >= 0`` for performing one sensing task.

    The ordering (``order=True``) sorts by ``phone_id`` first, which gives
    deterministic iteration order in reports; mechanisms never rely on this
    ordering for allocation decisions (they sort explicitly by cost with a
    documented tie-break).
    """

    phone_id: int
    arrival: int
    departure: int
    cost: float

    def __post_init__(self) -> None:
        check_type("phone_id", self.phone_id, int)
        check_type("arrival", self.arrival, int)
        check_type("departure", self.departure, int)
        if self.phone_id < 0:
            raise ValidationError(f"phone_id must be >= 0, got {self.phone_id}")
        check_positive("arrival", self.arrival)
        check_positive("departure", self.departure)
        if self.departure < self.arrival:
            raise ValidationError(
                f"departure ({self.departure}) must be >= arrival "
                f"({self.arrival}) for phone {self.phone_id}"
            )
        check_non_negative("cost", self.cost)
        # Normalise the cost to float so equality is value-based regardless
        # of whether the caller passed an int.
        object.__setattr__(self, "cost", float(self.cost))

    def is_active(self, slot: int) -> bool:
        """Whether the bid claims activity in ``slot`` (1-based)."""
        return self.arrival <= slot <= self.departure

    @property
    def active_length(self) -> int:
        """Number of slots the bid claims to be active for."""
        return self.departure - self.arrival + 1

    def with_cost(self, cost: float) -> "Bid":
        """Return a copy of this bid with a different claimed cost."""
        return dataclasses.replace(self, cost=cost)

    def with_window(self, arrival: int, departure: int) -> "Bid":
        """Return a copy of this bid with a different claimed window."""
        return dataclasses.replace(self, arrival=arrival, departure=departure)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a JSON-friendly dict (used by trace recording)."""
        return {
            "phone_id": self.phone_id,
            "arrival": self.arrival,
            "departure": self.departure,
            "cost": self.cost,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Bid":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                phone_id=int(payload["phone_id"]),
                arrival=int(payload["arrival"]),
                departure=int(payload["departure"]),
                cost=float(payload["cost"]),
            )
        except KeyError as exc:
            raise ValidationError(f"bid payload missing key: {exc}") from exc
