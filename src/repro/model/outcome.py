"""The result of running a mechanism: allocation + payments.

An :class:`AuctionOutcome` is a frozen record of what a mechanism decided:
which bid won which task (the allocation rule ``π``), how much each phone
is paid (the payment rule ``p``), and in which slot each payment is
delivered.  It also keeps the inputs (bids and schedule) so the metrics
layer can compute claimed welfare without re-plumbing arguments.

True (private-cost) welfare and utilities live in :mod:`repro.metrics`,
which combines an outcome with the private profiles.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Mapping, Optional, Sequence, Tuple

from repro.errors import MechanismError
from repro.model.bid import Bid
from repro.model.task import SensingTask, TaskSchedule


class AuctionOutcome:
    """Immutable allocation and payment record for one round.

    Parameters
    ----------
    bids:
        The bids the mechanism saw (one per phone).
    schedule:
        The task schedule of the round.
    allocation:
        Mapping ``task_id -> phone_id`` of winning assignments.  Tasks
        absent from the mapping went unserved.
    payments:
        Mapping ``phone_id -> payment``.  Phones absent from the mapping
        are paid zero.
    payment_slots:
        Mapping ``phone_id -> slot`` in which the payment is delivered
        (the paper's online mechanism pays at the reported departure
        slot).  Optional; phones absent from the mapping are settled at
        the end of the round.
    """

    def __init__(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        allocation: Mapping[int, int],
        payments: Mapping[int, float],
        payment_slots: Optional[Mapping[int, int]] = None,
    ) -> None:
        self._bids_by_phone: Dict[int, Bid] = {}
        for bid in bids:
            if bid.phone_id in self._bids_by_phone:
                raise MechanismError(
                    f"duplicate bid for phone {bid.phone_id} in outcome"
                )
            self._bids_by_phone[bid.phone_id] = bid
        self._schedule = schedule
        self._allocation: Dict[int, int] = dict(allocation)
        self._payments: Dict[int, float] = {
            phone: float(amount) for phone, amount in payments.items()
        }
        self._payment_slots: Dict[int, int] = dict(payment_slots or {})
        self._validate()
        self._phone_to_task: Dict[int, int] = {}
        for task_id, phone_id in self._allocation.items():
            self._phone_to_task[phone_id] = task_id

    def _validate(self) -> None:
        assigned_phones = set()
        for task_id, phone_id in self._allocation.items():
            if task_id not in self._schedule:
                raise MechanismError(
                    f"allocation references unknown task_id {task_id}"
                )
            if phone_id not in self._bids_by_phone:
                raise MechanismError(
                    f"allocation references unknown phone_id {phone_id}"
                )
            if phone_id in assigned_phones:
                raise MechanismError(
                    f"phone {phone_id} allocated more than one task; the "
                    f"model allows at most one task per phone per round"
                )
            assigned_phones.add(phone_id)
            task = self._schedule.task(task_id)
            bid = self._bids_by_phone[phone_id]
            if not bid.is_active(task.slot):
                raise MechanismError(
                    f"task {task.label} (slot {task.slot}) allocated to "
                    f"phone {phone_id} whose claimed window is "
                    f"[{bid.arrival}, {bid.departure}]"
                )
        for phone_id in self._payments:
            if phone_id not in self._bids_by_phone:
                raise MechanismError(
                    f"payment recorded for unknown phone_id {phone_id}"
                )
        for phone_id, slot in self._payment_slots.items():
            if phone_id not in self._bids_by_phone:
                raise MechanismError(
                    f"payment slot recorded for unknown phone_id {phone_id}"
                )
            if slot < 1 or slot > self._schedule.num_slots:
                raise MechanismError(
                    f"payment slot {slot} for phone {phone_id} outside the "
                    f"round horizon"
                )

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------
    @property
    def bids(self) -> Tuple[Bid, ...]:
        """The bids the mechanism saw, ordered by phone id."""
        return tuple(
            self._bids_by_phone[pid] for pid in sorted(self._bids_by_phone)
        )

    @property
    def schedule(self) -> TaskSchedule:
        """The round's task schedule."""
        return self._schedule

    @property
    def bid_phone_ids(self) -> FrozenSet[int]:
        """The phone ids that submitted a bid (unordered).

        Cheaper than deriving the set from :attr:`bids`, which sorts and
        materialises the full bid tuple — the metrics layer walks this
        per phone on the city tier.
        """
        return frozenset(self._bids_by_phone)

    def bid_of(self, phone_id: int) -> Bid:
        """The bid phone ``phone_id`` submitted."""
        try:
            return self._bids_by_phone[phone_id]
        except KeyError as exc:
            raise MechanismError(f"unknown phone_id {phone_id}") from exc

    # ------------------------------------------------------------------
    # Allocation (the rule π)
    # ------------------------------------------------------------------
    @property
    def allocation(self) -> Dict[int, int]:
        """Copy of the ``task_id -> phone_id`` winning assignments."""
        return dict(self._allocation)

    @property
    def winners(self) -> Tuple[int, ...]:
        """Phone ids holding a winning bid, sorted."""
        return tuple(sorted(self._phone_to_task))

    @property
    def served_tasks(self) -> Tuple[SensingTask, ...]:
        """The tasks that were allocated, in schedule order."""
        return tuple(
            task for task in self._schedule if task.task_id in self._allocation
        )

    @property
    def unserved_tasks(self) -> Tuple[SensingTask, ...]:
        """The tasks no smartphone was assigned to."""
        return tuple(
            task
            for task in self._schedule
            if task.task_id not in self._allocation
        )

    def is_winner(self, phone_id: int) -> bool:
        """Whether ``phone_id`` holds a winning bid."""
        return phone_id in self._phone_to_task

    def task_of(self, phone_id: int) -> Optional[SensingTask]:
        """The task allocated to ``phone_id``, or ``None`` if it lost."""
        task_id = self._phone_to_task.get(phone_id)
        return None if task_id is None else self._schedule.task(task_id)

    def phone_of(self, task_id: int) -> Optional[int]:
        """The phone serving ``task_id``, or ``None`` if unserved."""
        return self._allocation.get(task_id)

    # ------------------------------------------------------------------
    # Payments (the rule p)
    # ------------------------------------------------------------------
    @property
    def payments(self) -> Dict[int, float]:
        """Copy of the ``phone_id -> payment`` mapping (losers omitted)."""
        return dict(self._payments)

    def payment(self, phone_id: int) -> float:
        """Payment to ``phone_id`` (zero when it lost)."""
        if phone_id not in self._bids_by_phone:
            raise MechanismError(f"unknown phone_id {phone_id}")
        return self._payments.get(phone_id, 0.0)

    def payment_slot(self, phone_id: int) -> int:
        """Slot in which ``phone_id`` is paid (round end if unrecorded)."""
        if phone_id not in self._bids_by_phone:
            raise MechanismError(f"unknown phone_id {phone_id}")
        return self._payment_slots.get(phone_id, self._schedule.num_slots)

    @property
    def total_payment(self) -> float:
        """Sum of all payments made by the platform."""
        return sum(self._payments.values())

    # ------------------------------------------------------------------
    # Claimed welfare (Definition 3 evaluated on *claimed* costs)
    # ------------------------------------------------------------------
    @property
    def claimed_welfare(self) -> float:
        """Social welfare computed from claimed costs, Σ (ν − b_i).

        Under a truthful mechanism this equals the true social welfare;
        for untruthful baselines the two can differ, which is exactly what
        the metrics layer measures.
        """
        total = 0.0
        for task_id, phone_id in self._allocation.items():
            task = self._schedule.task(task_id)
            total += task.value - self._bids_by_phone[phone_id].cost
        return total

    # ------------------------------------------------------------------
    # Serialisation (experiment archiving)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """A self-contained, JSON-friendly representation.

        Includes the inputs (bids and schedule), so a stored outcome can
        be audited later without the original scenario object.
        """
        return {
            "num_slots": self._schedule.num_slots,
            "tasks": [task.to_dict() for task in self._schedule],
            "bids": [bid.to_dict() for bid in self.bids],
            "allocation": {
                str(task_id): phone_id
                for task_id, phone_id in sorted(self._allocation.items())
            },
            "payments": {
                str(phone_id): amount
                for phone_id, amount in sorted(self._payments.items())
            },
            "payment_slots": {
                str(phone_id): slot
                for phone_id, slot in sorted(self._payment_slots.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "AuctionOutcome":
        """Inverse of :meth:`to_dict` (validates on reconstruction)."""
        from repro.model.task import SensingTask  # local: avoid cycle noise

        try:
            schedule = TaskSchedule(
                num_slots=int(payload["num_slots"]),
                tasks=[
                    SensingTask.from_dict(entry)
                    for entry in payload["tasks"]
                ],
            )
            bids = [Bid.from_dict(entry) for entry in payload["bids"]]
            allocation = {
                int(task_id): int(phone_id)
                for task_id, phone_id in payload["allocation"].items()
            }
            payments = {
                int(phone_id): float(amount)
                for phone_id, amount in payload["payments"].items()
            }
            payment_slots = {
                int(phone_id): int(slot)
                for phone_id, slot in payload["payment_slots"].items()
            }
        except (KeyError, TypeError, AttributeError) as exc:
            raise MechanismError(
                f"malformed outcome payload: {exc}"
            ) from exc
        return cls(
            bids=bids,
            schedule=schedule,
            allocation=allocation,
            payments=payments,
            payment_slots=payment_slots,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AuctionOutcome):
            return NotImplemented
        return (
            self._bids_by_phone == other._bids_by_phone
            and self._schedule == other._schedule
            and self._allocation == other._allocation
            and self._payments == other._payments  # repro: noqa-no-float-equality -- record identity: outcomes are equal iff stored exactly alike
            and self._payment_slots == other._payment_slots
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"AuctionOutcome(winners={len(self._phone_to_task)}, "
            f"served={len(self._allocation)}/{len(self._schedule)}, "
            f"total_payment={self.total_payment:.2f})"
        )
