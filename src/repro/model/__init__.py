"""Domain model: bids, smartphones, sensing tasks, rounds, and outcomes."""

from repro.model.bid import Bid
from repro.model.columnar import (
    COLUMNAR_SCHEMA,
    RoundColumns,
    pack_rounds_into,
    packed_size,
    unpack_rounds,
)
from repro.model.outcome import AuctionOutcome
from repro.model.round_config import RoundConfig
from repro.model.smartphone import SmartphoneProfile
from repro.model.task import SensingTask, TaskSchedule

__all__ = [
    "Bid",
    "SmartphoneProfile",
    "SensingTask",
    "TaskSchedule",
    "RoundConfig",
    "AuctionOutcome",
    "COLUMNAR_SCHEMA",
    "RoundColumns",
    "pack_rounds_into",
    "packed_size",
    "unpack_rounds",
]
