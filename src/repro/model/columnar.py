"""Columnar round codec: rounds as flat numpy columns, packable into shared memory.

The sharded campaign runner (:mod:`repro.experiments.sharding`) ships whole
rounds to worker processes through ``multiprocessing.shared_memory`` instead
of pickling lists of :class:`~repro.model.bid.Bid` objects.  This module is
the wire format: a :class:`RoundColumns` holds one round as five flat
columns (phone id, arrival, departure, cost, per-slot task counts), and
:func:`pack_rounds_into` / :func:`unpack_rounds` lay any number of rounds
out back to back in a single byte buffer.

Layout
------
Every column is a contiguous 8-byte-element array, so the packed payload is
naturally aligned with no padding.  For each round, in order::

    phone_id    int64[num_phones]
    arrival     int64[num_phones]
    departure   int64[num_phones]
    cost        float64[num_phones]
    task_counts int64[num_slots]

The header returned by :func:`pack_rounds_into` records the per-round
``num_phones`` / ``num_slots`` / ``task_value``; offsets are recomputed from
those counts on unpack, so the header is a small picklable dict and the
payload itself never moves through a pickle.  :func:`unpack_rounds` builds
zero-copy ``numpy`` views into the buffer — callers must drop the returned
:class:`RoundColumns` (and anything holding their arrays) before closing
the shared-memory segment backing the buffer.

Decoding to model objects (:meth:`RoundColumns.decode_bids` /
:meth:`RoundColumns.decode_profiles`) uses a trusted fast path that skips
``__post_init__`` validation: the columns are produced by the workload
generator, which already validated every field.  The constructed objects
are attribute-for-attribute identical to validated construction (same
``__dict__`` insertion order, same value types), so downstream pickles are
byte-identical.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ValidationError
from repro.model.bid import Bid
from repro.model.smartphone import SmartphoneProfile
from repro.model.task import TaskSchedule

#: Schema tag embedded in pack headers (bump on layout changes).
COLUMNAR_SCHEMA = "repro-columnar/1"

_INT = np.dtype(np.int64)
_FLOAT = np.dtype(np.float64)
_ELEMENT_BYTES = 8


@dataclasses.dataclass(frozen=True)
class RoundColumns:
    """One generated round as flat columns (see module docstring).

    Attributes
    ----------
    num_slots:
        Round horizon ``m``.
    task_value:
        The platform's uniform per-task value ``ν``.
    phone_id / arrival / departure / cost:
        Per-phone columns, all of length ``num_phones``, ordered by
        phone id (the generator's order).
    task_counts:
        Task arrivals per slot, length ``num_slots``.
    """

    num_slots: int
    task_value: float
    phone_id: np.ndarray
    arrival: np.ndarray
    departure: np.ndarray
    cost: np.ndarray
    task_counts: np.ndarray

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise ValidationError(
                f"num_slots must be >= 1, got {self.num_slots}"
            )
        n = len(self.phone_id)
        for name in ("arrival", "departure", "cost"):
            if len(getattr(self, name)) != n:
                raise ValidationError(
                    f"column {name!r} has length "
                    f"{len(getattr(self, name))}, expected {n}"
                )
        if len(self.task_counts) != self.num_slots:
            raise ValidationError(
                f"task_counts has length {len(self.task_counts)}, "
                f"expected num_slots={self.num_slots}"
            )

    @property
    def num_phones(self) -> int:
        """Number of phones in the round."""
        return len(self.phone_id)

    @property
    def nbytes(self) -> int:
        """Packed size of this round in bytes."""
        return _ELEMENT_BYTES * (4 * self.num_phones + self.num_slots)

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    @classmethod
    def from_scenario(cls, scenario: Any) -> "RoundColumns":
        """Encode an already-materialised scenario (tests, traces).

        The workload generator produces columns directly
        (``WorkloadConfig.generate_columns``); this constructor exists for
        round-tripping scenarios that were built some other way.  The
        schedule must carry a uniform task value (the codec stores one
        ``ν`` per round, matching the paper's model).
        """
        profiles = scenario.profiles
        value = scenario.schedule.uniform_value
        if value is None:
            raise ValidationError(
                "columnar codec requires a uniform task value; "
                "this schedule mixes values"
            )
        return cls(
            num_slots=scenario.schedule.num_slots,
            task_value=float(value),
            phone_id=np.array(
                [p.phone_id for p in profiles], dtype=_INT
            ),
            arrival=np.array([p.arrival for p in profiles], dtype=_INT),
            departure=np.array(
                [p.departure for p in profiles], dtype=_INT
            ),
            cost=np.array([p.cost for p in profiles], dtype=_FLOAT),
            task_counts=np.array(
                scenario.schedule.counts, dtype=_INT
            ),
        )

    # ------------------------------------------------------------------
    # Decoding (trusted fast path)
    # ------------------------------------------------------------------
    def decode_profiles(self) -> List[SmartphoneProfile]:
        """Materialise :class:`SmartphoneProfile` objects from the columns.

        Constructs instances through ``object.__new__`` with fields set in
        declaration order, skipping ``__post_init__`` — the generator
        validated these values when the columns were produced.  The result
        is indistinguishable (including pickle bytes) from validated
        construction.
        """
        return _decode(SmartphoneProfile, self)

    def decode_bids(self) -> List[Bid]:
        """Materialise the truthful bid vector from the columns.

        Equivalent to ``[p.truthful_bid() for p in decode_profiles()]``
        but without the double construction cost; under truthful bidding
        the bid fields equal the profile fields verbatim.
        """
        return _decode(Bid, self)

    def decode_schedule(self) -> TaskSchedule:
        """Rebuild the task schedule (same path the generator uses)."""
        return TaskSchedule.from_counts(
            [int(c) for c in self.task_counts], value=self.task_value
        )


def _decode(cls: type, columns: RoundColumns) -> List[Any]:
    """Build ``cls`` instances from columns via the trusted fast path."""
    new = object.__new__
    out: List[Any] = []
    append = out.append
    for pid, arr, dep, cost in zip(
        columns.phone_id.tolist(),
        columns.arrival.tolist(),
        columns.departure.tolist(),
        columns.cost.tolist(),
    ):
        obj = new(cls)
        state = obj.__dict__
        state["phone_id"] = pid
        state["arrival"] = arr
        state["departure"] = dep
        state["cost"] = cost
        append(obj)
    return out


# ----------------------------------------------------------------------
# Packing rounds into one flat buffer
# ----------------------------------------------------------------------
def packed_size(rounds: Sequence[RoundColumns]) -> int:
    """Total bytes :func:`pack_rounds_into` needs for ``rounds``."""
    return sum(columns.nbytes for columns in rounds)


def pack_rounds_into(
    rounds: Sequence[RoundColumns], buffer: Any
) -> Dict[str, Any]:
    """Write ``rounds`` back to back into ``buffer``; return the header.

    ``buffer`` is any writable buffer (typically a shared-memory block's
    ``buf``) of at least :func:`packed_size` bytes.  The returned header is
    a small picklable dict; together with the buffer it is the complete
    wire representation consumed by :func:`unpack_rounds`.
    """
    needed = packed_size(rounds)
    if len(buffer) < needed:
        raise ValidationError(
            f"pack buffer holds {len(buffer)} bytes, need {needed}"
        )
    offset = 0
    entries: List[Dict[str, Any]] = []
    for columns in rounds:
        for column, dtype in _round_layout(columns):
            source = np.ascontiguousarray(column, dtype=dtype)
            view = np.frombuffer(
                buffer, dtype=dtype, count=source.size, offset=offset
            )
            view[:] = source
            offset += source.nbytes
        entries.append(
            {
                "num_phones": columns.num_phones,
                "num_slots": columns.num_slots,
                "task_value": columns.task_value,
            }
        )
    return {"schema": COLUMNAR_SCHEMA, "rounds": entries}


def unpack_rounds(
    buffer: Any, header: Dict[str, Any]
) -> List[RoundColumns]:
    """Zero-copy inverse of :func:`pack_rounds_into`.

    The returned columns are views into ``buffer`` — no bytes are copied.
    Callers must drop every returned object before releasing the buffer
    (closing its shared-memory segment), or the release will fail with a
    ``BufferError``.
    """
    if header.get("schema") != COLUMNAR_SCHEMA:
        raise ValidationError(
            f"unknown columnar schema {header.get('schema')!r}; "
            f"expected {COLUMNAR_SCHEMA!r}"
        )
    entries = header.get("rounds")
    if not isinstance(entries, list):
        raise ValidationError("columnar header is missing 'rounds'")
    rounds: List[RoundColumns] = []
    offset = 0
    for entry in entries:
        num_phones = int(entry["num_phones"])
        num_slots = int(entry["num_slots"])
        need = _ELEMENT_BYTES * (4 * num_phones + num_slots)
        if offset + need > len(buffer):
            raise ValidationError(
                f"columnar buffer truncated: need {offset + need} "
                f"bytes, have {len(buffer)}"
            )
        views: List[np.ndarray] = []
        for count, dtype in (
            (num_phones, _INT),
            (num_phones, _INT),
            (num_phones, _INT),
            (num_phones, _FLOAT),
            (num_slots, _INT),
        ):
            views.append(
                np.frombuffer(
                    buffer, dtype=dtype, count=count, offset=offset
                )
            )
            offset += count * _ELEMENT_BYTES
        rounds.append(
            RoundColumns(
                num_slots=num_slots,
                task_value=float(entry["task_value"]),
                phone_id=views[0],
                arrival=views[1],
                departure=views[2],
                cost=views[3],
                task_counts=views[4],
            )
        )
    return rounds


def _round_layout(
    columns: RoundColumns,
) -> Tuple[Tuple[np.ndarray, np.dtype], ...]:
    """The (column, dtype) sequence defining one round's packed layout."""
    return (
        (columns.phone_id, _INT),
        (columns.arrival, _INT),
        (columns.departure, _INT),
        (columns.cost, _FLOAT),
        (columns.task_counts, _INT),
    )
