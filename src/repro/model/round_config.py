"""Configuration of one auction round.

The paper runs the reverse auction "round by round", each round containing
``m`` equal-size slots (Section III-B).  :class:`RoundConfig` carries the
horizon plus the cross-cutting validation a mechanism performs before
allocating: unique phone ids, bids inside the horizon, schedule matching
the horizon.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Sequence

from repro.errors import MechanismError, ValidationError
from repro.model.bid import Bid
from repro.model.task import TaskSchedule
from repro.utils.validation import check_positive, check_type


@dataclasses.dataclass(frozen=True)
class RoundConfig:
    """Immutable parameters of one auction round.

    Attributes
    ----------
    num_slots:
        The round horizon ``m``; slots are numbered 1..m.
    """

    num_slots: int

    def __post_init__(self) -> None:
        check_type("num_slots", self.num_slots, int)
        check_positive("num_slots", self.num_slots)

    def validate_bids(self, bids: Sequence[Bid]) -> Dict[int, Bid]:
        """Check bids fit this round; return them indexed by phone id.

        Raises
        ------
        MechanismError
            On duplicate phone ids or a bid whose claimed window falls
            outside ``[1, num_slots]``.
        """
        by_phone: Dict[int, Bid] = {}
        for bid in bids:
            if not isinstance(bid, Bid):
                raise MechanismError(
                    f"bids must be Bid instances, got {type(bid).__name__}"
                )
            if bid.phone_id in by_phone:
                raise MechanismError(
                    f"duplicate bid for phone {bid.phone_id}; each "
                    f"smartphone submits at most one bid per round"
                )
            if bid.departure > self.num_slots:
                raise MechanismError(
                    f"phone {bid.phone_id} claims departure {bid.departure} "
                    f"beyond the round horizon of {self.num_slots} slots"
                )
            by_phone[bid.phone_id] = bid
        return by_phone

    def validate_schedule(self, schedule: TaskSchedule) -> TaskSchedule:
        """Check the task schedule matches this round's horizon."""
        if not isinstance(schedule, TaskSchedule):
            raise MechanismError(
                f"schedule must be a TaskSchedule, got "
                f"{type(schedule).__name__}"
            )
        if schedule.num_slots != self.num_slots:
            raise MechanismError(
                f"schedule horizon ({schedule.num_slots} slots) does not "
                f"match round horizon ({self.num_slots} slots)"
            )
        return schedule

    @classmethod
    def for_schedule(cls, schedule: TaskSchedule) -> "RoundConfig":
        """Convenience constructor matching a schedule's horizon."""
        if not isinstance(schedule, TaskSchedule):
            raise ValidationError(
                f"schedule must be a TaskSchedule, got "
                f"{type(schedule).__name__}"
            )
        return cls(num_slots=schedule.num_slots)
