"""Private smartphone profiles (the ground truth behind each bid).

A :class:`SmartphoneProfile` holds the *real* private information
``(a_i, d_i, c_i)`` of Section III-A: real arrival slot, real departure
slot, and real per-task cost.  Mechanisms never see profiles — they see
:class:`~repro.model.bid.Bid` objects.  Profiles are used by the simulation
layer to generate bids (truthful or strategic) and by the metrics layer to
compute true utilities and true social welfare.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict

from repro.errors import BidConstraintError, ValidationError
from repro.model.bid import Bid
from repro.utils.validation import check_non_negative, check_positive, check_type


@dataclasses.dataclass(frozen=True, order=True)
class SmartphoneProfile:
    """The immutable private type ``(a_i, d_i, c_i)`` of one smartphone.

    Attributes
    ----------
    phone_id:
        Identifier, unique within a round.
    arrival:
        Real first active slot ``a_i`` (1-based, inclusive).
    departure:
        Real last active slot ``d_i`` (1-based, inclusive).
    cost:
        Real cost ``c_i >= 0`` of performing one sensing task.
    """

    phone_id: int
    arrival: int
    departure: int
    cost: float

    def __post_init__(self) -> None:
        check_type("phone_id", self.phone_id, int)
        check_type("arrival", self.arrival, int)
        check_type("departure", self.departure, int)
        if self.phone_id < 0:
            raise ValidationError(f"phone_id must be >= 0, got {self.phone_id}")
        check_positive("arrival", self.arrival)
        check_positive("departure", self.departure)
        if self.departure < self.arrival:
            raise ValidationError(
                f"departure ({self.departure}) must be >= arrival "
                f"({self.arrival}) for phone {self.phone_id}"
            )
        check_non_negative("cost", self.cost)
        object.__setattr__(self, "cost", float(self.cost))

    def is_active(self, slot: int) -> bool:
        """Whether the phone is really active in ``slot``."""
        return self.arrival <= slot <= self.departure

    @property
    def active_length(self) -> int:
        """Real number of active slots."""
        return self.departure - self.arrival + 1

    def truthful_bid(self) -> Bid:
        """The bid a truthful smartphone submits: its private type verbatim."""
        return Bid(
            phone_id=self.phone_id,
            arrival=self.arrival,
            departure=self.departure,
            cost=self.cost,
        )

    def is_feasible_claim(self, bid: Bid) -> bool:
        """Whether ``bid`` respects the structural misreport constraints.

        A strategic phone may delay its claimed arrival and advance its
        claimed departure (``ã_i >= a_i`` and ``d̃_i <= d_i``), and may
        claim any non-negative cost; it cannot claim availability outside
        its real active window (no early-arrival, no late-departure —
        Section III-B).
        """
        return (
            bid.phone_id == self.phone_id
            and bid.arrival >= self.arrival
            and bid.departure <= self.departure
            and bid.departure >= bid.arrival
        )

    def check_claim(self, bid: Bid) -> Bid:
        """Validate ``bid`` against the misreport constraints; return it.

        Raises
        ------
        BidConstraintError
            If the bid claims early arrival, late departure, or belongs to
            a different phone.
        """
        if bid.phone_id != self.phone_id:
            raise BidConstraintError(
                f"bid belongs to phone {bid.phone_id}, profile is "
                f"phone {self.phone_id}"
            )
        if bid.arrival < self.arrival:
            raise BidConstraintError(
                f"phone {self.phone_id} claims arrival {bid.arrival} before "
                f"its real arrival {self.arrival} (early-arrival misreport "
                f"is infeasible)"
            )
        if bid.departure > self.departure:
            raise BidConstraintError(
                f"phone {self.phone_id} claims departure {bid.departure} "
                f"after its real departure {self.departure} (late-departure "
                f"misreport is infeasible)"
            )
        return bid

    def utility(self, payment: float, allocated: bool) -> float:
        """Definition 1: utility = payment − real cost if allocated.

        A phone that wins no task incurs no cost; with a payment of zero it
        has utility zero.  (Untruthful baseline mechanisms may in principle
        pay losers, which this formula handles as pure gain.)
        """
        return payment - (self.cost if allocated else 0.0)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise to a JSON-friendly dict (used by trace recording)."""
        return {
            "phone_id": self.phone_id,
            "arrival": self.arrival,
            "departure": self.departure,
            "cost": self.cost,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "SmartphoneProfile":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                phone_id=int(payload["phone_id"]),
                arrival=int(payload["arrival"]),
                departure=int(payload["departure"]),
                cost=float(payload["cost"]),
            )
        except KeyError as exc:
            raise ValidationError(f"profile payload missing key: {exc}") from exc
