"""Exception hierarchy for the ``repro`` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch one base class at an API boundary.  The subclasses mirror
the package layers: model validation, matching substrate, mechanism
execution, simulation, and the experiment harness.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ValidationError(ReproError, ValueError):
    """An input value violates a documented constraint.

    Raised by the domain-model constructors (bids, tasks, profiles,
    configurations) and by public functions that validate arguments before
    doing any work.  Inherits :class:`ValueError` so existing callers that
    catch ``ValueError`` keep working.
    """


class EventDecodeError(ValidationError):
    """A serialised event payload could not be decoded.

    Raised by :func:`repro.auction.events.event_from_dict` on a payload
    that is not a mapping, carries a missing or unknown ``"event"`` tag,
    or has missing/extra/mistyped fields.  The offending payload is
    attached on :attr:`payload` so journal recovery and trace tooling
    can report exactly what was read.  Inherits :class:`ValueError`
    (via :class:`ValidationError`) so existing callers that catch
    ``ValueError`` keep working.
    """

    def __init__(self, message: str, payload: object = None) -> None:
        super().__init__(message)
        #: The payload that failed to decode, verbatim.
        self.payload = payload


class BidConstraintError(ValidationError):
    """A bid violates the structural misreport constraints of the paper.

    The paper restricts strategic behaviour to *no early-arrival* and *no
    late-departure* misreports: a smartphone may claim an arrival no earlier
    than its real arrival and a departure no later than its real departure
    (Section III-B).  This error is raised when a claimed bid steps outside
    the feasible misreport region of a private profile.
    """


class MatchingError(ReproError):
    """The matching substrate was given an invalid instance.

    Examples: a non-rectangular weight matrix, NaN weights, or a matching
    that is checked against a graph it does not belong to.
    """


class MechanismError(ReproError):
    """A mechanism was invoked with inconsistent inputs.

    Examples: duplicate phone identifiers in one round, a task schedule
    that does not fit inside the round's slot horizon, or payments queried
    for a phone the mechanism never saw.
    """


class SanitizationError(MechanismError):
    """A mechanism produced an outcome violating a paper invariant.

    Raised by :class:`repro.analysis.sanitizer.SanitizedMechanism` when a
    wrapped run yields an outcome that fails structural feasibility
    (constraints (4)-(6)), individual rationality (Definition 5, Theorems
    2 and 5), or welfare-accounting consistency (Definition 3).  Carries
    the structured violation reports on :attr:`violations`.
    """

    def __init__(self, message: str, violations=()):
        super().__init__(message)
        #: Tuple of :class:`repro.analysis.sanitizer.Violation`.
        self.violations = tuple(violations)


class ObservabilityError(ReproError):
    """The telemetry layer was misused.

    Examples: a quantile outside ``[0, 1]``, a counter decremented, a
    span finished twice, or a trace sink written to after close.
    """


class SimulationError(ReproError):
    """The simulation layer hit an inconsistent state.

    Examples: a trace replay that references unknown entities or a scenario
    whose task schedule disagrees with its round configuration.
    """


class FaultError(SimulationError):
    """The fault-injection layer was configured or used inconsistently.

    Examples: a fault probability outside ``[0, 1]``, a dropout slot
    outside the phone's active window, or a fault plan applied to a
    scenario it was not built for.
    """


class JournalError(ReproError):
    """A write-ahead journal is corrupt, inconsistent, or misused.

    Examples: a mid-log record whose checksum or hash chain does not
    verify (:attr:`sequence` names the offending record), an append to
    a journal that already observed a simulated crash, or a journal
    whose header records a different round configuration than the one
    being resumed.  A *torn tail* — an invalid final record, the
    signature of a crash mid-write — is not an error: recovery
    truncates it silently.
    """

    def __init__(self, message: str, sequence: "Optional[int]" = None) -> None:
        super().__init__(message)
        #: Sequence number of the offending record, when known.
        self.sequence = sequence


class ReplayDivergenceError(JournalError):
    """Replaying a journal did not reproduce the journaled history.

    Raised when a journaled derived event disagrees with the event the
    platform emits while re-executing the journaled commands, or when a
    resumed round's regenerated command stream does not prefix-match
    the journaled one.  Either means the journal and the code that
    wrote it disagree — replay refuses to silently diverge.
    """


class ExperimentError(ReproError):
    """The experiment harness was configured inconsistently.

    Examples: an empty sweep, an unknown mechanism name, or zero
    repetitions.
    """


class CheckpointError(ExperimentError):
    """A sweep checkpoint could not be written, read, or trusted.

    Examples: a checkpoint file with an unknown schema version, a
    checksum mismatch (corruption), or a payload recorded for a
    different sweep point than the one requested.
    """


class ShardingError(ExperimentError):
    """The sharded campaign runner was misconfigured or lost a shard.

    Examples: duplicate city names, a submission order that is not a
    permutation of the planned shards, or a worker outcome missing a
    round the plan assigned to it.
    """
