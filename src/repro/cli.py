"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``
    Run one auction round with chosen workload parameters and mechanism;
    print the paper's metrics and a settlement summary.  Scenarios can
    be saved to / replayed from JSON traces.
``figures``
    Regenerate the paper's evaluation figures (Figs. 6-11) as tables and
    ASCII charts, optionally exporting CSV.
``audit``
    Run the truthfulness / individual-rationality audit against a
    mechanism.
``campaign``
    Run a multi-round campaign (round-by-round operation, Section
    III-B) with optional loser re-entry and fault injection.
``chaos``
    Run one round under injected faults (dropouts, delivery failures,
    bid delays/losses) paired against the fault-free run of the same
    bids; print the reliability report.
``replay``
    Deterministically re-execute a write-ahead journal written by a
    journaled round (``campaign --journal-dir`` / the durability API)
    and print the reconstructed outcome.
``verify-log``
    Integrity-check a journal without executing it: hash chain,
    sequence numbers, and torn-tail status.
``example``
    Walk through the paper's Fig. 4 / Fig. 5 worked example.
``trace``
    Run an instrumented scenario suite with telemetry enabled; export
    the span/event stream as JSONL, print the span tree and per-phase
    timings (plus ``--top`` self-time hotspots), and write a
    ``BENCH_*.json`` perf snapshot.
``trends``
    Render the bench-trend dashboard over every committed
    ``BENCH_*.json`` (and, optionally, the local run ledger): per-
    benchmark sparkline series with slope-based drift detection.
``profile``
    cProfile one mechanism run alongside the telemetry span report.
``lint``
    Run the repo-specific AST invariant linter
    (:mod:`repro.analysis`) over source trees.

Long-running commands additionally accept ``--ledger PATH`` (append a
structured run record to a durable ``RUNS.jsonl``) and, for
``campaign``, ``--heartbeat PATH`` (periodic live progress pulses).

Every command accepts ``--quiet`` (suppress progress chatter) and
``--json`` (emit one machine-readable JSON document instead of human
rendering); output is routed through :class:`repro.obs.Console`, and
default output is byte-identical to the historical plain prints.
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import sys
from typing import Any, Dict, List, Optional, Sequence

import numpy as np

from repro import obs
from repro.auction.multi_round import RETRY_LOSERS, RETRY_NONE, run_campaign
from repro.errors import ReproError
from repro.obs.ledger import LedgerSession, RunLedger
from repro.obs.live import HeartbeatConfig
from repro.experiments import (
    CityConfig,
    MechanismSpec,
    figure_spec,
    list_figures,
    render_sweep_csv,
    render_sweep_table,
    run_sharded_campaign,
    run_sweep,
)
from repro.experiments.figures import FIGURE_METRIC
from repro.experiments.report import render_sweep_chart
from repro.mechanisms import available_mechanisms, create_mechanism
from repro.metrics import audit_individual_rationality, audit_truthfulness
from repro.obs import Console
from repro.simulation import (
    SimulationEngine,
    WorkloadConfig,
    load_scenario,
    save_scenario,
)
from repro.utils.tables import format_table


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    defaults = WorkloadConfig.paper_default()
    parser.add_argument(
        "--slots", type=int, default=defaults.num_slots,
        help=f"slots per round m (default {defaults.num_slots})",
    )
    parser.add_argument(
        "--phone-rate", type=float, default=defaults.phone_rate,
        help=f"smartphone arrival rate λ (default {defaults.phone_rate})",
    )
    parser.add_argument(
        "--task-rate", type=float, default=defaults.task_rate,
        help=f"task arrival rate λ_t (default {defaults.task_rate})",
    )
    parser.add_argument(
        "--mean-cost", type=float, default=defaults.mean_cost,
        help=f"average real cost c̄ (default {defaults.mean_cost})",
    )
    parser.add_argument(
        "--active-length", type=int, default=defaults.mean_active_length,
        help="mean active-time length "
        f"(default {defaults.mean_active_length})",
    )
    parser.add_argument(
        "--task-value", type=float, default=defaults.task_value,
        help=f"task value ν (default {defaults.task_value})",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _workload_from_args(args: argparse.Namespace) -> WorkloadConfig:
    return WorkloadConfig(
        num_slots=args.slots,
        phone_rate=args.phone_rate,
        task_rate=args.task_rate,
        mean_cost=args.mean_cost,
        mean_active_length=args.active_length,
        task_value=args.task_value,
    )


def _add_mechanism_argument(
    parser: argparse.ArgumentParser, default: str = "online-greedy"
) -> None:
    parser.add_argument(
        "--mechanism",
        default=default,
        choices=sorted(available_mechanisms()),
        help=f"mechanism to run (default {default})",
    )
    parser.add_argument(
        "--reserve-price",
        action="store_true",
        help="online-greedy only: refuse bids above the task value",
    )
    parser.add_argument(
        "--payment-rule",
        choices=("paper", "exact"),
        default="paper",
        help="online-greedy only: Algorithm 2 or exact critical value",
    )
    parser.add_argument(
        "--engine",
        choices=("batch", "streaming"),
        default="batch",
        help=(
            "online-greedy only: snapshot-resume batch engine or the "
            "event-driven streaming engine (bit-identical outcomes)"
        ),
    )
    parser.add_argument(
        "--price",
        type=float,
        default=None,
        help="fixed-price only: the posted price",
    )


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dropout-prob", type=float, default=0.0,
        help="probability a phone departs early without notice",
    )
    parser.add_argument(
        "--failure-prob", type=float, default=0.0,
        help="probability a winner fails to deliver its task",
    )
    parser.add_argument(
        "--bid-delay-prob", type=float, default=0.0,
        help="probability a bid reaches the platform late",
    )
    parser.add_argument(
        "--bid-loss-prob", type=float, default=0.0,
        help="probability a bid never reaches the platform",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed of the fault draw (default: the workload seed)",
    )
    parser.add_argument(
        "--max-reassign", type=int, default=3,
        help="recovery attempts per failed task (default 3)",
    )


def _fault_config_from_args(args: argparse.Namespace):
    from repro.faults import FaultConfig

    return FaultConfig(
        dropout_prob=args.dropout_prob,
        task_failure_prob=args.failure_prob,
        bid_delay_prob=args.bid_delay_prob,
        bid_loss_prob=args.bid_loss_prob,
        max_reassignments=args.max_reassign,
    )


def _mechanism_kwargs_from_args(args: argparse.Namespace) -> Dict[str, Any]:
    if args.mechanism == "online-greedy":
        return {
            "reserve_price": args.reserve_price,
            "payment_rule": args.payment_rule,
            "engine": getattr(args, "engine", "batch"),
        }
    if args.mechanism == "fixed-price":
        if args.price is None:
            raise ReproError("--price is required for fixed-price")
        return {"price": args.price}
    return {}


def _mechanism_from_args(args: argparse.Namespace):
    return create_mechanism(args.mechanism, **_mechanism_kwargs_from_args(args))


def _mechanism_spec_from_args(args: argparse.Namespace) -> MechanismSpec:
    """The picklable spec of the same mechanism (shard workers rebuild)."""
    return MechanismSpec.of(args.mechanism, **_mechanism_kwargs_from_args(args))


def _ledger_session(
    args: argparse.Namespace,
    command: str,
    label: str,
    config: Dict[str, Any],
) -> Optional[LedgerSession]:
    """Open a run-ledger session when ``--ledger`` was given."""
    ledger_path = getattr(args, "ledger", None)
    if ledger_path is None:
        return None
    return LedgerSession.start(
        command, label=label, config=config, ledger=RunLedger(ledger_path)
    )


def _finish_ledger(
    session: Optional[LedgerSession], console: Console
) -> None:
    """Append the pending run record (no-op without ``--ledger``)."""
    if session is None:
        return
    record = session.finish()
    assert record is not None
    console.note(
        f"ledger: run {record.run_id} "
        f"({record.wall_seconds:.2f}s) appended"
    )
    console.result({"run_id": record.run_id})


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_simulate(args: argparse.Namespace, console: Console) -> int:
    if args.from_trace:
        scenario = load_scenario(args.from_trace)
        console.note(f"loaded scenario from {args.from_trace}")
    else:
        scenario = _workload_from_args(args).generate(seed=args.seed)
    if args.save_trace:
        save_scenario(scenario, args.save_trace)
        console.note(f"scenario saved to {args.save_trace}")

    mechanism = _mechanism_from_args(args)
    result = SimulationEngine().run(mechanism, scenario)
    console.out(
        f"\n{scenario.num_phones} phones, {scenario.num_tasks} tasks, "
        f"{scenario.num_slots} slots; mechanism: {mechanism.name}\n"
    )
    ratio = result.overpayment_ratio
    console.out(
        format_table(
            ["metric", "value"],
            [
                ["social welfare ω (Def. 3)", result.true_welfare],
                ["claimed welfare", result.claimed_welfare],
                ["total payment", result.total_payment],
                [
                    "overpayment ratio σ (Def. 11)",
                    ratio if ratio is not None else "n/a",
                ],
                ["tasks served", result.tasks_served],
                ["service rate", result.service_rate],
            ],
            title="Round metrics",
        )
    )
    console.result(
        {
            "mechanism": mechanism.name,
            "phones": scenario.num_phones,
            "tasks": scenario.num_tasks,
            "slots": scenario.num_slots,
            "welfare": result.true_welfare,
            "claimed_welfare": result.claimed_welfare,
            "total_payment": result.total_payment,
            "overpayment_ratio": ratio,
            "tasks_served": result.tasks_served,
            "service_rate": result.service_rate,
        }
    )
    return 0


def _cmd_figures(args: argparse.Namespace, console: Console) -> int:
    names = args.names or list(list_figures())
    unknown = [n for n in names if n not in list_figures()]
    if unknown:
        raise ReproError(
            f"unknown figure(s) {unknown}; available: {list(list_figures())}"
        )
    session = _ledger_session(
        args,
        "figures",
        label=",".join(names),
        config={
            "figures": names,
            "repetitions": args.repetitions,
            "seed": args.seed,
            "workers": args.workers,
            "retries": args.retries,
        },
    )
    checkpoint = None
    if args.checkpoint_dir is not None:
        from repro.experiments import CheckpointStore

        checkpoint = CheckpointStore(args.checkpoint_dir)
    cache = {}
    rendered = []
    for name in names:
        spec = figure_spec(
            name,
            repetitions=args.repetitions,
            base_seed=args.seed,
            engine=args.engine,
        )
        key = (spec.param, spec.values)
        if key not in cache:
            cache[key] = run_sweep(
                spec,
                checkpoint=checkpoint,
                retries=args.retries,
                backoff=args.backoff,
                workers=args.workers,
            )
        result = cache[key]
        metric = FIGURE_METRIC[name]
        console.out()
        console.out(render_sweep_table(result, metric, title=spec.title))
        console.out()
        console.out(render_sweep_chart(result, metric))
        rendered.append(name)
        if args.csv_dir:
            out = pathlib.Path(args.csv_dir)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{name}.csv").write_text(
                render_sweep_csv(result, metric)
            )
            console.note(f"(csv written to {out / (name + '.csv')})")
    console.result({"figures": rendered})
    if session is not None:
        session.add_counters(
            figures=len(rendered), sweeps=len(cache)
        )
        if args.csv_dir is not None:
            session.add_artifact("csv_dir", str(args.csv_dir))
        _finish_ledger(session, console)
    return 0


def _cmd_audit(args: argparse.Namespace, console: Console) -> int:
    scenario = _workload_from_args(args).generate(seed=args.seed)
    mechanism = _mechanism_from_args(args)
    rng = np.random.default_rng(args.seed)
    report = audit_truthfulness(
        mechanism, scenario, rng, max_phones=args.max_phones
    )
    ir = audit_individual_rationality(mechanism, scenario)
    console.out(
        f"\nmechanism: {mechanism.name}  "
        f"({scenario.num_phones} phones, {scenario.num_tasks} tasks)\n"
    )
    console.out(
        format_table(
            ["check", "result"],
            [
                ["deviations tested", report.deviations_tested],
                ["profitable deviations", len(report.violations)],
                ["IR violations", len(ir)],
                ["truthfulness audit", "PASS" if report.passed else "FAIL"],
                ["individual rationality", "PASS" if not ir else "FAIL"],
            ],
            title="Audit",
        )
    )
    for violation in report.violations[:10]:
        console.out(
            f"  phone {violation.phone_id} gains {violation.gain:.3f} "
            f"via {violation.strategy}: {violation.deviant_bid}"
        )
    console.result(
        {
            "mechanism": mechanism.name,
            "deviations_tested": report.deviations_tested,
            "profitable_deviations": len(report.violations),
            "ir_violations": len(ir),
            "truthful": report.passed,
            "individually_rational": not ir,
        }
    )
    return 0 if report.passed and not ir else 1


def _cmd_chaos(args: argparse.Namespace, console: Console) -> int:
    from repro.faults import run_with_faults

    scenario = _workload_from_args(args).generate(seed=args.seed)
    config = _fault_config_from_args(args)
    run = run_with_faults(
        scenario,
        config,
        seed=args.fault_seed if args.fault_seed is not None else args.seed,
        reserve_price=args.reserve_price,
        payment_rule=args.payment_rule,
        paired=True,
    )
    report, reliability = run.report, run.reliability
    console.out(
        f"\n{scenario.num_phones} phones, {scenario.num_tasks} tasks, "
        f"{scenario.num_slots} slots; faults: dropout={config.dropout_prob} "
        f"failure={config.task_failure_prob} "
        f"delay={config.bid_delay_prob} loss={config.bid_loss_prob}\n"
    )
    console.out(
        format_table(
            ["fault", "count"],
            [
                ["bids lost in transit", len(report.lost_bids)],
                ["bids delayed", len(report.delayed_bids)],
                ["phones dropped out", len(report.dropped)],
                ["deliveries failed", len(report.failed_deliverers)],
                ["payments withheld", len(report.withheld)],
                ["tasks recovered", len(report.recovered_tasks)],
                ["tasks abandoned", len(report.abandoned_tasks)],
            ],
            title="Injected faults & recovery",
        )
    )
    console.out()
    console.out(
        format_table(
            ["metric", "value"],
            [
                ["tasks delivered", reliability.tasks_delivered],
                ["completion rate", reliability.completion_rate],
                ["recovered fraction", reliability.recovered_fraction],
                ["welfare (faulty)", reliability.welfare_faulty],
                ["welfare (fault-free)", reliability.welfare_fault_free],
                ["welfare degradation", reliability.welfare_degradation],
            ],
            title="Reliability vs. paired fault-free run",
        )
    )
    console.out("\nrecovered outcome passed all fault-aware invariant checks")
    console.result(
        {
            "dropped": len(report.dropped),
            "failed_deliveries": len(report.failed_deliverers),
            "recovered_tasks": len(report.recovered_tasks),
            "abandoned_tasks": len(report.abandoned_tasks),
            "completion_rate": reliability.completion_rate,
            "welfare_faulty": reliability.welfare_faulty,
            "welfare_fault_free": reliability.welfare_fault_free,
        }
    )
    return 0


def _cmd_campaign(args: argparse.Namespace, console: Console) -> int:
    if (
        args.cities is not None
        or args.shards > 1
        or args.checkpoint_dir is not None
    ):
        return _cmd_campaign_sharded(args, console)
    mechanism = _mechanism_from_args(args)
    fault_config = None
    if (
        args.dropout_prob or args.failure_prob
        or args.bid_delay_prob or args.bid_loss_prob
    ):
        fault_config = _fault_config_from_args(args)
    session = _ledger_session(
        args,
        "campaign",
        label=mechanism.name,
        config={
            "rounds": args.rounds,
            "seed": args.seed,
            "retry_losers": args.retry_losers,
            "workers": args.workers,
            "mechanism": mechanism.name,
            "slots": args.slots,
            "phone_rate": args.phone_rate,
            "task_rate": args.task_rate,
        },
    )
    heartbeat = None
    if args.heartbeat is not None:
        heartbeat = HeartbeatConfig(
            path=args.heartbeat,
            every=args.heartbeat_every,
            label="round",
            console=console,
        )
    # Heartbeats snapshot the ambient metrics registry; give them one
    # to read when the command isn't already traced.  Activation is
    # outcome-transparent (the trace-transparency invariant).
    vitals = (
        obs.activate(obs.Tracer())
        if heartbeat is not None and obs.current_tracer() is None
        else contextlib.nullcontext()
    )
    with vitals:
        result = run_campaign(
            mechanism,
            _workload_from_args(args),
            num_rounds=args.rounds,
            seed=args.seed,
            retry_policy=RETRY_LOSERS if args.retry_losers else RETRY_NONE,
            fault_config=fault_config,
            fault_seed=args.fault_seed,
            workers=args.workers,
            journal_dir=args.journal_dir,
            heartbeat=heartbeat,
        )
    if args.journal_dir is not None:
        console.note(f"per-round journals written under {args.journal_dir}")
    if args.heartbeat is not None:
        console.note(f"heartbeat log written to {args.heartbeat}")
    console.out(
        f"\ncampaign: {result.num_rounds} rounds, mechanism "
        f"{mechanism.name}, retry="
        f"{'losers' if args.retry_losers else 'none'}\n"
    )
    rows = [
        [
            index + 1,
            r.true_welfare,
            r.total_payment,
            r.overpayment_ratio if r.overpayment_ratio is not None else "n/a",
            r.tasks_served,
        ]
        for index, r in enumerate(result.rounds)
    ]
    console.out(
        format_table(
            ["round", "welfare", "payment", "σ", "tasks served"],
            rows,
            title="Per-round results",
        )
    )
    console.out()
    console.out(f"total welfare:    {result.total_welfare:.1f}")
    console.out(f"total payment:    {result.total_payment:.1f}")
    console.out(f"welfare/round:    {result.welfare_per_round}")
    console.out(f"returning phones: {result.returning_phones}")
    if fault_config is not None:
        console.out(f"phones dropped:   {result.dropped_phones}")
        console.out(f"failed deliveries:{result.delivery_failures}")
        console.out(f"tasks recovered:  {result.recovered_tasks}")
    console.result(
        {
            "mechanism": mechanism.name,
            "rounds": result.num_rounds,
            "total_welfare": result.total_welfare,
            "total_payment": result.total_payment,
            "returning_phones": result.returning_phones,
            "dropped_phones": result.dropped_phones,
            "delivery_failures": result.delivery_failures,
            "recovered_tasks": result.recovered_tasks,
        }
    )
    if session is not None:
        session.add_counters(
            rounds=result.num_rounds,
            total_welfare=result.total_welfare,
            total_payment=result.total_payment,
            returning_phones=result.returning_phones,
        )
        if args.journal_dir is not None:
            session.add_artifact("journal_dir", str(args.journal_dir))
        if args.heartbeat is not None:
            session.add_artifact("heartbeat", str(args.heartbeat))
        _finish_ledger(session, console)
    return 0


def _cmd_campaign_sharded(args: argparse.Namespace, console: Console) -> int:
    """``campaign --cities/--shards``: the shared-memory sharded runner."""
    if args.retry_losers:
        raise ReproError(
            "--cities/--shards is incompatible with --retry-losers "
            "(sharded rounds are independent by construction)"
        )
    if args.journal_dir is not None:
        raise ReproError(
            "--cities/--shards is incompatible with --journal-dir; use "
            "--checkpoint-dir for per-round shard checkpoints"
        )
    if (
        args.dropout_prob or args.failure_prob
        or args.bid_delay_prob or args.bid_loss_prob
    ):
        raise ReproError(
            "--cities/--shards does not support fault injection "
            "(fault-aware campaigns run the serial path)"
        )
    num_cities = args.cities if args.cities is not None else 1
    if num_cities < 1:
        raise ReproError(f"--cities must be >= 1, got {num_cities}")
    workload = _workload_from_args(args)
    cities = [
        CityConfig(f"city-{index}", workload, num_rounds=args.rounds)
        for index in range(num_cities)
    ]
    spec = _mechanism_spec_from_args(args)
    session = _ledger_session(
        args,
        "campaign",
        label=spec.display_label,
        config={
            "rounds": args.rounds,
            "seed": args.seed,
            "cities": num_cities,
            "shards_per_city": args.shards,
            "workers": args.workers,
            "mechanism": spec.name,
            "slots": args.slots,
            "phone_rate": args.phone_rate,
            "task_rate": args.task_rate,
        },
    )
    heartbeat = None
    if args.heartbeat is not None:
        heartbeat = HeartbeatConfig(
            path=args.heartbeat,
            every=args.heartbeat_every,
            label="shard",
            console=console,
        )
    # The shard counters (campaign.shard.*) are parent-side; give them a
    # registry to land on when the command is not already traced.
    vitals = (
        obs.activate(obs.Tracer())
        if obs.current_tracer() is None
        else contextlib.nullcontext()
    )
    with vitals:
        result = run_sharded_campaign(
            spec,
            cities,
            seed=args.seed,
            workers=args.workers,
            shards_per_city=args.shards,
            checkpoint_dir=args.checkpoint_dir,
            heartbeat=heartbeat,
        )
    if args.checkpoint_dir is not None:
        console.note(
            f"shard checkpoints streamed under {args.checkpoint_dir}"
        )
    if args.heartbeat is not None:
        console.note(f"heartbeat log written to {args.heartbeat}")
    console.out(
        f"\nsharded campaign: {num_cities} cities x {args.rounds} rounds, "
        f"{args.shards} shard(s)/city, {args.workers} worker(s), "
        f"mechanism {spec.display_label}\n"
    )
    rows = [
        [
            name,
            city_result.num_rounds,
            city_result.total_welfare,
            city_result.total_payment,
            str(city_result.welfare_per_round),
        ]
        for name, city_result in result.cities
    ]
    console.out(
        format_table(
            ["city", "rounds", "welfare", "payment", "welfare/round"],
            rows,
            title="Per-city results",
        )
    )
    console.out()
    console.out(f"total welfare: {result.total_welfare:.1f}")
    console.out(f"total payment: {result.total_payment:.1f}")
    console.result(
        {
            "mechanism": spec.name,
            "cities": num_cities,
            "rounds": result.num_rounds,
            "shards_per_city": args.shards,
            "workers": args.workers,
            "total_welfare": result.total_welfare,
            "total_payment": result.total_payment,
        }
    )
    if session is not None:
        session.add_counters(
            rounds=result.num_rounds,
            cities=num_cities,
            total_welfare=result.total_welfare,
            total_payment=result.total_payment,
        )
        if args.checkpoint_dir is not None:
            session.add_artifact(
                "checkpoint_dir", str(args.checkpoint_dir)
            )
        if args.heartbeat is not None:
            session.add_artifact("heartbeat", str(args.heartbeat))
        _finish_ledger(session, console)
    return 0


def _cmd_replay(args: argparse.Namespace, console: Console) -> int:
    from repro.durability import replay_journal

    result = replay_journal(args.journal)
    outcome = result.outcome
    console.out(
        f"\nreplayed {len(result.records)} records from {args.journal}: "
        f"{result.commands_applied} commands applied, "
        f"{result.events_verified} derived events verified\n"
    )
    if outcome is None:
        console.out(
            "journal ends before finalize (crashed round); partial state "
            f"reconstructed through slot {result.platform.current_slot}"
        )
        console.result(
            {
                "journal": str(args.journal),
                "records": len(result.records),
                "commands_applied": result.commands_applied,
                "events_verified": result.events_verified,
                "finalized": False,
            }
        )
        return 0
    console.out(
        format_table(
            ["metric", "value"],
            [
                ["winners", len(outcome.winners)],
                ["tasks served", len(outcome.allocation)],
                ["total payment", outcome.total_payment],
            ],
            title="Replayed outcome",
        )
    )
    console.result(
        {
            "journal": str(args.journal),
            "records": len(result.records),
            "commands_applied": result.commands_applied,
            "events_verified": result.events_verified,
            "finalized": True,
            "winners": sorted(outcome.winners),
            "total_payment": outcome.total_payment,
            "tasks_served": len(outcome.allocation),
        }
    )
    return 0


def _cmd_verify_log(args: argparse.Namespace, console: Console) -> int:
    from repro.durability import scan_journal

    scan = scan_journal(args.journal)
    if scan.torn and args.strict:
        raise ReproError(
            f"journal has a torn tail: {scan.torn_reason} "
            f"(segment {scan.torn_segment}, offset {scan.torn_offset})"
        )
    status = "TORN TAIL" if scan.torn else "OK"
    console.out(
        f"\n{args.journal}: {len(scan.records)} valid records across "
        f"{len(scan.segments)} segment(s) — {status}"
    )
    if scan.torn:
        console.out(
            f"  torn tail in {scan.torn_segment} at offset "
            f"{scan.torn_offset} ({scan.truncated_bytes} bytes): "
            f"{scan.torn_reason}"
        )
        console.out(
            "  (recoverable: opening the journal for append truncates "
            "the tail)"
        )
    console.result(
        {
            "journal": str(args.journal),
            "records": len(scan.records),
            "segments": [p.name for p in scan.segments],
            "last_seq": scan.last_seq,
            "torn": scan.torn,
            "torn_reason": scan.torn_reason,
            "truncated_bytes": scan.truncated_bytes,
        }
    )
    return 0 if not scan.torn else 1


def _cmd_example(args: argparse.Namespace, console: Console) -> int:
    from repro.mechanisms import OnlineGreedyMechanism
    from repro.mechanisms.baselines import SecondPriceSlotMechanism
    from repro.simulation.paper_example import (
        paper_example_bids,
        paper_example_profiles,
        paper_example_schedule,
    )

    schedule = paper_example_schedule()
    bids = paper_example_bids()
    outcome = OnlineGreedyMechanism().run(bids, schedule)
    console.out(
        format_table(
            ["phone", "window", "cost"],
            [
                [p.phone_id, f"[{p.arrival}, {p.departure}]", p.cost]
                for p in paper_example_profiles()
            ],
            title="Fig. 4: the 7 smartphones",
        )
    )
    console.out()
    console.out(
        format_table(
            ["slot", "winner", "payment"],
            [
                [
                    schedule.task(task_id).slot,
                    phone_id,
                    outcome.payment(phone_id),
                ]
                for task_id, phone_id in sorted(outcome.allocation.items())
            ],
            title="Online allocation + Algorithm-2 payments",
        )
    )
    second_price = SecondPriceSlotMechanism()
    truthful = second_price.run(bids, schedule)
    deviated = second_price.run(
        [b.with_window(4, 5) if b.phone_id == 1 else b for b in bids],
        schedule,
    )
    console.out(
        f"\nFig. 5: under second-price, phone 1 is paid "
        f"{truthful.payment(1):g} truthfully and "
        f"{deviated.payment(1):g} after delaying its arrival — a gain "
        f"of {deviated.payment(1) - truthful.payment(1):g}."
    )
    console.result(
        {
            "allocation": {
                str(task_id): phone_id
                for task_id, phone_id in sorted(outcome.allocation.items())
            },
            "payments": {
                str(pid): outcome.payment(pid)
                for pid in sorted(outcome.winners)
            },
        }
    )
    return 0


def _traced_scenario_suite(args: argparse.Namespace) -> None:
    """The workload ``repro-crowd trace`` instruments.

    Covers every span family of the taxonomy in one short run: an
    offline VCG solve on the paper example (matching spans), a
    platform-driven online round (platform-slot, payment, and event
    spans), and a two-point experiment sweep (sweep spans).
    """
    from repro.auction.round_driver import replay_scenario
    from repro.experiments.config import ExperimentConfig, MechanismSpec
    from repro.experiments.sweeps import SweepSpec
    from repro.simulation.paper_example import (
        paper_example_bids,
        paper_example_profiles,
        paper_example_schedule,
    )
    from repro.simulation.scenario import Scenario

    schedule = paper_example_schedule()
    bids = paper_example_bids()
    offline = create_mechanism("offline-vcg")
    with obs.span("mechanism.run", mechanism=offline.name, bids=len(bids)):
        offline.run(bids, schedule)

    scenario = Scenario(
        paper_example_profiles(),
        schedule,
        metadata={"source": "paper-example"},
    )
    replay_scenario(scenario)

    sweep_config = ExperimentConfig(
        workload=WorkloadConfig(
            num_slots=6,
            phone_rate=2.0,
            task_rate=1.0,
            mean_cost=5.0,
            mean_active_length=3,
            task_value=10.0,
        ),
        mechanisms=(MechanismSpec.of("online-greedy"),),
        repetitions=args.repetitions,
        base_seed=args.seed,
    )
    run_sweep(
        SweepSpec(
            name="trace-demo",
            title="trace demo sweep",
            param="phone_rate",
            values=(1.0, 2.0),
            config=sweep_config,
        )
    )


def _cmd_trace(args: argparse.Namespace, console: Console) -> int:
    session = _ledger_session(
        args,
        "trace",
        label=args.label,
        config={
            "seed": args.seed,
            "repetitions": args.repetitions,
            "label": args.label,
        },
    )
    sink = obs.JsonlSink(args.out)
    tracer = obs.Tracer(sink=sink)
    with obs.activate(tracer):
        _traced_scenario_suite(args)
    sink.close()

    console.out(obs.render_span_tree(tracer.spans, max_spans=args.max_spans))
    console.out()
    console.out(obs.render_phase_table(obs.aggregate_spans(tracer.spans)))
    if args.top:
        console.out()
        console.out(
            obs.render_hotspot_table(
                obs.top_hotspots(tracer.spans, args.top),
                title=f"Hotspots (top {args.top} by self time)",
            )
        )

    snapshot = obs.build_snapshot(
        tracer,
        label=args.label,
        meta={"command": "trace", "seed": args.seed},
    )
    snap_file = obs.write_snapshot(
        obs.snapshot_path(args.snapshot_dir, args.label), snapshot
    )
    console.note(
        f"\ntrace written to {args.out} ({len(tracer.spans)} spans, "
        f"{len(tracer.metrics.counters)} counters)"
    )
    console.note(f"perf snapshot written to {snap_file}")
    console.result(
        {
            "trace_path": str(args.out),
            "snapshot_path": str(snap_file),
            "span_count": len(tracer.spans),
            "phases": sorted({span.name for span in tracer.spans}),
            "counters": tracer.metrics.counters,
        }
    )
    if args.top:
        console.result(
            {
                "hotspots": [
                    {
                        "name": h.name,
                        "self_seconds": h.self_seconds,
                        "share": h.share,
                    }
                    for h in obs.top_hotspots(tracer.spans, args.top)
                ]
            }
        )
    if session is not None:
        session.add_counters(
            spans=len(tracer.spans),
            counters=len(tracer.metrics.counters),
        )
        session.add_artifact("trace", str(args.out))
        session.add_artifact("snapshot", str(snap_file))
        _finish_ledger(session, console)
    return 0


def _cmd_trends(args: argparse.Namespace, console: Console) -> int:
    from repro.obs.trends import collect_trends, render_trend_dashboard

    ledger = RunLedger(args.ledger) if args.ledger is not None else None
    report = collect_trends(
        args.bench_dir, ledger=ledger, threshold=args.threshold
    )
    dashboard = render_trend_dashboard(report)
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(dashboard, encoding="utf-8")
        console.note(f"trend dashboard written to {args.out}")
    else:
        console.out(dashboard)
    drifting = report.drifting()
    console.result(
        {
            "sources": list(report.sources),
            "skipped": list(report.skipped),
            "verdicts": report.verdicts(),
            "drifting": drifting,
        }
    )
    if drifting and args.fail_on_drift:
        console.error(
            f"trend drift detected in: {', '.join(drifting)}"
        )
        return 1
    return 0


def _cmd_profile(args: argparse.Namespace, console: Console) -> int:
    import cProfile
    import io
    import pstats

    scenario = _workload_from_args(args).generate(seed=args.seed)
    mechanism = _mechanism_from_args(args)
    engine = SimulationEngine()
    tracer = obs.Tracer()
    profiler = cProfile.Profile()
    with obs.activate(tracer):
        profiler.enable()
        for _ in range(args.repeat):
            engine.run(mechanism, scenario)
        profiler.disable()

    console.out(
        f"\nprofiled {args.repeat} run(s) of {mechanism.name} on "
        f"{scenario.num_phones} phones / {scenario.num_tasks} tasks\n"
    )
    console.out(obs.render_phase_table(obs.aggregate_spans(tracer.spans)))
    console.out()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(args.top)
    console.out(buffer.getvalue().rstrip())
    console.result(
        {
            "mechanism": mechanism.name,
            "repeats": args.repeat,
            "span_count": len(tracer.spans),
            "phases": [
                phase.to_dict()
                for phase in obs.aggregate_spans(tracer.spans)
            ],
        }
    )
    return 0


def _cmd_lint(args: argparse.Namespace, console: Console) -> int:
    from repro.analysis import default_rules, lint_paths, render_json, render_text

    if args.flow or args.write_baseline:
        return _cmd_lint_flow(args, console)
    try:
        rules = default_rules(args.rules)
    except KeyError as exc:
        raise ReproError(str(exc.args[0])) from exc
    try:
        violations = lint_paths(args.paths or None, rules=rules)
    except FileNotFoundError as exc:
        raise ReproError(str(exc)) from exc
    renderer = render_json if args.format == "json" else render_text
    console.out(renderer(violations))
    console.result(
        {"violations": [violation.to_dict() for violation in violations]}
    )
    return 1 if violations else 0


def _cmd_lint_flow(args: argparse.Namespace, console: Console) -> int:
    """``repro-crowd lint --flow``: the interprocedural analyzer."""
    from repro.analysis import render_json
    from repro.analysis.flow import BaselineError, run_flow, write_baseline
    from repro.analysis.reporters import render_flow_text

    baseline = pathlib.Path(args.baseline)
    cache_dir = (
        pathlib.Path(args.cache_dir) if args.cache_dir is not None else None
    )
    try:
        if args.write_baseline:
            report = run_flow(cache_dir=cache_dir)
            found = sorted(report.violations + report.suppressed)
            write_baseline(baseline, found)
            console.note(f"wrote {len(found)} entries to {baseline}")
            console.result({"baseline": str(baseline), "entries": len(found)})
            return 0
        report = run_flow(baseline_path=baseline, cache_dir=cache_dir)
    except (BaselineError, FileNotFoundError) as exc:
        raise ReproError(str(exc)) from exc
    if args.format == "json":
        console.out(
            render_json(
                list(report.violations), suppressed=list(report.suppressed)
            )
        )
    else:
        console.out(render_flow_text(report))
    console.result(
        {
            "violations": [v.to_dict() for v in report.violations],
            "suppressed": len(report.suppressed),
            "modules": report.modules,
            "functions": report.functions,
        }
    )
    return 0 if report.clean else 1


def _cmd_report(args: argparse.Namespace, console: Console) -> int:
    from repro.experiments.markdown_report import build_reproduction_report

    report = build_reproduction_report(
        repetitions=args.repetitions, base_seed=args.seed
    )
    if args.out is not None:
        args.out.write_text(report)
        console.note(f"report written to {args.out}")
    else:
        console.out(report)
    console.result({"out": str(args.out) if args.out is not None else None})
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Truthful mechanisms for mobile crowdsourcing with dynamic "
            "smartphones (ICDCS 2014 reproduction)."
        ),
    )
    common = argparse.ArgumentParser(add_help=False)
    common.add_argument(
        "--quiet",
        action="store_true",
        help="suppress progress/confirmation chatter",
    )
    common.add_argument(
        "--json",
        action="store_true",
        dest="json_output",
        help="emit one JSON document instead of human-readable output",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="run one auction round", parents=[common]
    )
    _add_workload_arguments(simulate)
    _add_mechanism_argument(simulate)
    simulate.add_argument(
        "--save-trace", type=pathlib.Path, default=None,
        help="save the generated scenario to this JSON file",
    )
    simulate.add_argument(
        "--from-trace", type=pathlib.Path, default=None,
        help="replay a scenario from a JSON trace instead of generating",
    )
    simulate.set_defaults(func=_cmd_simulate)

    figures = subparsers.add_parser(
        "figures",
        help="regenerate the paper's evaluation figures",
        parents=[common],
    )
    figures.add_argument(
        "names", nargs="*",
        help=f"figures to run (default: all of {list(list_figures())})",
    )
    figures.add_argument("--repetitions", type=int, default=5)
    figures.add_argument("--seed", type=int, default=2014)
    figures.add_argument(
        "--engine",
        choices=("batch", "streaming"),
        default="batch",
        help="allocation engine for the online mechanism "
        "(bit-identical outcomes; streaming scales to larger sweeps)",
    )
    figures.add_argument(
        "--csv-dir", type=pathlib.Path, default=None,
        help="also write each figure's CSV into this directory",
    )
    figures.add_argument(
        "--checkpoint-dir", type=pathlib.Path, default=None,
        help="checkpoint each sweep point here; a rerun resumes past "
        "completed points",
    )
    figures.add_argument(
        "--retries", type=int, default=0,
        help="retry a failing repetition this many times (default 0)",
    )
    figures.add_argument(
        "--backoff", type=float, default=0.0,
        help="base seconds between retry attempts (default 0)",
    )
    figures.add_argument(
        "--workers", type=int, default=1,
        help="worker processes per sweep point (default 1: serial); "
        "results are identical for any worker count",
    )
    figures.add_argument(
        "--ledger", type=pathlib.Path, default=None,
        help="append a structured run record to this RUNS.jsonl ledger",
    )
    figures.set_defaults(func=_cmd_figures)

    audit = subparsers.add_parser(
        "audit",
        help="truthfulness / IR audit of a mechanism",
        parents=[common],
    )
    _add_workload_arguments(audit)
    _add_mechanism_argument(audit)
    audit.add_argument(
        "--max-phones", type=int, default=15,
        help="audit at most this many phones (default 15)",
    )
    audit.set_defaults(func=_cmd_audit)

    campaign = subparsers.add_parser(
        "campaign", help="run a multi-round campaign", parents=[common]
    )
    _add_workload_arguments(campaign)
    _add_mechanism_argument(campaign)
    campaign.add_argument("--rounds", type=int, default=5)
    campaign.add_argument(
        "--retry-losers", action="store_true",
        help="losers of one round re-enter the next",
    )
    _add_fault_arguments(campaign)
    campaign.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for the rounds (default 1: serial); "
        "requires the default no-retry policy",
    )
    campaign.add_argument(
        "--cities", type=int, default=None, metavar="N",
        help="run the sharded multi-city campaign over N identically "
        "configured cities (city-0..city-(N-1)) through the "
        "shared-memory engine; incompatible with --retry-losers, "
        "--journal-dir, and fault injection",
    )
    campaign.add_argument(
        "--shards", type=int, default=1, metavar="K",
        help="contiguous round-range shards per city (default 1); "
        "implies the sharded engine when K > 1, even single-city",
    )
    campaign.add_argument(
        "--checkpoint-dir", type=pathlib.Path, default=None,
        help="sharded engine only: stream one durable checkpoint record "
        "per round into this directory concurrently with compute; a "
        "rerun resumes mid-shard byte-identically",
    )
    campaign.add_argument(
        "--journal-dir", type=pathlib.Path, default=None,
        help="write a crash-consistent per-round write-ahead journal "
        "under this directory (online-greedy, workers=1 only); inspect "
        "with 'replay' / 'verify-log'",
    )
    campaign.add_argument(
        "--heartbeat", type=pathlib.Path, default=None,
        help="emit periodic live-progress pulses (rounds/s, ETA, fsync "
        "latency, reassignments) to this JSONL file and the console",
    )
    campaign.add_argument(
        "--heartbeat-every", type=int, default=10, metavar="N",
        help="pulse every N completed rounds (default 10; the final "
        "round always pulses)",
    )
    campaign.add_argument(
        "--ledger", type=pathlib.Path, default=None,
        help="append a structured run record to this RUNS.jsonl ledger",
    )
    campaign.set_defaults(func=_cmd_campaign)

    replay = subparsers.add_parser(
        "replay",
        help="re-execute a write-ahead journal and print the outcome",
        parents=[common],
    )
    replay.add_argument(
        "journal", type=pathlib.Path,
        help="journal directory written by a journaled round",
    )
    replay.set_defaults(func=_cmd_replay)

    verify_log = subparsers.add_parser(
        "verify-log",
        help="integrity-check a journal (hash chain, torn tail) without "
        "executing it",
        parents=[common],
    )
    verify_log.add_argument(
        "journal", type=pathlib.Path,
        help="journal directory to verify",
    )
    verify_log.add_argument(
        "--strict", action="store_true",
        help="treat a (recoverable) torn tail as an error (exit 2)",
    )
    verify_log.set_defaults(func=_cmd_verify_log)

    chaos = subparsers.add_parser(
        "chaos",
        help="run one round under injected faults, paired fault-free",
        parents=[common],
    )
    _add_workload_arguments(chaos)
    _add_fault_arguments(chaos)
    chaos.add_argument(
        "--reserve-price", action="store_true",
        help="refuse bids above the task value",
    )
    chaos.add_argument(
        "--payment-rule",
        choices=("paper", "exact"),
        default="paper",
        help="Algorithm 2 or exact critical value",
    )
    chaos.set_defaults(func=_cmd_chaos)

    example = subparsers.add_parser(
        "example",
        help="walk through the paper's worked example",
        parents=[common],
    )
    example.set_defaults(func=_cmd_example)

    trace = subparsers.add_parser(
        "trace",
        help="run an instrumented scenario suite; export JSONL + snapshot",
        parents=[common],
    )
    trace.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("trace.jsonl"),
        help="JSONL trace output path (default trace.jsonl)",
    )
    trace.add_argument(
        "--snapshot-dir", type=pathlib.Path, default=pathlib.Path("."),
        help="directory for the BENCH_<label>.json perf snapshot",
    )
    trace.add_argument(
        "--label", default="trace",
        help="snapshot label (default 'trace')",
    )
    trace.add_argument(
        "--max-spans", type=int, default=60,
        help="truncate the printed span tree after this many spans",
    )
    trace.add_argument("--seed", type=int, default=0, help="sweep seed")
    trace.add_argument(
        "--repetitions", type=int, default=2,
        help="repetitions per sweep point in the demo sweep (default 2)",
    )
    trace.add_argument(
        "--top", type=int, default=0, metavar="N",
        help="also print the top-N phases by self time (hotspots)",
    )
    trace.add_argument(
        "--ledger", type=pathlib.Path, default=None,
        help="append a structured run record to this RUNS.jsonl ledger",
    )
    trace.set_defaults(func=_cmd_trace)

    trends = subparsers.add_parser(
        "trends",
        help="render the bench-trend dashboard with drift detection",
        parents=[common],
    )
    trends.add_argument(
        "--bench-dir", type=pathlib.Path, default=pathlib.Path("."),
        help="directory holding the BENCH_*.json series (default .)",
    )
    trends.add_argument(
        "--ledger", type=pathlib.Path, default=None,
        help="also chart per-command wall times from this RUNS.jsonl",
    )
    trends.add_argument(
        "--threshold", type=float, default=0.05,
        help="relative per-step slope that flags drift (default 0.05)",
    )
    trends.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the markdown dashboard here instead of stdout",
    )
    trends.add_argument(
        "--fail-on-drift", action="store_true",
        help="exit 1 when any series is flagged as drifting",
    )
    trends.set_defaults(func=_cmd_trends)

    profile = subparsers.add_parser(
        "profile",
        help="cProfile one mechanism run with the span report",
        parents=[common],
    )
    _add_workload_arguments(profile)
    _add_mechanism_argument(profile)
    profile.add_argument(
        "--repeat", type=int, default=3,
        help="number of profiled runs (default 3)",
    )
    profile.add_argument(
        "--top", type=int, default=15,
        help="profile rows to print (default 15)",
    )
    profile.set_defaults(func=_cmd_profile)

    lint = subparsers.add_parser(
        "lint",
        help="run the repo-specific AST invariant linter",
        parents=[common],
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src tests benchmarks)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable; default: all rules)",
    )
    lint.add_argument(
        "--flow",
        action="store_true",
        help=(
            "run the interprocedural concurrency/determinism analysis "
            "(REP010-REP015) over src instead of the single-file rules"
        ),
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        default="lint-flow-baseline.json",
        help=(
            "baseline suppression file for --flow "
            "(default lint-flow-baseline.json; a missing file is empty)"
        ),
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current --flow findings to the baseline file and exit",
    )
    lint.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-hash cache for --flow module summaries",
    )
    lint.set_defaults(func=_cmd_lint)

    report = subparsers.add_parser(
        "report",
        help="generate the full Markdown reproduction report",
        parents=[common],
    )
    report.add_argument("--repetitions", type=int, default=5)
    report.add_argument("--seed", type=int, default=2014)
    report.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the report to this file (default: stdout)",
    )
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    console = Console(
        quiet=getattr(args, "quiet", False),
        json_mode=getattr(args, "json_output", False),
    )
    try:
        code = args.func(args, console)
    except ReproError as exc:
        console.error(f"error: {exc}")
        return 2
    console.finish()
    return code


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
