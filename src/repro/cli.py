"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``simulate``
    Run one auction round with chosen workload parameters and mechanism;
    print the paper's metrics and a settlement summary.  Scenarios can
    be saved to / replayed from JSON traces.
``figures``
    Regenerate the paper's evaluation figures (Figs. 6-11) as tables and
    ASCII charts, optionally exporting CSV.
``audit``
    Run the truthfulness / individual-rationality audit against a
    mechanism.
``campaign``
    Run a multi-round campaign (round-by-round operation, Section
    III-B) with optional loser re-entry and fault injection.
``chaos``
    Run one round under injected faults (dropouts, delivery failures,
    bid delays/losses) paired against the fault-free run of the same
    bids; print the reliability report.
``example``
    Walk through the paper's Fig. 4 / Fig. 5 worked example.
``lint``
    Run the repo-specific AST invariant linter
    (:mod:`repro.analysis`) over source trees.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional, Sequence

import numpy as np

from repro.auction.multi_round import RETRY_LOSERS, RETRY_NONE, run_campaign
from repro.errors import ReproError
from repro.experiments import (
    figure_spec,
    list_figures,
    render_sweep_csv,
    render_sweep_table,
    run_sweep,
)
from repro.experiments.figures import FIGURE_METRIC
from repro.experiments.report import render_sweep_chart
from repro.mechanisms import available_mechanisms, create_mechanism
from repro.metrics import audit_individual_rationality, audit_truthfulness
from repro.simulation import (
    SimulationEngine,
    WorkloadConfig,
    load_scenario,
    save_scenario,
)
from repro.utils.tables import format_table


def _add_workload_arguments(parser: argparse.ArgumentParser) -> None:
    defaults = WorkloadConfig.paper_default()
    parser.add_argument(
        "--slots", type=int, default=defaults.num_slots,
        help=f"slots per round m (default {defaults.num_slots})",
    )
    parser.add_argument(
        "--phone-rate", type=float, default=defaults.phone_rate,
        help=f"smartphone arrival rate λ (default {defaults.phone_rate})",
    )
    parser.add_argument(
        "--task-rate", type=float, default=defaults.task_rate,
        help=f"task arrival rate λ_t (default {defaults.task_rate})",
    )
    parser.add_argument(
        "--mean-cost", type=float, default=defaults.mean_cost,
        help=f"average real cost c̄ (default {defaults.mean_cost})",
    )
    parser.add_argument(
        "--active-length", type=int, default=defaults.mean_active_length,
        help="mean active-time length "
        f"(default {defaults.mean_active_length})",
    )
    parser.add_argument(
        "--task-value", type=float, default=defaults.task_value,
        help=f"task value ν (default {defaults.task_value})",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")


def _workload_from_args(args: argparse.Namespace) -> WorkloadConfig:
    return WorkloadConfig(
        num_slots=args.slots,
        phone_rate=args.phone_rate,
        task_rate=args.task_rate,
        mean_cost=args.mean_cost,
        mean_active_length=args.active_length,
        task_value=args.task_value,
    )


def _add_mechanism_argument(
    parser: argparse.ArgumentParser, default: str = "online-greedy"
) -> None:
    parser.add_argument(
        "--mechanism",
        default=default,
        choices=sorted(available_mechanisms()),
        help=f"mechanism to run (default {default})",
    )
    parser.add_argument(
        "--reserve-price",
        action="store_true",
        help="online-greedy only: refuse bids above the task value",
    )
    parser.add_argument(
        "--payment-rule",
        choices=("paper", "exact"),
        default="paper",
        help="online-greedy only: Algorithm 2 or exact critical value",
    )
    parser.add_argument(
        "--price",
        type=float,
        default=None,
        help="fixed-price only: the posted price",
    )


def _add_fault_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dropout-prob", type=float, default=0.0,
        help="probability a phone departs early without notice",
    )
    parser.add_argument(
        "--failure-prob", type=float, default=0.0,
        help="probability a winner fails to deliver its task",
    )
    parser.add_argument(
        "--bid-delay-prob", type=float, default=0.0,
        help="probability a bid reaches the platform late",
    )
    parser.add_argument(
        "--bid-loss-prob", type=float, default=0.0,
        help="probability a bid never reaches the platform",
    )
    parser.add_argument(
        "--fault-seed", type=int, default=None,
        help="seed of the fault draw (default: the workload seed)",
    )
    parser.add_argument(
        "--max-reassign", type=int, default=3,
        help="recovery attempts per failed task (default 3)",
    )


def _fault_config_from_args(args: argparse.Namespace):
    from repro.faults import FaultConfig

    return FaultConfig(
        dropout_prob=args.dropout_prob,
        task_failure_prob=args.failure_prob,
        bid_delay_prob=args.bid_delay_prob,
        bid_loss_prob=args.bid_loss_prob,
        max_reassignments=args.max_reassign,
    )


def _mechanism_from_args(args: argparse.Namespace):
    kwargs = {}
    if args.mechanism == "online-greedy":
        kwargs = {
            "reserve_price": args.reserve_price,
            "payment_rule": args.payment_rule,
        }
    elif args.mechanism == "fixed-price":
        if args.price is None:
            raise ReproError("--price is required for fixed-price")
        kwargs = {"price": args.price}
    return create_mechanism(args.mechanism, **kwargs)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------
def _cmd_simulate(args: argparse.Namespace) -> int:
    if args.from_trace:
        scenario = load_scenario(args.from_trace)
        print(f"loaded scenario from {args.from_trace}")
    else:
        scenario = _workload_from_args(args).generate(seed=args.seed)
    if args.save_trace:
        save_scenario(scenario, args.save_trace)
        print(f"scenario saved to {args.save_trace}")

    mechanism = _mechanism_from_args(args)
    result = SimulationEngine().run(mechanism, scenario)
    print(
        f"\n{scenario.num_phones} phones, {scenario.num_tasks} tasks, "
        f"{scenario.num_slots} slots; mechanism: {mechanism.name}\n"
    )
    ratio = result.overpayment_ratio
    print(
        format_table(
            ["metric", "value"],
            [
                ["social welfare ω (Def. 3)", result.true_welfare],
                ["claimed welfare", result.claimed_welfare],
                ["total payment", result.total_payment],
                [
                    "overpayment ratio σ (Def. 11)",
                    ratio if ratio is not None else "n/a",
                ],
                ["tasks served", result.tasks_served],
                ["service rate", result.service_rate],
            ],
            title="Round metrics",
        )
    )
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    names = args.names or list(list_figures())
    unknown = [n for n in names if n not in list_figures()]
    if unknown:
        raise ReproError(
            f"unknown figure(s) {unknown}; available: {list(list_figures())}"
        )
    checkpoint = None
    if args.checkpoint_dir is not None:
        from repro.experiments import CheckpointStore

        checkpoint = CheckpointStore(args.checkpoint_dir)
    cache = {}
    for name in names:
        spec = figure_spec(
            name, repetitions=args.repetitions, base_seed=args.seed
        )
        key = (spec.param, spec.values)
        if key not in cache:
            cache[key] = run_sweep(
                spec,
                checkpoint=checkpoint,
                retries=args.retries,
                backoff=args.backoff,
            )
        result = cache[key]
        metric = FIGURE_METRIC[name]
        print()
        print(render_sweep_table(result, metric, title=spec.title))
        print()
        print(render_sweep_chart(result, metric))
        if args.csv_dir:
            out = pathlib.Path(args.csv_dir)
            out.mkdir(parents=True, exist_ok=True)
            (out / f"{name}.csv").write_text(
                render_sweep_csv(result, metric)
            )
            print(f"(csv written to {out / (name + '.csv')})")
    return 0


def _cmd_audit(args: argparse.Namespace) -> int:
    scenario = _workload_from_args(args).generate(seed=args.seed)
    mechanism = _mechanism_from_args(args)
    rng = np.random.default_rng(args.seed)
    report = audit_truthfulness(
        mechanism, scenario, rng, max_phones=args.max_phones
    )
    ir = audit_individual_rationality(mechanism, scenario)
    print(
        f"\nmechanism: {mechanism.name}  "
        f"({scenario.num_phones} phones, {scenario.num_tasks} tasks)\n"
    )
    print(
        format_table(
            ["check", "result"],
            [
                ["deviations tested", report.deviations_tested],
                ["profitable deviations", len(report.violations)],
                ["IR violations", len(ir)],
                ["truthfulness audit", "PASS" if report.passed else "FAIL"],
                ["individual rationality", "PASS" if not ir else "FAIL"],
            ],
            title="Audit",
        )
    )
    for violation in report.violations[:10]:
        print(
            f"  phone {violation.phone_id} gains {violation.gain:.3f} "
            f"via {violation.strategy}: {violation.deviant_bid}"
        )
    return 0 if report.passed and not ir else 1


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults import run_with_faults

    scenario = _workload_from_args(args).generate(seed=args.seed)
    config = _fault_config_from_args(args)
    run = run_with_faults(
        scenario,
        config,
        seed=args.fault_seed if args.fault_seed is not None else args.seed,
        reserve_price=args.reserve_price,
        payment_rule=args.payment_rule,
        paired=True,
    )
    report, reliability = run.report, run.reliability
    print(
        f"\n{scenario.num_phones} phones, {scenario.num_tasks} tasks, "
        f"{scenario.num_slots} slots; faults: dropout={config.dropout_prob} "
        f"failure={config.task_failure_prob} "
        f"delay={config.bid_delay_prob} loss={config.bid_loss_prob}\n"
    )
    print(
        format_table(
            ["fault", "count"],
            [
                ["bids lost in transit", len(report.lost_bids)],
                ["bids delayed", len(report.delayed_bids)],
                ["phones dropped out", len(report.dropped)],
                ["deliveries failed", len(report.failed_deliverers)],
                ["payments withheld", len(report.withheld)],
                ["tasks recovered", len(report.recovered_tasks)],
                ["tasks abandoned", len(report.abandoned_tasks)],
            ],
            title="Injected faults & recovery",
        )
    )
    print()
    print(
        format_table(
            ["metric", "value"],
            [
                ["tasks delivered", reliability.tasks_delivered],
                ["completion rate", reliability.completion_rate],
                ["recovered fraction", reliability.recovered_fraction],
                ["welfare (faulty)", reliability.welfare_faulty],
                ["welfare (fault-free)", reliability.welfare_fault_free],
                ["welfare degradation", reliability.welfare_degradation],
            ],
            title="Reliability vs. paired fault-free run",
        )
    )
    print("\nrecovered outcome passed all fault-aware invariant checks")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    mechanism = _mechanism_from_args(args)
    fault_config = None
    if (
        args.dropout_prob or args.failure_prob
        or args.bid_delay_prob or args.bid_loss_prob
    ):
        fault_config = _fault_config_from_args(args)
    result = run_campaign(
        mechanism,
        _workload_from_args(args),
        num_rounds=args.rounds,
        seed=args.seed,
        retry_policy=RETRY_LOSERS if args.retry_losers else RETRY_NONE,
        fault_config=fault_config,
        fault_seed=args.fault_seed,
    )
    print(
        f"\ncampaign: {result.num_rounds} rounds, mechanism "
        f"{mechanism.name}, retry="
        f"{'losers' if args.retry_losers else 'none'}\n"
    )
    rows = [
        [
            index + 1,
            r.true_welfare,
            r.total_payment,
            r.overpayment_ratio if r.overpayment_ratio is not None else "n/a",
            r.tasks_served,
        ]
        for index, r in enumerate(result.rounds)
    ]
    print(
        format_table(
            ["round", "welfare", "payment", "σ", "tasks served"],
            rows,
            title="Per-round results",
        )
    )
    print()
    print(f"total welfare:    {result.total_welfare:.1f}")
    print(f"total payment:    {result.total_payment:.1f}")
    print(f"welfare/round:    {result.welfare_per_round}")
    print(f"returning phones: {result.returning_phones}")
    if fault_config is not None:
        print(f"phones dropped:   {result.dropped_phones}")
        print(f"failed deliveries:{result.delivery_failures}")
        print(f"tasks recovered:  {result.recovered_tasks}")
    return 0


def _cmd_example(args: argparse.Namespace) -> int:
    from repro.mechanisms import OnlineGreedyMechanism
    from repro.mechanisms.baselines import SecondPriceSlotMechanism
    from repro.simulation.paper_example import (
        paper_example_bids,
        paper_example_profiles,
        paper_example_schedule,
    )

    schedule = paper_example_schedule()
    bids = paper_example_bids()
    outcome = OnlineGreedyMechanism().run(bids, schedule)
    print(
        format_table(
            ["phone", "window", "cost"],
            [
                [p.phone_id, f"[{p.arrival}, {p.departure}]", p.cost]
                for p in paper_example_profiles()
            ],
            title="Fig. 4: the 7 smartphones",
        )
    )
    print()
    print(
        format_table(
            ["slot", "winner", "payment"],
            [
                [
                    schedule.task(task_id).slot,
                    phone_id,
                    outcome.payment(phone_id),
                ]
                for task_id, phone_id in sorted(outcome.allocation.items())
            ],
            title="Online allocation + Algorithm-2 payments",
        )
    )
    second_price = SecondPriceSlotMechanism()
    truthful = second_price.run(bids, schedule)
    deviated = second_price.run(
        [b.with_window(4, 5) if b.phone_id == 1 else b for b in bids],
        schedule,
    )
    print(
        f"\nFig. 5: under second-price, phone 1 is paid "
        f"{truthful.payment(1):g} truthfully and "
        f"{deviated.payment(1):g} after delaying its arrival — a gain "
        f"of {deviated.payment(1) - truthful.payment(1):g}."
    )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import default_rules, lint_paths, render_json, render_text

    try:
        rules = default_rules(args.rules)
    except KeyError as exc:
        raise ReproError(str(exc.args[0])) from exc
    try:
        violations = lint_paths(args.paths or None, rules=rules)
    except FileNotFoundError as exc:
        raise ReproError(str(exc)) from exc
    renderer = render_json if args.format == "json" else render_text
    print(renderer(violations))
    return 1 if violations else 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.experiments.markdown_report import build_reproduction_report

    report = build_reproduction_report(
        repetitions=args.repetitions, base_seed=args.seed
    )
    if args.out is not None:
        args.out.write_text(report)
        print(f"report written to {args.out}")
    else:
        print(report)
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Truthful mechanisms for mobile crowdsourcing with dynamic "
            "smartphones (ICDCS 2014 reproduction)."
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser(
        "simulate", help="run one auction round"
    )
    _add_workload_arguments(simulate)
    _add_mechanism_argument(simulate)
    simulate.add_argument(
        "--save-trace", type=pathlib.Path, default=None,
        help="save the generated scenario to this JSON file",
    )
    simulate.add_argument(
        "--from-trace", type=pathlib.Path, default=None,
        help="replay a scenario from a JSON trace instead of generating",
    )
    simulate.set_defaults(func=_cmd_simulate)

    figures = subparsers.add_parser(
        "figures", help="regenerate the paper's evaluation figures"
    )
    figures.add_argument(
        "names", nargs="*",
        help=f"figures to run (default: all of {list(list_figures())})",
    )
    figures.add_argument("--repetitions", type=int, default=5)
    figures.add_argument("--seed", type=int, default=2014)
    figures.add_argument(
        "--csv-dir", type=pathlib.Path, default=None,
        help="also write each figure's CSV into this directory",
    )
    figures.add_argument(
        "--checkpoint-dir", type=pathlib.Path, default=None,
        help="checkpoint each sweep point here; a rerun resumes past "
        "completed points",
    )
    figures.add_argument(
        "--retries", type=int, default=0,
        help="retry a failing repetition this many times (default 0)",
    )
    figures.add_argument(
        "--backoff", type=float, default=0.0,
        help="base seconds between retry attempts (default 0)",
    )
    figures.set_defaults(func=_cmd_figures)

    audit = subparsers.add_parser(
        "audit", help="truthfulness / IR audit of a mechanism"
    )
    _add_workload_arguments(audit)
    _add_mechanism_argument(audit)
    audit.add_argument(
        "--max-phones", type=int, default=15,
        help="audit at most this many phones (default 15)",
    )
    audit.set_defaults(func=_cmd_audit)

    campaign = subparsers.add_parser(
        "campaign", help="run a multi-round campaign"
    )
    _add_workload_arguments(campaign)
    _add_mechanism_argument(campaign)
    campaign.add_argument("--rounds", type=int, default=5)
    campaign.add_argument(
        "--retry-losers", action="store_true",
        help="losers of one round re-enter the next",
    )
    _add_fault_arguments(campaign)
    campaign.set_defaults(func=_cmd_campaign)

    chaos = subparsers.add_parser(
        "chaos",
        help="run one round under injected faults, paired fault-free",
    )
    _add_workload_arguments(chaos)
    _add_fault_arguments(chaos)
    chaos.add_argument(
        "--reserve-price", action="store_true",
        help="refuse bids above the task value",
    )
    chaos.add_argument(
        "--payment-rule",
        choices=("paper", "exact"),
        default="paper",
        help="Algorithm 2 or exact critical value",
    )
    chaos.set_defaults(func=_cmd_chaos)

    example = subparsers.add_parser(
        "example", help="walk through the paper's worked example"
    )
    example.set_defaults(func=_cmd_example)

    lint = subparsers.add_parser(
        "lint",
        help="run the repo-specific AST invariant linter",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: src tests benchmarks)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        help="run only this rule (repeatable; default: all rules)",
    )
    lint.set_defaults(func=_cmd_lint)

    report = subparsers.add_parser(
        "report",
        help="generate the full Markdown reproduction report",
    )
    report.add_argument("--repetitions", type=int, default=5)
    report.add_argument("--seed", type=int, default=2014)
    report.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the report to this file (default: stdout)",
    )
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    try:
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
