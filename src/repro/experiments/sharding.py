"""Sharded multi-city campaigns with shared-memory fan-out.

The repetition-level pool (:mod:`repro.experiments.parallel`, PR 4) and the
round-level campaign pool (:func:`repro.auction.multi_round.run_campaign`)
both pickle a full workload draw — or regenerate it — once per task.  At
city scale that is the bottleneck: generating and pickling a 2·10⁴-phone
round costs an order of magnitude more than running the streaming
mechanism over it.  This module fans campaigns out at *shard*
granularity instead:

* A campaign is a list of :class:`CityConfig` entries.  Each city's rounds
  are split into ``shards_per_city`` contiguous round ranges (single-city
  campaigns fall back to pure round-range sharding), producing one
  :class:`ShardPlan` per range.
* The parent vector-generates every round of a shard
  (``WorkloadConfig.generate_columns``), packs the columns into **one**
  ``multiprocessing.shared_memory`` segment per shard
  (:mod:`repro.model.columnar`), and submits the segment *name* plus a
  small picklable :class:`ShardTask` to a persistent process pool — no bid
  list ever crosses a pickle boundary on the way in.
* Workers attach by name, rebuild each round zero-copy through the
  codec's trusted fast path, run the mechanism, and stream one durable
  checkpoint record per round from a background writer thread
  (:class:`ShardCheckpointWriter`) concurrently with compute — so a
  killed 10⁴-round campaign resumes mid-shard.
* Workers return each round as its own pickle blob.  The parent decodes
  every round from its own blob — whether it was computed in-process
  (``workers=1``), crossed the pool pipe, or was loaded from a shard
  checkpoint — so the assembled result's pickle bytes are identical
  across worker counts, shard submission orders, and resume points (the
  determinism contract ``check_parallel_determinism`` enforces).

Determinism
-----------
City ``i`` named ``name`` draws its seed as
``RngStreams(seed).child(i, name=f"city:{name}")`` (or uses an explicit
``CityConfig.seed``), and round ``k`` of a city uses
``RngStreams(city_seed).child(k)`` — the exact derivation of the serial
campaign loop.  A city's :class:`~repro.auction.multi_round.CampaignResult`
therefore matches ``run_campaign(mechanism, workload, num_rounds,
seed=city_seed)`` round for round, and shard boundaries are invisible in
the output.
"""

from __future__ import annotations

import base64
import dataclasses
import json
import os
import pathlib
import pickle
import queue
import re
import secrets
import threading
from concurrent.futures import ProcessPoolExecutor
from multiprocessing import shared_memory
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs
from repro.auction.multi_round import CampaignResult, aggregate_rounds
from repro.durability.journal import FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_OFF
from repro.errors import CheckpointError, ShardingError
from repro.experiments.checkpoint import canonical_json, checksum_text
from repro.experiments.config import MechanismSpec
from repro.model.columnar import (
    RoundColumns,
    pack_rounds_into,
    packed_size,
    unpack_rounds,
)
from repro.obs.clock import perf_seconds
from repro.obs.live import (
    Heartbeat,
    HeartbeatConfig,
    append_worker_beat,
    merge_heartbeats,
)
from repro.simulation.costs import UniformCosts
from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.scenario import Scenario
from repro.simulation.workload import WorkloadConfig
from repro.utils.rng import RngStreams
from repro.utils.validation import check_positive, check_type

#: Schema tag on every shard checkpoint record.
SHARD_CHECKPOINT_SCHEMA = "repro-shard-checkpoint/1"

_FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_OFF)
_CITY_NAME = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

#: How many checkpoint records may accumulate between fsyncs under the
#: ``batch`` policy (mirrors the journal's batching discipline).
CHECKPOINT_FSYNC_BATCH = 8


# ----------------------------------------------------------------------
# Campaign description
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class CityConfig:
    """One city (region) of a sharded campaign.

    Attributes
    ----------
    name:
        Stable identifier (used in checkpoint filenames and reports).
    workload:
        The city's per-round workload draw.
    num_rounds:
        Rounds this city runs.
    seed:
        Explicit campaign seed for the city; when ``None`` the runner
        derives one from the campaign seed and the city's position/name.
    """

    name: str
    workload: WorkloadConfig
    num_rounds: int
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        check_type("name", self.name, str)
        if not _CITY_NAME.match(self.name):
            raise ShardingError(
                f"city name {self.name!r} must match "
                f"{_CITY_NAME.pattern} (it names checkpoint files)"
            )
        check_type("num_rounds", self.num_rounds, int)
        check_positive("num_rounds", self.num_rounds)


@dataclasses.dataclass(frozen=True)
class ShardPlan:
    """One planned shard: a contiguous round range of one city."""

    shard_id: int
    city_index: int
    city_name: str
    city_seed: int
    round_start: int
    round_stop: int  # exclusive

    @property
    def round_indices(self) -> Tuple[int, ...]:
        """The round indices this shard computes."""
        return tuple(range(self.round_start, self.round_stop))


@dataclasses.dataclass(frozen=True)
class ShardTask:
    """What crosses the pool boundary for one shard (small, picklable).

    The round payload stays in the named shared-memory segment; only the
    segment *name* and the codec header travel by pickle (the REP010
    worker-pickle-safety discipline — never ship a live handle).
    """

    shard_id: int
    city_name: str
    segment: str
    header: Dict[str, Any]
    round_indices: Tuple[int, ...]
    round_seeds: Tuple[int, ...]
    metadata_base: Tuple[Tuple[str, Any], ...]
    mechanism: MechanismSpec
    skip_rounds: Tuple[int, ...] = ()
    checkpoint_path: Optional[str] = None
    fsync: str = FSYNC_BATCH
    heartbeat_path: Optional[str] = None


@dataclasses.dataclass(frozen=True)
class ShardOutcome:
    """One shard's computed rounds, as returned by a worker.

    ``rounds`` holds ``(round_index, pickled SimulationResult)`` pairs —
    blobs, not objects, so the parent rebuilds every round from its own
    pickle stream regardless of which execution path produced it (see
    the module docstring's determinism note).
    """

    shard_id: int
    rounds: Tuple[Tuple[int, bytes], ...]
    elapsed_seconds: float
    worker_pid: int
    checkpointed: int


@dataclasses.dataclass(frozen=True)
class ShardedCampaignResult:
    """Deterministic outcome of a sharded campaign.

    Holds only outcome data (per-city campaign results and their sums);
    operational facts — shard timings, resume counts, segment sizes —
    are emitted on ``campaign.shard.*`` telemetry instead, so the
    result's pickle bytes never depend on how the campaign was executed.
    """

    cities: Tuple[Tuple[str, CampaignResult], ...]
    total_welfare: float
    total_payment: float

    @property
    def num_rounds(self) -> int:
        """Total rounds across all cities."""
        return sum(result.num_rounds for _, result in self.cities)

    def city(self, name: str) -> CampaignResult:
        """The campaign result of one city."""
        for city_name, result in self.cities:
            if city_name == name:
                return result
        raise ShardingError(f"unknown city {name!r}")


# ----------------------------------------------------------------------
# Planning
# ----------------------------------------------------------------------
def plan_shards(
    cities: Sequence[CityConfig],
    shards_per_city: int = 1,
    seed: int = 0,
) -> List[ShardPlan]:
    """Partition a campaign into shards (city × contiguous round range).

    Rounds are split as evenly as possible; the first
    ``num_rounds % shards`` ranges hold one extra round.  A city never
    gets more shards than rounds.  Shard ids number the plan in (city,
    round range) order and are stable across worker counts and
    submission orders.
    """
    check_type("shards_per_city", shards_per_city, int)
    check_positive("shards_per_city", shards_per_city)
    if not cities:
        raise ShardingError("cities must not be empty")
    names = [city.name for city in cities]
    if len(set(names)) != len(names):
        raise ShardingError(f"duplicate city names in campaign: {names}")
    campaign_streams = RngStreams(seed)
    plans: List[ShardPlan] = []
    for city_index, city in enumerate(cities):
        city_seed = (
            city.seed
            if city.seed is not None
            else campaign_streams.child(
                city_index, name=f"city:{city.name}"
            ).seed
        )
        shards = min(shards_per_city, city.num_rounds)
        base, extra = divmod(city.num_rounds, shards)
        start = 0
        for shard_index in range(shards):
            size = base + (1 if shard_index < extra else 0)
            plans.append(
                ShardPlan(
                    shard_id=len(plans),
                    city_index=city_index,
                    city_name=city.name,
                    city_seed=city_seed,
                    round_start=start,
                    round_stop=start + size,
                )
            )
            start += size
    return plans


# ----------------------------------------------------------------------
# Shared-memory segments
# ----------------------------------------------------------------------
def _create_segment(nbytes: int) -> shared_memory.SharedMemory:
    """Create an anonymous-named segment for one shard's rounds."""
    name = f"repro-shard-{os.getpid()}-{secrets.token_hex(6)}"
    return shared_memory.SharedMemory(
        name=name, create=True, size=max(1, nbytes)
    )


def _attach_segment(name: str) -> shared_memory.SharedMemory:
    """Attach to a shard segment by name (read-side, no ownership).

    On Python < 3.13 every attachment re-registers the name with the
    ``resource_tracker``; that is harmless here because the tracker keys
    by name (registration is idempotent) and pool workers are forked
    from the creating parent, so they share its tracker.  Ownership
    stays with the parent: its ``unlink`` in the runner's ``finally`` is
    the single unregistration, leaving the tracker cache empty — no
    "leaked shared_memory objects" warning at shutdown, which the
    lifecycle tests assert on a subprocess's stderr.
    """
    return shared_memory.SharedMemory(name=name)


def _release_segment(
    segment: shared_memory.SharedMemory, unlink: bool
) -> None:
    """Close (and optionally unlink) a segment, tolerating double frees."""
    try:
        segment.close()
    except (BufferError, OSError):  # pragma: no cover - defensive
        pass
    if unlink:
        try:
            segment.unlink()
        except FileNotFoundError:
            pass


# ----------------------------------------------------------------------
# Checkpoint streaming
# ----------------------------------------------------------------------
class ShardCheckpointWriter:
    """Append per-round checkpoint records concurrently with compute.

    The shard worker enqueues ``(round_index, blob)`` pairs; a background
    thread encodes each as one checksummed JSONL record and appends it,
    fsyncing per the journal's policies (``always`` / ``batch`` /
    ``off``).  :meth:`close` drains the queue, fsyncs the tail, and
    re-raises any error the writer thread hit — so a failed append (or an
    injected crash) surfaces on the shard, not silently.
    """

    _SENTINEL = object()

    def __init__(
        self,
        path: "os.PathLike[str]",
        fsync: str = FSYNC_BATCH,
        batch_size: int = CHECKPOINT_FSYNC_BATCH,
        crash_hook: Optional[Callable[[int], None]] = None,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise ShardingError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{_FSYNC_POLICIES}"
            )
        self._path = pathlib.Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._fsync = fsync
        self._batch_size = max(1, batch_size)
        self._crash_hook = crash_hook
        self._queue: "queue.Queue[Any]" = queue.Queue()
        self._error: Optional[BaseException] = None
        self._appended = 0
        self._handle = open(self._path, "ab")
        self._thread = threading.Thread(
            target=self._run, name="shard-checkpoint", daemon=True
        )
        self._thread.start()

    @property
    def appended(self) -> int:
        """Records durably appended so far (writer-thread progress)."""
        return self._appended

    def append(self, round_index: int, blob: bytes) -> None:
        """Enqueue one round's result for durable append."""
        if self._error is not None:
            self._raise_pending()
        self._queue.put((round_index, blob))

    def close(self) -> None:
        """Drain, fsync the tail, join the thread; re-raise its error."""
        self._queue.put(self._SENTINEL)
        self._thread.join()
        self._handle.close()
        if self._error is not None:
            self._raise_pending()

    def abort(self) -> None:
        """Best-effort shutdown that never raises (error paths)."""
        self._queue.put(self._SENTINEL)
        self._thread.join()
        try:
            self._handle.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def _raise_pending(self) -> None:
        error = self._error
        assert error is not None
        raise error

    def _run(self) -> None:
        pending_fsync = 0
        while True:
            item = self._queue.get()
            if item is self._SENTINEL:
                break
            if self._error is not None:
                continue  # drain without writing after a failure
            round_index, blob = item
            try:
                line = encode_checkpoint_record(round_index, blob)
                self._handle.write(line)
                self._handle.flush()
                self._appended += 1
                pending_fsync += 1
                if self._crash_hook is not None:
                    self._crash_hook(self._appended)
                if self._fsync == FSYNC_ALWAYS or (
                    self._fsync == FSYNC_BATCH
                    and pending_fsync >= self._batch_size
                ):
                    start = perf_seconds()
                    os.fsync(self._handle.fileno())
                    obs.observe(
                        "campaign.shard.fsync.seconds",
                        perf_seconds() - start,
                    )
                    pending_fsync = 0
            except BaseException as exc:  # noqa: BLE001 - ferried to caller
                self._error = exc
        if self._error is None and self._fsync != FSYNC_OFF:
            try:
                self._handle.flush()
                if pending_fsync:
                    os.fsync(self._handle.fileno())
            except OSError as exc:  # pragma: no cover - device failure
                self._error = exc


def encode_checkpoint_record(round_index: int, blob: bytes) -> bytes:
    """One shard checkpoint record as a checksummed JSONL line.

    The checksum covers the canonical JSON of the record body (the
    sweep-checkpoint convention from
    :mod:`repro.experiments.checkpoint`), so torn or corrupted lines are
    detected on load and treated as end-of-log.
    """
    body = {
        "schema": SHARD_CHECKPOINT_SCHEMA,
        "round": round_index,
        "payload": base64.b64encode(blob).decode("ascii"),
    }
    record = dict(body)
    record["checksum"] = checksum_text(canonical_json(body))
    return (canonical_json(record) + "\n").encode("utf-8")


def load_shard_checkpoint(
    path: "os.PathLike[str]",
) -> Dict[int, bytes]:
    """Load the valid prefix of a shard checkpoint; truncate the rest.

    Returns ``round_index -> pickled SimulationResult`` for every intact
    record.  The first unparseable or checksum-failing line (a torn tail
    from a crash mid-append) ends the valid prefix; the file is truncated
    back to it so resumed appends continue a clean log.  A later record
    for an already-seen round wins (duplicate appends from a crash
    between write and fsync are harmless).
    """
    target = pathlib.Path(path)
    try:
        raw = target.read_bytes()
    except FileNotFoundError:
        return {}
    records: Dict[int, bytes] = {}
    valid_bytes = 0
    torn = False
    for line in raw.split(b"\n"):
        if not line.strip():
            valid_bytes += len(line) + 1
            continue
        blob = _decode_checkpoint_line(line)
        if blob is None:
            torn = True
            break
        records[blob[0]] = blob[1]
        valid_bytes += len(line) + 1
    if torn:
        with open(target, "r+b") as handle:
            handle.truncate(min(valid_bytes, len(raw)))
        obs.counter("campaign.shard.checkpoint.torn")
    return records


def _decode_checkpoint_line(
    line: bytes,
) -> Optional[Tuple[int, bytes]]:
    """Decode one checkpoint line; ``None`` if torn/corrupt/foreign."""
    try:
        record = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    if (
        not isinstance(record, dict)
        or record.get("schema") != SHARD_CHECKPOINT_SCHEMA
    ):
        return None
    checksum = record.pop("checksum", None)
    if checksum != checksum_text(canonical_json(record)):
        return None
    try:
        return int(record["round"]), base64.b64decode(
            record["payload"], validate=True
        )
    except (KeyError, TypeError, ValueError):
        return None


def shard_checkpoint_path(
    checkpoint_dir: "os.PathLike[str]", plan: ShardPlan
) -> pathlib.Path:
    """Where one shard streams its checkpoint records.

    Keyed by city and round range — the partition — so a resumed
    campaign with the same plan finds its shards, and a repartitioned
    campaign starts fresh rather than mixing logs.
    """
    return pathlib.Path(checkpoint_dir) / (
        f"{plan.city_name}-rounds-{plan.round_start:05d}-"
        f"{plan.round_stop:05d}.ckpt.jsonl"
    )


# ----------------------------------------------------------------------
# Shard execution (process-pool entry point)
# ----------------------------------------------------------------------
def _run_shard(
    task: ShardTask,
    crash_hook: Optional[Callable[[int], None]] = None,
) -> ShardOutcome:
    """Execute one shard: attach, decode, run, stream checkpoints.

    Decoded column views alias the shared segment, so every view dies
    before the segment is closed (the ``BufferError`` contract of
    :func:`repro.model.columnar.unpack_rounds`).
    """
    start = perf_seconds()
    segment = _attach_segment(task.segment)
    writer: Optional[ShardCheckpointWriter] = None
    try:
        rounds = unpack_rounds(segment.buf, task.header)
        mechanism = task.mechanism.build()
        if task.checkpoint_path is not None:
            writer = ShardCheckpointWriter(
                task.checkpoint_path,
                fsync=task.fsync,
                crash_hook=crash_hook,
            )
        skip = frozenset(task.skip_rounds)
        computed: List[Tuple[int, bytes]] = []
        base_metadata = dict(task.metadata_base)
        for position, round_index in enumerate(task.round_indices):
            if round_index in skip:
                continue
            round_start = perf_seconds()
            blob = _run_shard_round(
                mechanism,
                rounds[position],
                {
                    **base_metadata,
                    "seed": task.round_seeds[position],
                    "round": round_index,
                },
            )
            if writer is not None:
                writer.append(round_index, blob)
            computed.append((round_index, blob))
            if task.heartbeat_path is not None:
                append_worker_beat(
                    task.heartbeat_path,
                    "round",
                    round_index,
                    perf_seconds() - round_start,
                    shard=task.shard_id,
                )
        del rounds  # release the column views before closing the segment
        if writer is not None:
            checkpointed = writer.appended
            writer.close()
            writer = None
        else:
            checkpointed = 0
        return ShardOutcome(
            shard_id=task.shard_id,
            rounds=tuple(computed),
            elapsed_seconds=perf_seconds() - start,
            worker_pid=os.getpid(),
            checkpointed=checkpointed,
        )
    except BaseException:
        # The propagating traceback keeps this frame alive; drop the
        # column views now so the segment can close cleanly.
        rounds = None  # noqa: F841
        if writer is not None:
            writer.abort()
        raise
    finally:
        _release_segment(segment, unlink=False)


def _run_shard_round(
    mechanism: Any,
    columns: RoundColumns,
    metadata: Dict[str, Any],
) -> bytes:
    """One round through the codec fast path; returns the result blob.

    Mirrors ``SimulationEngine.run`` over a freshly generated scenario:
    the decoded bids equal the scenario's truthful bids verbatim, so the
    packaged :class:`SimulationResult` pickles byte-identically to the
    serial campaign's.
    """
    bids = columns.decode_bids()
    scenario = Scenario.from_trusted(
        columns.decode_profiles(), columns.decode_schedule(), metadata
    )
    # The decoded objects are copies; release the view container so an
    # exception traceback through this frame cannot pin the segment.
    del columns
    with obs.span(
        "mechanism.run", mechanism=mechanism.name, bids=len(bids)
    ):
        outcome = mechanism.run(bids, scenario.schedule)
    result = SimulationEngine.package(mechanism.name, outcome, scenario)
    return pickle.dumps(result, protocol=4)


# ----------------------------------------------------------------------
# The sharded campaign runner
# ----------------------------------------------------------------------
def run_sharded_campaign(
    mechanism: MechanismSpec,
    cities: Sequence[CityConfig],
    seed: int = 0,
    workers: int = 1,
    shards_per_city: int = 1,
    checkpoint_dir: Optional["os.PathLike[str]"] = None,
    fsync: str = FSYNC_BATCH,
    heartbeat: Optional[HeartbeatConfig] = None,
    submission_order: Optional[Sequence[int]] = None,
    checkpoint_crash_hook: Optional[Callable[[int], None]] = None,
) -> ShardedCampaignResult:
    """Run a multi-city campaign sharded over a persistent process pool.

    Parameters
    ----------
    mechanism:
        The mechanism every city runs, as a picklable
        :class:`~repro.experiments.config.MechanismSpec` (each worker
        builds its own instance).
    cities:
        The campaign: one :class:`CityConfig` per city/region.  A
        single-city campaign with ``shards_per_city > 1`` degenerates to
        round-range sharding.
    seed:
        Campaign master seed; see the module docstring for the city /
        round derivation.
    workers:
        Pool size.  ``workers=1`` executes shards in-process through the
        identical codec path (the serial reference the byte-identity
        contract is stated against).
    shards_per_city:
        Contiguous round ranges per city (clamped to the city's rounds).
    checkpoint_dir:
        When given, every shard streams per-round records into this
        directory concurrently with compute and a rerun resumes
        mid-shard, recomputing only missing rounds — byte-identically.
    fsync:
        Checkpoint durability policy (the journal's ``always`` /
        ``batch`` / ``off``).
    heartbeat:
        Optional live progress: workers pulse per-round sidecar beats
        (tagged with their shard), the parent pulses per collected
        shard, and sidecars merge deterministically after the run.
    submission_order:
        Permutation of shard ids fixing pool submission order (tests);
        default plan order.  Outcomes do not depend on it.
    checkpoint_crash_hook:
        Test-only fault hook called after each durable append (e.g. a
        :class:`~repro.faults.crash.CrashController` raising a
        :class:`~repro.faults.crash.SimulatedCrash` mid-shard).
        Requires ``workers=1`` — hooks cannot cross the pool boundary.
    """
    if workers < 1:
        raise ShardingError(f"workers must be >= 1, got {workers}")
    if fsync not in _FSYNC_POLICIES:
        raise ShardingError(
            f"unknown fsync policy {fsync!r}; expected one of "
            f"{_FSYNC_POLICIES}"
        )
    if checkpoint_crash_hook is not None:
        if workers != 1:
            raise ShardingError(
                "checkpoint_crash_hook requires workers=1 (hooks cannot "
                "cross the process-pool boundary)"
            )
        if checkpoint_dir is None:
            raise ShardingError(
                "checkpoint_crash_hook requires checkpoint_dir"
            )
    plans = plan_shards(cities, shards_per_city=shards_per_city, seed=seed)
    order = _validated_order(submission_order, len(plans))
    cities_by_index = list(cities)

    heartbeat_path = heartbeat.path if heartbeat is not None else None
    pulse = (
        Heartbeat(heartbeat, total=len(plans))
        if heartbeat is not None
        else None
    )

    segments: Dict[int, shared_memory.SharedMemory] = {}
    resumed: Dict[int, Dict[int, bytes]] = {}
    outcomes: Dict[int, ShardOutcome] = {}
    with obs.span(
        "campaign.sharded",
        cities=len(cities_by_index),
        shards=len(plans),
        workers=workers,
    ):
        try:
            if workers == 1:
                for shard_id in order:
                    task = _prepare_shard(
                        plans[shard_id],
                        cities_by_index,
                        mechanism,
                        segments,
                        resumed,
                        checkpoint_dir,
                        fsync,
                        heartbeat_path,
                    )
                    outcome = _run_shard(task, checkpoint_crash_hook)
                    _collect_shard(outcome, plans, segments, pulse)
                    outcomes[shard_id] = outcome
            else:
                with ProcessPoolExecutor(max_workers=workers) as pool:
                    futures = []
                    for shard_id in order:
                        task = _prepare_shard(
                            plans[shard_id],
                            cities_by_index,
                            mechanism,
                            segments,
                            resumed,
                            checkpoint_dir,
                            fsync,
                            heartbeat_path,
                        )
                        futures.append(
                            (shard_id, pool.submit(_run_shard, task))
                        )
                    for shard_id, future in futures:
                        outcome = future.result()
                        _collect_shard(outcome, plans, segments, pulse)
                        outcomes[shard_id] = outcome
        finally:
            for segment in segments.values():
                _release_segment(segment, unlink=True)
            segments.clear()
            if heartbeat_path is not None:
                merge_heartbeats(heartbeat_path)

    return _assemble(cities_by_index, plans, outcomes, resumed)


def _validated_order(
    submission_order: Optional[Sequence[int]], num_shards: int
) -> List[int]:
    if submission_order is None:
        return list(range(num_shards))
    order = [int(index) for index in submission_order]
    if sorted(order) != list(range(num_shards)):
        raise ShardingError(
            f"submission_order must be a permutation of "
            f"range({num_shards}), got {submission_order!r}"
        )
    return order


def _prepare_shard(
    plan: ShardPlan,
    cities: Sequence[CityConfig],
    mechanism: MechanismSpec,
    segments: Dict[int, shared_memory.SharedMemory],
    resumed: Dict[int, Dict[int, bytes]],
    checkpoint_dir: Optional["os.PathLike[str]"],
    fsync: str,
    heartbeat_path: Optional["os.PathLike[str]"],
) -> ShardTask:
    """Encode one shard's rounds into a fresh segment; build its task."""
    city = cities[plan.city_index]
    city_streams = RngStreams(plan.city_seed)
    round_seeds = tuple(
        city_streams.child(round_index).seed
        for round_index in plan.round_indices
    )
    rounds = [
        city.workload.generate_columns(round_seed)
        for round_seed in round_seeds
    ]
    nbytes = packed_size(rounds)
    segment = _create_segment(nbytes)
    segments[plan.shard_id] = segment
    header = pack_rounds_into(rounds, segment.buf)
    obs.counter("campaign.shard.segment_bytes", nbytes)

    checkpoint_path: Optional[str] = None
    skip: Tuple[int, ...] = ()
    if checkpoint_dir is not None:
        target = shard_checkpoint_path(checkpoint_dir, plan)
        done = load_shard_checkpoint(target)
        done = {
            index: blob
            for index, blob in done.items()
            if plan.round_start <= index < plan.round_stop
        }
        resumed[plan.shard_id] = done
        skip = tuple(sorted(done))
        checkpoint_path = str(target)
        if done:
            obs.counter("campaign.shard.resumed_rounds", len(done))
    # Scenario metadata parity with the serial campaign loop: the exact
    # dict generate() attaches (workload parameters, seed placeholder,
    # default cost-distribution repr, in that key order — the worker
    # overrides "seed" in place and appends "round", reproducing the
    # serial loop's insertion order).  Overridable distributions are a
    # generate()-level feature; the sharded runner draws the defaults.
    metadata_base = tuple(
        city.workload.metadata_for(
            0, repr(UniformCosts.with_mean(city.workload.mean_cost))
        ).items()
    )
    return ShardTask(
        shard_id=plan.shard_id,
        city_name=plan.city_name,
        segment=segment.name,
        header=header,
        round_indices=plan.round_indices,
        round_seeds=round_seeds,
        metadata_base=metadata_base,
        mechanism=mechanism,
        skip_rounds=skip,
        checkpoint_path=checkpoint_path,
        fsync=fsync,
        heartbeat_path=(
            str(heartbeat_path) if heartbeat_path is not None else None
        ),
    )


def _collect_shard(
    outcome: ShardOutcome,
    plans: Sequence[ShardPlan],
    segments: Dict[int, shared_memory.SharedMemory],
    pulse: Optional[Heartbeat],
) -> None:
    """Account one finished shard and release its segment eagerly."""
    segment = segments.pop(outcome.shard_id, None)
    if segment is not None:
        _release_segment(segment, unlink=True)
    obs.counter("campaign.shard.completed")
    obs.counter("campaign.shard.rounds", len(outcome.rounds))
    if outcome.checkpointed:
        obs.counter(
            "campaign.shard.checkpoint.appends", outcome.checkpointed
        )
    obs.observe(
        "campaign.shard.worker.seconds", outcome.elapsed_seconds
    )
    if pulse is not None:
        plan = plans[outcome.shard_id]
        # Stable unit identity: the shard id, never the collection
        # position — completion order is a wall-clock fact.
        pulse.beat(
            outcome.shard_id,
            shard=outcome.shard_id,
            city=plan.city_name,
            rounds=len(outcome.rounds),
        )


def _assemble(
    cities: Sequence[CityConfig],
    plans: Sequence[ShardPlan],
    outcomes: Dict[int, ShardOutcome],
    resumed: Dict[int, Dict[int, bytes]],
) -> ShardedCampaignResult:
    """Fold shard outcomes (and resumed rounds) into per-city results."""
    blobs_by_city: Dict[int, Dict[int, bytes]] = {
        index: {} for index in range(len(cities))
    }
    for plan in plans:
        outcome = outcomes.get(plan.shard_id)
        if outcome is None:
            raise ShardingError(
                f"shard {plan.shard_id} produced no outcome"
            )
        merged = dict(resumed.get(plan.shard_id, {}))
        for round_index, blob in outcome.rounds:
            merged[round_index] = blob
        missing = set(plan.round_indices) - set(merged)
        if missing:
            raise CheckpointError(
                f"shard {plan.shard_id} ({plan.city_name} rounds "
                f"{plan.round_start}..{plan.round_stop}) is missing "
                f"rounds {sorted(missing)}"
            )
        blobs_by_city[plan.city_index].update(merged)

    city_results: List[Tuple[str, CampaignResult]] = []
    for city_index, city in enumerate(cities):
        blobs = blobs_by_city[city_index]
        results: List[SimulationResult] = [
            pickle.loads(blobs[round_index])
            for round_index in range(city.num_rounds)
        ]
        city_results.append((city.name, aggregate_rounds(results)))
    return ShardedCampaignResult(
        cities=tuple(city_results),
        total_welfare=sum(
            result.total_welfare for _, result in city_results
        ),
        total_payment=sum(
            result.total_payment for _, result in city_results
        ),
    )
