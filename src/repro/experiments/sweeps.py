"""Declarative sweep specifications."""

from __future__ import annotations

import dataclasses
from typing import Any, Tuple

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """One experiment: vary ``param`` over ``values`` under ``config``.

    Attributes
    ----------
    name:
        Identifier used in reports (e.g. ``"fig6"``).
    title:
        Human-readable description (e.g. the figure caption).
    param:
        The :class:`~repro.simulation.WorkloadConfig` field to sweep.
    values:
        The parameter values, in plot order.
    config:
        Mechanisms, repetitions, seeds, and the base workload.
    """

    name: str
    title: str
    param: str
    values: Tuple[Any, ...]
    config: ExperimentConfig

    def __post_init__(self) -> None:
        if not self.values:
            raise ExperimentError(f"sweep {self.name!r} has no values")
        if len(set(self.values)) != len(self.values):
            raise ExperimentError(
                f"sweep {self.name!r} has duplicate values: {self.values}"
            )
