"""Sweep execution: repetitions, metric collection, aggregation.

:func:`run_point` measures every configured mechanism on one workload
setting over seeded repetitions; :func:`run_sweep` does that for every
value of the swept parameter.  All scenarios at a sweep point are shared
across mechanisms (same seeds → same instances), so mechanism
comparisons are paired, not independent.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.config import (
    ExperimentConfig,
    apply_workload_override,
)
from repro.experiments.sweeps import SweepSpec
from repro.metrics.summary import Summary, summarize
from repro.simulation.engine import SimulationEngine
from repro.simulation.workload import WorkloadConfig


@dataclasses.dataclass(frozen=True)
class MechanismMetrics:
    """Aggregated metrics of one mechanism at one sweep point.

    ``overpayment_ratio`` is ``None`` when no repetition produced a
    defined ratio (nothing allocated anywhere).
    """

    label: str
    welfare: Summary
    overpayment_ratio: Optional[Summary]
    total_payment: Summary
    tasks_served: Summary


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """All mechanisms' metrics at one swept parameter value."""

    param: str
    value: Any
    metrics: Tuple[MechanismMetrics, ...]

    def of(self, label: str) -> MechanismMetrics:
        """Metrics of the mechanism with ``label``."""
        for metric in self.metrics:
            if metric.label == label:
                return metric
        known = [m.label for m in self.metrics]
        raise ExperimentError(
            f"no mechanism labelled {label!r} at this point; known: {known}"
        )


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """A completed sweep: one :class:`SweepPoint` per parameter value."""

    name: str
    param: str
    points: Tuple[SweepPoint, ...]
    config: ExperimentConfig

    @property
    def values(self) -> Tuple[Any, ...]:
        """The swept parameter values, in order."""
        return tuple(point.value for point in self.points)

    def series(
        self, label: str, metric: str = "welfare"
    ) -> List[Tuple[Any, float]]:
        """``(value, mean)`` pairs for one mechanism and metric.

        ``metric`` is one of ``welfare``, ``overpayment_ratio``,
        ``total_payment``, ``tasks_served``.  Points where the metric is
        undefined are skipped.
        """
        pairs: List[Tuple[Any, float]] = []
        for point in self.points:
            summary = getattr(point.of(label), metric)
            if summary is None:
                continue
            pairs.append((point.value, summary.mean))
        return pairs


def run_point(
    config: ExperimentConfig,
    workload: Optional[WorkloadConfig] = None,
    param: str = "",
    value: Any = None,
) -> SweepPoint:
    """Measure every configured mechanism on one workload setting."""
    effective = workload if workload is not None else config.workload
    engine = SimulationEngine()
    scenarios = [effective.generate(seed) for seed in config.seeds()]

    metrics: List[MechanismMetrics] = []
    for spec in config.mechanisms:
        mechanism = spec.build()
        welfare: List[float] = []
        ratios: List[Optional[float]] = []
        payments: List[float] = []
        served: List[float] = []
        for scenario in scenarios:
            result = engine.run(mechanism, scenario)
            welfare.append(result.true_welfare)
            ratios.append(result.overpayment_ratio)
            payments.append(result.total_payment)
            served.append(float(result.tasks_served))
        defined_ratios = [r for r in ratios if r is not None]
        metrics.append(
            MechanismMetrics(
                label=spec.display_label,
                welfare=summarize(welfare),
                overpayment_ratio=(
                    summarize(defined_ratios) if defined_ratios else None
                ),
                total_payment=summarize(payments),
                tasks_served=summarize(served),
            )
        )
    return SweepPoint(param=param, value=value, metrics=tuple(metrics))


def run_sweep(spec: SweepSpec) -> SweepResult:
    """Execute a parameter sweep."""
    points: List[SweepPoint] = []
    for value in spec.values:
        workload = apply_workload_override(
            spec.config.workload, spec.param, value
        )
        points.append(
            run_point(
                spec.config, workload=workload, param=spec.param, value=value
            )
        )
    return SweepResult(
        name=spec.name,
        param=spec.param,
        points=tuple(points),
        config=spec.config,
    )
