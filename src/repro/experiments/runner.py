"""Sweep execution: repetitions, metric collection, aggregation.

:func:`run_point` measures every configured mechanism on one workload
setting over seeded repetitions; :func:`run_sweep` does that for every
value of the swept parameter.  All scenarios at a sweep point are shared
across mechanisms (same seeds → same instances), so mechanism
comparisons are paired, not independent.

Graceful degradation
--------------------
A repetition that raises can be retried (``retries`` attempts with
exponential backoff); a repetition that keeps failing is dropped from
*every* mechanism (pairing is preserved) and the point is marked
``"partial"`` instead of aborting the sweep.  Passing a
:class:`~repro.experiments.checkpoint.CheckpointStore` to
:func:`run_sweep` persists each completed point atomically and resumes
past completed points after a kill — a resumed sweep aggregates
byte-identically to an uninterrupted one.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import (
    TYPE_CHECKING,
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro import obs
from repro.errors import ExperimentError
from repro.experiments.config import (
    ExperimentConfig,
    apply_workload_override,
)
from repro.experiments.parallel import run_repetitions_parallel
from repro.experiments.sweeps import SweepSpec
from repro.metrics.summary import Summary, summarize
from repro.obs.live import Heartbeat, HeartbeatConfig, merge_heartbeats
from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.workload import WorkloadConfig
from repro.utils.retry import RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.experiments.checkpoint import CheckpointStore

#: ``on_failure`` policies for repetitions that exhaust their retries.
ON_FAILURE_RAISE = "raise"      # propagate the exception (default)
ON_FAILURE_PARTIAL = "partial"  # drop the repetition, mark the point
_ON_FAILURE = (ON_FAILURE_RAISE, ON_FAILURE_PARTIAL)


@dataclasses.dataclass(frozen=True)
class MechanismMetrics:
    """Aggregated metrics of one mechanism at one sweep point.

    ``overpayment_ratio`` is ``None`` when no repetition produced a
    defined ratio (nothing allocated anywhere).
    """

    label: str
    welfare: Summary
    overpayment_ratio: Optional[Summary]
    total_payment: Summary
    tasks_served: Summary


@dataclasses.dataclass(frozen=True)
class SweepPoint:
    """All mechanisms' metrics at one swept parameter value.

    ``status`` is ``"complete"`` when every repetition succeeded,
    ``"partial"`` when some repetitions were dropped after exhausting
    their retries, and ``"failed"`` when none succeeded (``metrics`` is
    then empty).  ``completed_repetitions`` is ``None`` for points built
    by callers that do not track repetition accounting.
    """

    param: str
    value: Any
    metrics: Tuple[MechanismMetrics, ...]
    status: str = "complete"
    completed_repetitions: Optional[int] = None
    failed_repetitions: int = 0

    def of(self, label: str) -> MechanismMetrics:
        """Metrics of the mechanism with ``label``."""
        for metric in self.metrics:
            if metric.label == label:
                return metric
        known = [m.label for m in self.metrics]
        raise ExperimentError(
            f"no mechanism labelled {label!r} at this point; known: {known}"
        )


@dataclasses.dataclass(frozen=True)
class SweepResult:
    """A completed sweep: one :class:`SweepPoint` per parameter value."""

    name: str
    param: str
    points: Tuple[SweepPoint, ...]
    config: ExperimentConfig

    @property
    def values(self) -> Tuple[Any, ...]:
        """The swept parameter values, in order."""
        return tuple(point.value for point in self.points)

    def series(
        self, label: str, metric: str = "welfare"
    ) -> List[Tuple[Any, float]]:
        """``(value, mean)`` pairs for one mechanism and metric.

        ``metric`` is one of ``welfare``, ``overpayment_ratio``,
        ``total_payment``, ``tasks_served``.  Points where the metric is
        undefined are skipped.
        """
        pairs: List[Tuple[Any, float]] = []
        for point in self.points:
            if point.status == "failed":
                continue  # no repetition survived; nothing to plot
            summary = getattr(point.of(label), metric)
            if summary is None:
                continue
            pairs.append((point.value, summary.mean))
        return pairs


def run_point(
    config: ExperimentConfig,
    workload: Optional[WorkloadConfig] = None,
    param: str = "",
    value: Any = None,
    retries: int = 0,
    backoff: float = 0.0,
    sleep: Optional[Callable[[float], None]] = None,
    on_failure: str = ON_FAILURE_RAISE,
    workers: int = 1,
    executor: Optional[Executor] = None,
    heartbeat: Optional[HeartbeatConfig] = None,
) -> SweepPoint:
    """Measure every configured mechanism on one workload setting.

    Parameters
    ----------
    config / workload / param / value:
        As before: the mechanisms, the effective workload, and the swept
        coordinate this point sits at.
    retries:
        Extra attempts for a repetition whose execution raises.
    backoff:
        Base delay (seconds) between attempts; attempt ``k`` waits
        ``backoff * 2**(k-1)``.  Zero disables waiting.
    sleep:
        Injection point for the backoff wait (tests pass a stub;
        default: :func:`time.sleep`).  Serial mode only — a stub cannot
        cross a process boundary.
    on_failure:
        ``"raise"`` propagates a repetition's final failure;
        ``"partial"`` drops the repetition from every mechanism (the
        comparison stays paired) and records it in
        ``failed_repetitions``.
    workers:
        Number of worker processes for the repetitions.  ``1`` (the
        default) runs the historical in-process loop; ``> 1`` fans the
        repetitions out over a process pool while preserving seed order,
        paired comparisons, and byte-identical aggregation (see
        :mod:`repro.experiments.parallel`).
    executor:
        An existing pool to submit to (``run_sweep`` shares one across
        its points).  Implies parallel mode regardless of ``workers``.
    heartbeat:
        Optional :class:`~repro.obs.live.HeartbeatConfig`; pulses once
        per ``every`` completed repetitions (file and/or console).  In
        parallel mode, workers additionally pulse per-repetition
        sidecar files, merged deterministically after collection.
        Heartbeats never influence seeds, pairing, or aggregation.
    """
    if on_failure not in _ON_FAILURE:
        raise ExperimentError(
            f"on_failure must be one of {_ON_FAILURE}, got {on_failure!r}"
        )
    if retries < 0:
        raise ExperimentError(f"retries must be >= 0, got {retries}")
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    parallel = workers > 1 or executor is not None
    if parallel and sleep is not None:
        raise ExperimentError(
            "a sleep stub cannot cross process boundaries; "
            "use workers=1 with injected sleep"
        )
    effective = workload if workload is not None else config.workload
    built = [(spec, spec.build()) for spec in config.mechanisms]
    pulse = (
        Heartbeat(
            dataclasses.replace(heartbeat, label="repetition"),
            total=len(config.seeds()),
        )
        if heartbeat is not None
        else None
    )

    rows: List[Sequence[SimulationResult]] = []
    completed = 0
    failed = 0
    retried = 0
    with obs.span(
        "sweep.point", param=param, value=value, workers=workers
    ) as tel:
        if parallel:
            repetitions = run_repetitions_parallel(
                effective,
                config.mechanisms,
                config.seeds(),
                retries,
                backoff,
                on_failure,
                workers,
                executor=executor,
                heartbeat_path=(
                    heartbeat.path if heartbeat is not None else None
                ),
            )
            worker_seconds: Dict[int, float] = {}
            for unit_index, repetition in enumerate(repetitions):
                retried += repetition.retried
                if repetition.retried:
                    obs.counter("sweep.retries", repetition.retried)
                obs.observe(
                    "sweep.worker.seconds", repetition.elapsed_seconds
                )
                worker_seconds[repetition.worker_pid] = (
                    worker_seconds.get(repetition.worker_pid, 0.0)
                    + repetition.elapsed_seconds
                )
                if pulse is not None:
                    pulse.beat(unit_index, seed=repetition.seed)
                if repetition.row is None:
                    failed += 1
                    continue
                completed += 1
                rows.append(repetition.row)
            if heartbeat is not None and heartbeat.path is not None:
                merge_heartbeats(heartbeat.path)
            tel.set_attribute(
                "worker_seconds",
                {
                    pid: round(seconds, 6)
                    for pid, seconds in sorted(worker_seconds.items())
                },
            )
        else:
            engine = SimulationEngine()
            wait = sleep if sleep is not None else time.sleep
            policy = RetryPolicy(retries=retries, backoff=backoff)
            for unit_index, seed in enumerate(config.seeds()):
                row: Optional[List[SimulationResult]] = None
                for attempt in range(retries + 1):
                    try:
                        scenario = effective.generate(seed)
                        row = [
                            engine.run(mechanism, scenario)
                            for _, mechanism in built
                        ]
                        break
                    except Exception:
                        if attempt >= retries:
                            if on_failure == ON_FAILURE_RAISE:
                                raise
                            row = None
                        else:
                            retried += 1
                            obs.counter("sweep.retries")
                            delay = policy.delay_for(attempt)
                            if delay > 0:
                                wait(delay)
                if pulse is not None:
                    pulse.beat(unit_index, seed=seed)
                if row is None:
                    failed += 1
                    continue
                completed += 1
                rows.append(row)
        tel.set_attribute("completed", completed)
        tel.set_attribute("failed", failed)
        tel.set_attribute("retried", retried)

    if completed == 0:
        return SweepPoint(
            param=param,
            value=value,
            metrics=(),
            status="failed",
            completed_repetitions=0,
            failed_repetitions=failed,
        )

    metrics: List[MechanismMetrics] = []
    for index, (spec, _) in enumerate(built):
        results = [row[index] for row in rows]
        ratios = [r.overpayment_ratio for r in results]
        defined_ratios = [r for r in ratios if r is not None]
        metrics.append(
            MechanismMetrics(
                label=spec.display_label,
                welfare=summarize([r.true_welfare for r in results]),
                overpayment_ratio=(
                    summarize(defined_ratios) if defined_ratios else None
                ),
                total_payment=summarize(
                    [r.total_payment for r in results]
                ),
                tasks_served=summarize(
                    [float(r.tasks_served) for r in results]
                ),
            )
        )
    return SweepPoint(
        param=param,
        value=value,
        metrics=tuple(metrics),
        status="complete" if failed == 0 else "partial",
        completed_repetitions=completed,
        failed_repetitions=failed,
    )


def run_sweep(
    spec: SweepSpec,
    checkpoint: Optional["CheckpointStore"] = None,
    retries: int = 0,
    backoff: float = 0.0,
    sleep: Optional[Callable[[float], None]] = None,
    on_failure: Optional[str] = None,
    workers: int = 1,
    heartbeat: Optional[HeartbeatConfig] = None,
) -> SweepResult:
    """Execute a parameter sweep, optionally checkpointed and resumable.

    With a ``checkpoint`` store, every completed point is persisted
    atomically and any point already on disk (valid schema + checksum)
    is loaded instead of recomputed, so a killed sweep resumes where it
    stopped and aggregates byte-identically to an uninterrupted run.

    ``on_failure`` defaults to ``"partial"`` when resilience was asked
    for (``retries > 0`` or a checkpoint store) and ``"raise"``
    otherwise, preserving the historical fail-fast behaviour.

    ``workers > 1`` fans each point's repetitions out over one process
    pool shared across the whole sweep.  Seed pairing, aggregation
    order, point statuses, and checkpoint bytes are identical to a
    serial run (see :mod:`repro.experiments.parallel`); checkpointing
    composes with parallelism unchanged, because points are still
    completed and persisted one at a time.

    A ``heartbeat`` pulses per completed sweep *point* (on top of the
    per-repetition pulses :func:`run_point` emits with the same
    config), so a long sweep reports progress at both granularities.
    """
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    if on_failure is None:
        resilient = retries > 0 or checkpoint is not None
        on_failure = ON_FAILURE_PARTIAL if resilient else ON_FAILURE_RAISE
    executor: Optional[Executor] = None
    points: List[SweepPoint] = []
    point_pulse = (
        Heartbeat(
            dataclasses.replace(heartbeat, label="point"),
            total=len(spec.values),
        )
        if heartbeat is not None
        else None
    )
    try:
        if workers > 1:
            executor = ProcessPoolExecutor(max_workers=workers)
        with obs.span(
            "sweep.run",
            sweep=spec.name,
            param=spec.param,
            values=len(spec.values),
            workers=workers,
        ) as tel:
            checkpoint_hits = 0
            for value_index, value in enumerate(spec.values):
                point: Optional[SweepPoint] = None
                if checkpoint is not None:
                    with obs.span("sweep.checkpoint.load", value=value):
                        point = checkpoint.load_point(
                            spec.name, spec.param, value
                        )
                    if point is not None:
                        checkpoint_hits += 1
                        obs.counter("sweep.checkpoint.hits")
                if point is None:
                    workload = apply_workload_override(
                        spec.config.workload, spec.param, value
                    )
                    point = run_point(
                        spec.config,
                        workload=workload,
                        param=spec.param,
                        value=value,
                        retries=retries,
                        backoff=backoff,
                        sleep=sleep,
                        on_failure=on_failure,
                        workers=workers,
                        executor=executor,
                        heartbeat=heartbeat,
                    )
                    if checkpoint is not None:
                        with obs.span("sweep.checkpoint.save", value=value):
                            checkpoint.save_point(spec.name, point)
                points.append(point)
                if point_pulse is not None:
                    point_pulse.beat(value_index, value=value)
            tel.set_attribute("checkpoint_hits", checkpoint_hits)
    finally:
        if executor is not None:
            executor.shutdown(wait=True)
    return SweepResult(
        name=spec.name,
        param=spec.param,
        points=tuple(points),
        config=spec.config,
    )
