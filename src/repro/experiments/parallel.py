"""Process-pool fan-out for sweep repetitions.

The sweep runner's unit of parallelism is the *repetition*: one seeded
scenario, run through every mechanism under comparison.  That keeps the
paired-seed design intact (each worker runs all mechanisms on the same
scenario, exactly like the serial loop) and makes determinism trivial —
the parent submits repetitions in seed order, collects results in seed
order, and aggregates them with the same code path the serial runner
uses, so a parallel sweep is byte-identical to a serial one by
construction (property-tested in ``tests/experiments``).

Retries happen *inside* the worker: a repetition that raises is retried
there (with real ``time.sleep`` backoff — the injectable sleep stub
cannot cross a process boundary), and a repetition that exhausts its
retries either propagates the exception to the parent through the
future (``on_failure="raise"``) or comes back as a failed
:class:`RepetitionResult` (``"partial"``), matching the serial
semantics.

Each result carries the worker's pid and wall time, which the runner
surfaces as the ``sweep.worker.seconds`` histogram and a per-pid
attribute on the ``sweep.point`` span.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import time
from concurrent.futures import Executor, ProcessPoolExecutor
from typing import List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.config import MechanismSpec
from repro.obs.clock import perf_seconds
from repro.obs.live import append_worker_beat
from repro.utils.retry import RetryPolicy
from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.workload import WorkloadConfig

#: Mirrors :data:`repro.experiments.runner.ON_FAILURE_RAISE` (duplicated
#: here to keep the worker module import-light for process spawning).
_ON_FAILURE_RAISE = "raise"


@dataclasses.dataclass(frozen=True)
class RepetitionResult:
    """One seeded repetition's outcome, as returned by a worker.

    ``row`` holds one :class:`~repro.simulation.engine.SimulationResult`
    per mechanism (in the configured mechanism order), or ``None`` when
    the repetition exhausted its retries under ``on_failure="partial"``.
    """

    seed: int
    row: Optional[Tuple[SimulationResult, ...]]
    retried: int
    elapsed_seconds: float
    worker_pid: int

    @property
    def failed(self) -> bool:
        """Whether the repetition was dropped."""
        return self.row is None


def run_repetition(
    workload: WorkloadConfig,
    mechanisms: Tuple[MechanismSpec, ...],
    seed: int,
    retries: int,
    backoff: float,
    on_failure: str,
    heartbeat_path: Optional[pathlib.Path] = None,
    unit_index: int = 0,
) -> RepetitionResult:
    """Execute one seeded repetition across every mechanism.

    This is the process-pool entry point, so it is a top-level function
    of picklable arguments (frozen dataclasses all the way down).  The
    attempt/retry/backoff loop matches the serial runner's exactly.
    With ``heartbeat_path``, the worker appends one pulse per finished
    repetition to its own sidecar file (``unit_index`` is the
    repetition's seed position — the stable identity the deterministic
    merge orders by).
    """
    start = perf_seconds()
    engine = SimulationEngine()
    built = [spec.build() for spec in mechanisms]
    policy = RetryPolicy(retries=retries, backoff=backoff)
    retried = 0
    row: Optional[Tuple[SimulationResult, ...]] = None
    for attempt in range(retries + 1):
        try:
            scenario = workload.generate(seed)
            row = tuple(
                engine.run(mechanism, scenario) for mechanism in built
            )
            break
        except Exception:
            if attempt >= retries:
                if on_failure == _ON_FAILURE_RAISE:
                    raise
                row = None
            else:
                retried += 1
                delay = policy.delay_for(attempt)
                if delay > 0:
                    time.sleep(delay)
    elapsed = perf_seconds() - start
    if heartbeat_path is not None:
        append_worker_beat(
            heartbeat_path,
            "repetition",
            unit_index,
            elapsed,
            seed=seed,
            retried=retried,
        )
    return RepetitionResult(
        seed=seed,
        row=row,
        retried=retried,
        elapsed_seconds=elapsed,
        worker_pid=os.getpid(),
    )


def run_repetitions_parallel(
    workload: WorkloadConfig,
    mechanisms: Tuple[MechanismSpec, ...],
    seeds: Sequence[int],
    retries: int,
    backoff: float,
    on_failure: str,
    workers: int,
    executor: Optional[Executor] = None,
    heartbeat_path: Optional[pathlib.Path] = None,
) -> List[RepetitionResult]:
    """Fan the repetitions out over a process pool, seed order preserved.

    Results are collected in submission (= seed) order regardless of
    which worker finishes first, so downstream aggregation sees exactly
    the sequence the serial loop would produce.  ``executor`` lets a
    sweep share one pool across all its points; otherwise a pool of
    ``workers`` processes is created for this call alone.  With
    ``heartbeat_path``, workers pulse per-repetition sidecar files
    which the caller merges after collection
    (:func:`repro.obs.live.merge_heartbeats`).
    """
    if workers < 1:
        raise ExperimentError(f"workers must be >= 1, got {workers}")
    owns_executor = executor is None
    pool: Executor = (
        ProcessPoolExecutor(max_workers=workers)
        if executor is None
        else executor
    )
    try:
        futures = [
            pool.submit(
                run_repetition,
                workload,
                mechanisms,
                seed,
                retries,
                backoff,
                on_failure,
                heartbeat_path,
                unit_index,
            )
            for unit_index, seed in enumerate(seeds)
        ]
        return [future.result() for future in futures]
    finally:
        if owns_executor:
            pool.shutdown(wait=True)
