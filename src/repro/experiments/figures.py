"""The paper's six evaluation figures as sweep specifications.

Each ``figN`` function returns the :class:`~repro.experiments.SweepSpec`
that regenerates the corresponding figure of Section VI.  The sweep axes
come straight from the paper:

* Fig. 6 / Fig. 9 — number of slots ``m ∈ {30, 40, 50, 60, 70, 80}``,
* Fig. 7 / Fig. 10 — smartphone arrival rate ``λ ∈ {4, 5, 6, 7, 8}``,
* Fig. 8 / Fig. 11 — average real cost ``c̄ ∈ {10, 20, 30, 40, 50}``,

with welfare on the y-axis for Figs. 6–8 and overpayment ratio for
Figs. 9–11 (the same sweep measures both, so e.g. ``fig6`` and ``fig9``
share a spec and differ only in which metric a report reads).
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Dict, Optional, Tuple

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.experiments.sweeps import SweepSpec

#: Sweep axes from the paper's x-axis ticks.
SLOT_VALUES: Tuple[int, ...] = (30, 40, 50, 60, 70, 80)
PHONE_RATE_VALUES: Tuple[float, ...] = (4.0, 5.0, 6.0, 7.0, 8.0)
MEAN_COST_VALUES: Tuple[float, ...] = (10.0, 20.0, 30.0, 40.0, 50.0)


def _config(repetitions: int, base_seed: int) -> ExperimentConfig:
    return ExperimentConfig(repetitions=repetitions, base_seed=base_seed)


def fig6(repetitions: int = 10, base_seed: int = 2014) -> SweepSpec:
    """Fig. 6: social welfare ω vs. number of slots m."""
    return SweepSpec(
        name="fig6",
        title="Social welfare vs. number of slots m (Fig. 6)",
        param="num_slots",
        values=SLOT_VALUES,
        config=_config(repetitions, base_seed),
    )


def fig7(repetitions: int = 10, base_seed: int = 2014) -> SweepSpec:
    """Fig. 7: social welfare ω vs. smartphone arrival rate λ."""
    return SweepSpec(
        name="fig7",
        title="Social welfare vs. smartphone arrival rate λ (Fig. 7)",
        param="phone_rate",
        values=PHONE_RATE_VALUES,
        config=_config(repetitions, base_seed),
    )


def fig8(repetitions: int = 10, base_seed: int = 2014) -> SweepSpec:
    """Fig. 8: social welfare ω vs. average of real costs c̄."""
    return SweepSpec(
        name="fig8",
        title="Social welfare vs. average of real costs (Fig. 8)",
        param="mean_cost",
        values=MEAN_COST_VALUES,
        config=_config(repetitions, base_seed),
    )


def fig9(repetitions: int = 10, base_seed: int = 2014) -> SweepSpec:
    """Fig. 9: overpayment ratio σ vs. number of slots m."""
    spec = fig6(repetitions, base_seed)
    return SweepSpec(
        name="fig9",
        title="Overpayment ratio vs. number of slots m (Fig. 9)",
        param=spec.param,
        values=spec.values,
        config=spec.config,
    )


def fig10(repetitions: int = 10, base_seed: int = 2014) -> SweepSpec:
    """Fig. 10: overpayment ratio σ vs. smartphone arrival rate λ."""
    spec = fig7(repetitions, base_seed)
    return SweepSpec(
        name="fig10",
        title="Overpayment ratio vs. smartphone arrival rate λ (Fig. 10)",
        param=spec.param,
        values=spec.values,
        config=spec.config,
    )


def fig11(repetitions: int = 10, base_seed: int = 2014) -> SweepSpec:
    """Fig. 11: overpayment ratio σ vs. average of real costs c̄."""
    spec = fig8(repetitions, base_seed)
    return SweepSpec(
        name="fig11",
        title="Overpayment ratio vs. average of real costs (Fig. 11)",
        param=spec.param,
        values=spec.values,
        config=spec.config,
    )


#: Figure name -> spec builder.
FIGURES: Dict[str, Callable[..., SweepSpec]] = {
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9": fig9,
    "fig10": fig10,
    "fig11": fig11,
}

#: Which metric each figure plots.
FIGURE_METRIC: Dict[str, str] = {
    "fig6": "welfare",
    "fig7": "welfare",
    "fig8": "welfare",
    "fig9": "overpayment_ratio",
    "fig10": "overpayment_ratio",
    "fig11": "overpayment_ratio",
}


def list_figures() -> Tuple[str, ...]:
    """All figure names, in paper order."""
    return tuple(FIGURES)


def _spec_with_engine(spec: SweepSpec, engine: str) -> SweepSpec:
    """Rebuild ``spec`` with every online-greedy entry pinned to ``engine``.

    The default specs stay byte-stable (checkpoint keys hash the config,
    so ``engine="batch"`` must not perturb them); only an explicit
    non-default engine rewrites the mechanism kwargs.
    """
    if engine == "batch":
        return spec
    mechanisms = tuple(
        dataclasses.replace(
            entry,
            kwargs=tuple(
                sorted({**dict(entry.kwargs), "engine": engine}.items())
            ),
        )
        if entry.name == "online-greedy"
        else entry
        for entry in spec.config.mechanisms
    )
    config = dataclasses.replace(spec.config, mechanisms=mechanisms)
    return dataclasses.replace(spec, config=config)


def figure_spec(
    name: str,
    repetitions: int = 10,
    base_seed: Optional[int] = None,
    engine: str = "batch",
) -> SweepSpec:
    """Build the spec of one figure by name.

    ``engine`` selects the online mechanism's allocation engine
    (``"batch"`` or ``"streaming"``); outcomes — and therefore figure
    data — are bit-identical either way.
    """
    try:
        builder = FIGURES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown figure {name!r}; available: {sorted(FIGURES)}"
        ) from None
    if base_seed is None:
        spec = builder(repetitions=repetitions)
    else:
        spec = builder(repetitions=repetitions, base_seed=base_seed)
    return _spec_with_engine(spec, engine)
