"""Minimal ASCII line charts for terminal reports.

The benches and examples run in environments without plotting libraries;
this renders multi-series line charts as plain text, one marker character
per series, with axis labels.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ExperimentError

_MARKERS = "ox+*#@%&"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    title: str = "",
    width: int = 60,
    height: int = 16,
) -> str:
    """Render ``{label: [(x, y), ...]}`` as an ASCII chart.

    Each series gets one marker character; a legend maps markers to
    labels.  Points are plotted on a ``width x height`` grid scaled to
    the joint data range.
    """
    if not series:
        raise ExperimentError("ascii_chart needs at least one series")
    if width < 10 or height < 4:
        raise ExperimentError(
            f"chart must be at least 10 x 4, got {width} x {height}"
        )
    if len(series) > len(_MARKERS):
        raise ExperimentError(
            f"at most {len(_MARKERS)} series supported, got {len(series)}"
        )

    points = [
        (float(x), float(y))
        for pairs in series.values()
        for x, y in pairs
    ]
    if not points:
        raise ExperimentError("every series is empty")
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    grid: List[List[str]] = [
        [" "] * width for _ in range(height)
    ]

    def place(x: float, y: float, marker: str) -> None:
        col = int(round((x - x_min) / x_span * (width - 1)))
        row = int(round((y - y_min) / y_span * (height - 1)))
        grid[height - 1 - row][col] = marker

    legend_lines = []
    for (label, pairs), marker in zip(sorted(series.items()), _MARKERS):
        for x, y in pairs:
            place(float(x), float(y), marker)
        legend_lines.append(f"  {marker} = {label}")

    lines = []
    if title:
        lines.append(title)
    y_top = f"{y_max:.4g}"
    y_bottom = f"{y_min:.4g}"
    label_width = max(len(y_top), len(y_bottom))
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = y_top.rjust(label_width)
        elif row_index == height - 1:
            prefix = y_bottom.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    x_left = f"{x_min:.4g}"
    x_right = f"{x_max:.4g}"
    axis = " " * label_width + " +" + "-" * width
    x_labels = (
        " " * (label_width + 2)
        + x_left
        + " " * max(1, width - len(x_left) - len(x_right))
        + x_right
    )
    lines.append(axis)
    lines.append(x_labels)
    lines.extend(legend_lines)
    return "\n".join(lines)
