"""Rendering sweep results as text tables, CSV, and ASCII charts."""

from __future__ import annotations

import io
from typing import List, Optional

from repro.errors import ExperimentError
from repro.experiments.ascii_plot import ascii_chart
from repro.experiments.runner import SweepResult
from repro.metrics.summary import Summary
from repro.utils.tables import format_table

_METRICS = ("welfare", "overpayment_ratio", "total_payment", "tasks_served")


def _check_metric(metric: str) -> str:
    if metric not in _METRICS:
        raise ExperimentError(
            f"unknown metric {metric!r}; expected one of {_METRICS}"
        )
    return metric


def render_sweep_table(
    result: SweepResult, metric: str = "welfare", title: Optional[str] = None
) -> str:
    """A mean ± ci95 table: one row per swept value, one pair of columns
    per mechanism."""
    _check_metric(metric)
    labels = [spec.display_label for spec in result.config.mechanisms]
    headers = [result.param]
    for label in labels:
        headers.extend([f"{label} {metric}", "ci95"])

    rows: List[List[object]] = []
    for point in result.points:
        row: List[object] = [point.value]
        for label in labels:
            summary: Optional[Summary] = getattr(point.of(label), metric)
            if summary is None:
                row.extend(["n/a", "n/a"])
            else:
                row.extend([summary.mean, summary.ci95])
        rows.append(row)
    return format_table(
        headers, rows, title=title or f"{result.name}: {metric}"
    )


def render_sweep_csv(result: SweepResult, metric: str = "welfare") -> str:
    """CSV with the same content as :func:`render_sweep_table`."""
    _check_metric(metric)
    labels = [spec.display_label for spec in result.config.mechanisms]
    buffer = io.StringIO()
    header_cells = [result.param]
    for label in labels:
        header_cells.extend([f"{label}_{metric}_mean", f"{label}_{metric}_ci95"])
    buffer.write(",".join(header_cells) + "\n")
    for point in result.points:
        cells = [str(point.value)]
        for label in labels:
            summary: Optional[Summary] = getattr(point.of(label), metric)
            if summary is None:
                cells.extend(["", ""])
            else:
                cells.extend([f"{summary.mean:.6f}", f"{summary.ci95:.6f}"])
        buffer.write(",".join(cells) + "\n")
    return buffer.getvalue()


def render_sweep_chart(
    result: SweepResult,
    metric: str = "welfare",
    width: int = 60,
    height: int = 16,
) -> str:
    """An ASCII line chart of all mechanisms' mean series."""
    _check_metric(metric)
    series = {}
    for spec in result.config.mechanisms:
        pairs = result.series(spec.display_label, metric)
        if pairs:
            series[spec.display_label] = pairs
    if not series:
        raise ExperimentError(
            f"metric {metric!r} is undefined at every point of "
            f"{result.name!r}"
        )
    return ascii_chart(
        series,
        title=f"{result.name}: {metric} vs {result.param}",
        width=width,
        height=height,
    )
