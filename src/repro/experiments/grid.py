"""Two-parameter grid sweeps with ASCII heatmap rendering.

The paper's figures vary one workload parameter at a time; interactions
(e.g. does the offline/online gap at large ``m`` persist when supply is
dense?) need a 2-D sweep.  :func:`run_grid` measures every combination
of two workload parameters; :func:`render_grid_heatmap` draws the
result as a monospace heatmap.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ExperimentError
from repro.experiments.config import (
    ExperimentConfig,
    apply_workload_override,
)
from repro.experiments.runner import MechanismMetrics, run_point
from repro.metrics.summary import Summary

#: Shade ramp from low to high.
_SHADES = " .:-=+*#%@"


@dataclasses.dataclass(frozen=True)
class GridResult:
    """A completed 2-D sweep.

    Attributes
    ----------
    param_x / param_y:
        The two swept workload parameters (x = columns, y = rows).
    values_x / values_y:
        Their values, in axis order.
    cells:
        ``cells[iy][ix]`` holds each mechanism's metrics at
        ``(values_y[iy], values_x[ix])``.
    config:
        The experiment configuration used.
    """

    param_x: str
    param_y: str
    values_x: Tuple[Any, ...]
    values_y: Tuple[Any, ...]
    cells: Tuple[Tuple[Tuple[MechanismMetrics, ...], ...], ...]
    config: ExperimentConfig

    def metric_grid(
        self, label: str, metric: str = "welfare"
    ) -> List[List[Optional[float]]]:
        """Mean values of one mechanism/metric as a row-major grid."""
        grid: List[List[Optional[float]]] = []
        for row in self.cells:
            out_row: List[Optional[float]] = []
            for cell in row:
                found = None
                for metrics in cell:
                    if metrics.label == label:
                        found = metrics
                        break
                if found is None:
                    raise ExperimentError(
                        f"no mechanism labelled {label!r} in grid"
                    )
                summary: Optional[Summary] = getattr(found, metric)
                out_row.append(None if summary is None else summary.mean)
            grid.append(out_row)
        return grid


def run_grid(
    config: ExperimentConfig,
    param_x: str,
    values_x: Sequence[Any],
    param_y: str,
    values_y: Sequence[Any],
) -> GridResult:
    """Measure every ``(y, x)`` combination of two workload parameters."""
    if not values_x or not values_y:
        raise ExperimentError("grid axes must not be empty")
    if param_x == param_y:
        raise ExperimentError(
            f"grid parameters must differ, both are {param_x!r}"
        )
    rows = []
    for value_y in values_y:
        row = []
        for value_x in values_x:
            workload = apply_workload_override(
                config.workload, param_x, value_x
            )
            workload = apply_workload_override(workload, param_y, value_y)
            point = run_point(
                config,
                workload=workload,
                param=f"{param_y}/{param_x}",
                value=(value_y, value_x),
            )
            row.append(point.metrics)
        rows.append(tuple(row))
    return GridResult(
        param_x=param_x,
        param_y=param_y,
        values_x=tuple(values_x),
        values_y=tuple(values_y),
        cells=tuple(rows),
        config=config,
    )


def render_grid_heatmap(
    result: GridResult,
    label: str,
    metric: str = "welfare",
    cell_width: int = 9,
) -> str:
    """Render one mechanism/metric grid as numbers + shade heatmap."""
    grid = result.metric_grid(label, metric)
    defined = [v for row in grid for v in row if v is not None]
    if not defined:
        raise ExperimentError(
            f"metric {metric!r} undefined on the whole grid"
        )
    low, high = min(defined), max(defined)
    span = (high - low) or 1.0

    def shade(value: Optional[float]) -> str:
        if value is None:
            return "?"
        index = int((value - low) / span * (len(_SHADES) - 1))
        return _SHADES[index]

    lines = [
        f"{label} {metric}: rows = {result.param_y}, "
        f"cols = {result.param_x}   (range {low:.3g} .. {high:.3g})"
    ]
    header = " " * 10 + "".join(
        f"{value!s:>{cell_width}}" for value in result.values_x
    )
    lines.append(header)
    for value_y, row in zip(result.values_y, grid):
        cells = "".join(
            f"{('n/a' if v is None else format(v, '.3g')):>{cell_width}}"
            for v in row
        )
        shades = "".join(shade(v) for v in row)
        lines.append(f"{value_y!s:>10}{cells}   |{shades}|")
    return "\n".join(lines)
