"""Experiment configuration objects.

A :class:`MechanismSpec` names a registered mechanism plus constructor
keyword arguments (both JSON-friendly, so configs serialise); an
:class:`ExperimentConfig` bundles the base workload, the mechanisms under
comparison, and the repetition/seeding policy.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ExperimentError
from repro.mechanisms.base import Mechanism
from repro.mechanisms.registry import create_mechanism
from repro.simulation.workload import WorkloadConfig


@dataclasses.dataclass(frozen=True)
class MechanismSpec:
    """A mechanism by registry name plus constructor kwargs.

    ``label`` defaults to the registry name and is what reports print —
    useful when comparing two configurations of the same mechanism
    (e.g. the online mechanism with and without the reserve price).
    """

    name: str
    kwargs: Tuple[Tuple[str, Any], ...] = ()
    label: Optional[str] = None

    @classmethod
    def of(
        cls,
        name: str,
        label: Optional[str] = None,
        **kwargs: Any,
    ) -> "MechanismSpec":
        """Ergonomic constructor: ``MechanismSpec.of("fixed-price", price=20)``."""
        return cls(
            name=name, kwargs=tuple(sorted(kwargs.items())), label=label
        )

    @property
    def display_label(self) -> str:
        """The label reports should print."""
        return self.label or self.name

    def build(self) -> Mechanism:
        """Instantiate the mechanism from the registry."""
        return create_mechanism(self.name, **dict(self.kwargs))


#: The two mechanisms the paper's figures compare.
def paper_mechanisms() -> Tuple[MechanismSpec, ...]:
    """Offline (Section IV) and online (Section V) under their paper
    configurations."""
    return (
        MechanismSpec.of("offline-vcg", label="offline"),
        MechanismSpec.of("online-greedy", label="online"),
    )


@dataclasses.dataclass(frozen=True)
class ExperimentConfig:
    """A base workload, mechanisms to compare, and repetition policy.

    Attributes
    ----------
    workload:
        The base :class:`~repro.simulation.WorkloadConfig` (sweeps
        override one field per point).
    mechanisms:
        The mechanisms under comparison.
    repetitions:
        Seeded repetitions per sweep point (>= 1).
    base_seed:
        Master seed; repetition ``k`` of a point uses ``base_seed + k``.
    """

    workload: WorkloadConfig = dataclasses.field(
        default_factory=WorkloadConfig.paper_default
    )
    mechanisms: Tuple[MechanismSpec, ...] = dataclasses.field(
        default_factory=paper_mechanisms
    )
    repetitions: int = 10
    base_seed: int = 2014  # the paper's year; any constant works

    def __post_init__(self) -> None:
        if not self.mechanisms:
            raise ExperimentError("mechanisms must not be empty")
        if self.repetitions < 1:
            raise ExperimentError(
                f"repetitions must be >= 1, got {self.repetitions}"
            )
        labels = [spec.display_label for spec in self.mechanisms]
        if len(set(labels)) != len(labels):
            raise ExperimentError(
                f"mechanism labels must be unique, got {labels}"
            )

    def seeds(self) -> Tuple[int, ...]:
        """The repetition seeds."""
        return tuple(self.base_seed + k for k in range(self.repetitions))

    def replace(self, **changes: Any) -> "ExperimentConfig":
        """A copy with fields overridden."""
        return dataclasses.replace(self, **changes)

    def describe(self) -> Dict[str, Any]:
        """JSON-friendly description for report headers."""
        return {
            "workload": self.workload.to_dict(),
            "mechanisms": [
                {"name": s.name, "kwargs": dict(s.kwargs), "label": s.display_label}
                for s in self.mechanisms
            ],
            "repetitions": self.repetitions,
            "base_seed": self.base_seed,
        }


def apply_workload_override(
    workload: WorkloadConfig, param: str, value: Any
) -> WorkloadConfig:
    """Override one workload field, with a clear error for bad names."""
    valid: Mapping[str, Any] = workload.to_dict()
    if param not in valid:
        raise ExperimentError(
            f"unknown workload parameter {param!r}; valid: "
            f"{sorted(valid)}"
        )
    return workload.replace(**{param: value})
