"""Atomic, checksummed sweep checkpoints for killed-and-resumed runs.

Long sweeps should survive a killed process: each completed sweep point
is written as one schema-versioned JSON file whose payload is guarded by
a SHA-256 checksum, written atomically (temp file + ``os.replace``) so a
crash mid-write never leaves a truncated checkpoint behind.  On resume,
:meth:`CheckpointStore.load_point` reconstructs the exact
:class:`~repro.experiments.runner.SweepPoint` — floats round-trip
bit-exactly through JSON's shortest-repr encoding, so a resumed sweep
aggregates byte-identically to an uninterrupted one (asserted by the
tests).

A corrupt or alien checkpoint is treated as *missing* by default (the
point is recomputed) and **quarantined**: the offending file is renamed
to ``*.corrupt`` (and counted on the ``checkpoint.quarantined``
counter) so the sweep never wedges behind the same unreadable point
twice and the evidence survives for inspection.  ``strict=True`` raises
:class:`~repro.errors.CheckpointError` instead, leaving the file in
place.  Transient I/O failures on save/load retry under an optional
:class:`~repro.utils.retry.RetryPolicy`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import re
import tempfile
from typing import Any, Dict, Mapping, Optional

from repro import obs
from repro.errors import CheckpointError
from repro.experiments.runner import MechanismMetrics, SweepPoint
from repro.metrics.summary import Summary
from repro.utils.retry import RetryPolicy, call_with_retry

#: Bump when the checkpoint payload layout changes incompatibly.
SCHEMA_VERSION = 1


def canonical_json(payload: Mapping[str, Any]) -> str:
    """Canonical JSON encoding: sorted keys, no whitespace.

    The checksum convention every durable artifact in ``experiments``
    uses (sweep checkpoints here, shard checkpoint streams in
    :mod:`repro.experiments.sharding`): checksums are computed over this
    canonical form, so formatting can never affect integrity checks.
    """
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def checksum_text(text: str) -> str:
    """SHA-256 hex digest of ``text`` (the checkpoint integrity hash)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


# Historical private aliases (internal call sites predate the public names).
_canonical = canonical_json
_checksum = checksum_text


def summary_to_dict(summary: Summary) -> Dict[str, Any]:
    """JSON-friendly encoding of a :class:`~repro.metrics.Summary`."""
    return dataclasses.asdict(summary)


def summary_from_dict(payload: Mapping[str, Any]) -> Summary:
    """Inverse of :func:`summary_to_dict`."""
    try:
        return Summary(**dict(payload))
    except TypeError as exc:
        raise CheckpointError(f"malformed summary payload: {exc}") from exc


def point_to_dict(point: SweepPoint) -> Dict[str, Any]:
    """JSON-friendly encoding of a completed sweep point."""
    return {
        "param": point.param,
        "value": point.value,
        "status": point.status,
        "completed_repetitions": point.completed_repetitions,
        "failed_repetitions": point.failed_repetitions,
        "metrics": [
            {
                "label": metric.label,
                "welfare": summary_to_dict(metric.welfare),
                "overpayment_ratio": (
                    None
                    if metric.overpayment_ratio is None
                    else summary_to_dict(metric.overpayment_ratio)
                ),
                "total_payment": summary_to_dict(metric.total_payment),
                "tasks_served": summary_to_dict(metric.tasks_served),
            }
            for metric in point.metrics
        ],
    }


def point_from_dict(payload: Mapping[str, Any]) -> SweepPoint:
    """Inverse of :func:`point_to_dict` (raises on malformed payloads)."""
    try:
        metrics = tuple(
            MechanismMetrics(
                label=entry["label"],
                welfare=summary_from_dict(entry["welfare"]),
                overpayment_ratio=(
                    None
                    if entry["overpayment_ratio"] is None
                    else summary_from_dict(entry["overpayment_ratio"])
                ),
                total_payment=summary_from_dict(entry["total_payment"]),
                tasks_served=summary_from_dict(entry["tasks_served"]),
            )
            for entry in payload["metrics"]
        )
        return SweepPoint(
            param=payload["param"],
            value=payload["value"],
            metrics=metrics,
            status=payload["status"],
            completed_repetitions=payload["completed_repetitions"],
            failed_repetitions=payload["failed_repetitions"],
        )
    except (KeyError, TypeError) as exc:
        raise CheckpointError(
            f"malformed sweep-point payload: {exc}"
        ) from exc


def _slug(value: Any) -> str:
    """A filesystem-safe rendering of a swept value."""
    text = repr(value)
    return re.sub(r"[^A-Za-z0-9_.+-]", "_", text)


class CheckpointStore:
    """A directory of per-sweep-point checkpoint files.

    Parameters
    ----------
    directory:
        Root directory; one subdirectory per sweep name is created on
        first save.
    io_retry:
        Optional :class:`~repro.utils.retry.RetryPolicy` applied to
        file reads/writes against transient ``OSError`` (default: no
        retries, the historical behaviour).
    """

    def __init__(
        self,
        directory: os.PathLike,
        io_retry: Optional[RetryPolicy] = None,
    ) -> None:
        self._root = pathlib.Path(directory)
        self._io_retry = io_retry or RetryPolicy()

    @property
    def root(self) -> pathlib.Path:
        """The store's root directory."""
        return self._root

    def path_for(
        self, sweep_name: str, param: str, value: Any
    ) -> pathlib.Path:
        """Where the checkpoint of one sweep point lives."""
        return (
            self._root
            / sweep_name
            / f"{_slug(param)}={_slug(value)}.json"
        )

    def save_point(self, sweep_name: str, point: SweepPoint) -> pathlib.Path:
        """Atomically persist one completed sweep point.

        The payload is written to a temporary file in the target
        directory and moved into place with ``os.replace``, so a
        concurrent reader (or a crash) never observes a partial file.
        """
        payload = point_to_dict(point)
        body = _canonical(payload)
        document = _canonical(
            {
                "schema": SCHEMA_VERSION,
                "checksum": _checksum(body),
                "payload": payload,
            }
        )
        path = self.path_for(sweep_name, point.param, point.value)
        path.parent.mkdir(parents=True, exist_ok=True)

        def _attempt() -> None:
            handle, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=path.name, suffix=".tmp"
            )
            try:
                with os.fdopen(handle, "w") as stream:
                    stream.write(document)
                    stream.flush()
                    os.fsync(stream.fileno())
                os.replace(tmp_name, path)
            except BaseException:
                if os.path.exists(tmp_name):
                    os.unlink(tmp_name)
                raise

        call_with_retry(_attempt, self._io_retry, retry_on=(OSError,))
        return path

    def load_point(
        self,
        sweep_name: str,
        param: str,
        value: Any,
        strict: bool = False,
    ) -> Optional[SweepPoint]:
        """The stored sweep point, or ``None`` when absent.

        A missing file returns ``None``.  A file that is unreadable,
        carries an unknown schema version, fails its checksum, or
        records a different ``(param, value)`` than requested also
        returns ``None`` (the caller recomputes the point) — after
        being **quarantined**: renamed to ``*.corrupt`` and counted on
        ``checkpoint.quarantined``, so the recomputed point can be
        saved cleanly and the corrupt evidence survives.  With
        ``strict=True`` the error raises instead and the file stays
        put.
        """
        path = self.path_for(sweep_name, param, value)
        if not path.exists():
            return None
        text = call_with_retry(
            path.read_text, self._io_retry, retry_on=(OSError,)
        )
        try:
            return self._decode(text, param, value)
        except CheckpointError:
            if strict:
                raise
            self._quarantine(path)
            return None

    def _quarantine(self, path: pathlib.Path) -> None:
        """Move a corrupt checkpoint aside so it never wedges a resume."""
        target = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - rename raced or read-only
            return
        obs.counter("checkpoint.quarantined")

    def _decode(self, text: str, param: str, value: Any) -> SweepPoint:
        try:
            document = json.loads(text)
        except json.JSONDecodeError as exc:
            raise CheckpointError(
                f"checkpoint is not valid JSON: {exc}"
            ) from exc
        if not isinstance(document, dict):
            raise CheckpointError("checkpoint is not a JSON object")
        schema = document.get("schema")
        if schema != SCHEMA_VERSION:
            raise CheckpointError(
                f"unknown checkpoint schema {schema!r}; this build "
                f"writes schema {SCHEMA_VERSION}"
            )
        payload = document.get("payload")
        if not isinstance(payload, dict):
            raise CheckpointError("checkpoint payload missing")
        expected = document.get("checksum")
        actual = _checksum(_canonical(payload))
        if expected != actual:
            raise CheckpointError(
                f"checkpoint checksum mismatch: recorded {expected!r}, "
                f"recomputed {actual!r} (file corrupt?)"
            )
        point = point_from_dict(payload)
        if point.param != param or point.value != value:
            raise CheckpointError(
                f"checkpoint records point ({point.param!r}, "
                f"{point.value!r}) but ({param!r}, {value!r}) was "
                f"requested"
            )
        return point

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CheckpointStore({str(self._root)!r})"
