"""Experiment harness: sweeps, the paper's figures, and reporting.

The six evaluation figures of Section VI are declarative
:class:`~repro.experiments.sweeps.SweepSpec` objects (see
:mod:`repro.experiments.figures`); :func:`~repro.experiments.runner.run_sweep`
executes them over seeded repetitions and the report module renders the
text tables and ASCII charts that stand in for the paper's plots.
"""

from repro.experiments.checkpoint import (
    CheckpointStore,
    point_from_dict,
    point_to_dict,
)
from repro.experiments.config import ExperimentConfig, MechanismSpec
from repro.experiments.figures import (
    FIGURES,
    figure_spec,
    list_figures,
)
from repro.experiments.grid import (
    GridResult,
    render_grid_heatmap,
    run_grid,
)
from repro.experiments.report import render_sweep_csv, render_sweep_table
from repro.experiments.runner import (
    MechanismMetrics,
    SweepPoint,
    SweepResult,
    run_point,
    run_sweep,
)
from repro.experiments.sharding import (
    CityConfig,
    ShardCheckpointWriter,
    ShardedCampaignResult,
    ShardPlan,
    load_shard_checkpoint,
    plan_shards,
    run_sharded_campaign,
    shard_checkpoint_path,
)
from repro.experiments.sweeps import SweepSpec

__all__ = [
    "ExperimentConfig",
    "MechanismSpec",
    "SweepSpec",
    "SweepPoint",
    "SweepResult",
    "MechanismMetrics",
    "run_point",
    "run_sweep",
    "FIGURES",
    "figure_spec",
    "list_figures",
    "render_sweep_table",
    "render_sweep_csv",
    "run_grid",
    "GridResult",
    "render_grid_heatmap",
    "CheckpointStore",
    "point_to_dict",
    "point_from_dict",
    "CityConfig",
    "ShardPlan",
    "ShardedCampaignResult",
    "ShardCheckpointWriter",
    "plan_shards",
    "run_sharded_campaign",
    "load_shard_checkpoint",
    "shard_checkpoint_path",
]
