"""Write-ahead journaling wrapper around the crowdsourcing platform.

:class:`JournaledPlatform` exposes the same mutating surface as
:class:`~repro.auction.CrowdsourcingPlatform` and makes the journal the
source of truth: every mutation is journaled as a **command** record
*before* the platform state changes, and every
:class:`~repro.auction.events.AuctionEvent` the platform emits while
applying it is journaled as a derived **event** record right after.
A crash at any byte therefore loses at most work that can be redone —
replaying the journaled commands through a fresh platform reconstructs
the exact state (:mod:`repro.durability.replay`).

Ordering discipline per mutation:

1. ``validate_*`` on the inner platform — a rejected command raises
   :class:`~repro.errors.MechanismError` and leaves the journal
   untouched (no partial record);
2. append the command record (the write-ahead write);
3. apply the mutation on the inner platform;
4. append the platform's newly emitted events as derived records.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.auction.events import (
    AuctionEvent,
    BidSubmitted,
    FailureReported,
    PhoneDropped,
    RoundFinalized,
    RoundStarted,
    SlotAdvanced,
    TasksAnnounced,
)
from repro.auction.platform import CrowdsourcingPlatform
from repro.durability.journal import KIND_COMMAND, KIND_EVENT, Journal
from repro.errors import JournalError
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.task import SensingTask


class JournaledPlatform:
    """A :class:`CrowdsourcingPlatform` whose history survives crashes.

    Parameters
    ----------
    journal:
        The open :class:`~repro.durability.Journal` to write through.
        A fresh (empty) journal receives a
        :class:`~repro.auction.events.RoundStarted` header command
        carrying the platform configuration; a non-empty journal must
        be resumed via :func:`~repro.durability.replay.resume_round`
        (constructing a fresh wrapper over it raises).
    num_slots / reserve_price / payment_rule / max_reassignments:
        Forwarded to the inner platform.

    Read-only accessors (``current_slot``, ``events``, ``pool_size``,
    ...) delegate to the inner platform.
    """

    def __init__(
        self,
        journal: Journal,
        num_slots: int,
        reserve_price: bool = False,
        payment_rule: str = "paper",
        max_reassignments: int = 3,
    ) -> None:
        if journal.records:
            raise JournalError(
                f"journal {str(journal.directory)!r} already holds "
                f"{len(journal.records)} record(s); resume it with "
                f"repro.durability.resume_round instead of starting a "
                f"fresh round over it"
            )
        inner = CrowdsourcingPlatform(
            num_slots=num_slots,
            reserve_price=reserve_price,
            payment_rule=payment_rule,
            max_reassignments=max_reassignments,
        )
        self._journal = journal
        self._inner = inner
        journal.append(
            KIND_COMMAND,
            RoundStarted(
                slot=0,
                num_slots=num_slots,
                reserve_price=bool(reserve_price),
                payment_rule=payment_rule,
                max_reassignments=max_reassignments,
            ),
        )

    @classmethod
    def from_recovery(
        cls, journal: Journal, inner: CrowdsourcingPlatform
    ) -> "JournaledPlatform":
        """Wrap an already-replayed platform over its own journal.

        Used by :func:`~repro.durability.replay.resume_round`: the
        journal already holds the history that produced ``inner``, so
        no header command is appended.
        """
        self = cls.__new__(cls)
        self._journal = journal
        self._inner = inner
        return self

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    @property
    def journal(self) -> Journal:
        """The journal this platform writes through."""
        return self._journal

    @property
    def inner(self) -> CrowdsourcingPlatform:
        """The wrapped platform."""
        return self._inner

    def __getattr__(self, name: str) -> Any:
        # Read-only delegation: properties and validators of the inner
        # platform (mutators are all overridden above in the class body).
        inner = self.__dict__.get("_inner")
        if inner is None:
            raise AttributeError(name)
        return getattr(inner, name)

    def _run(self, command: AuctionEvent, apply: Any) -> Any:
        """Journal ``command``, apply it, journal the derived events."""
        self._journal.append(KIND_COMMAND, command)
        before = len(self._inner.events)
        result = apply()
        for event in self._inner.events[before:]:
            self._journal.append(KIND_EVENT, event)
        return result

    # ------------------------------------------------------------------
    # Mutating surface (mirrors CrowdsourcingPlatform)
    # ------------------------------------------------------------------
    def submit_bid(self, bid: Bid) -> None:
        """Journal and submit a bid (see the platform's docstring)."""
        self._inner.validate_bid(bid)
        self._run(
            BidSubmitted(
                slot=self._inner.current_slot,
                phone_id=bid.phone_id,
                arrival=bid.arrival,
                departure=bid.departure,
                cost=bid.cost,
            ),
            lambda: self._inner.submit_bid(bid),
        )

    def submit_tasks(self, count: int, value: float) -> List[SensingTask]:
        """Journal and announce ``count`` tasks of ``value``."""
        self._inner.validate_task_submission(count, value)
        if not count:
            # The platform emits nothing for an empty announcement, so
            # there is nothing to redo: skip the journal entirely.
            return self._inner.submit_tasks(count, value)
        return self._run(
            TasksAnnounced(
                slot=self._inner.current_slot,
                count=count,
                value=float(value),
            ),
            lambda: self._inner.submit_tasks(count, value),
        )

    def report_dropout(self, phone_id: int) -> None:
        """Journal and report an early departure."""
        self._inner.validate_dropout(phone_id)
        self._run(
            PhoneDropped(
                slot=self._inner.current_slot, phone_id=phone_id
            ),
            lambda: self._inner.report_dropout(phone_id),
        )

    def report_task_failure(self, phone_id: int) -> None:
        """Journal and mark a phone as a non-deliverer."""
        self._inner.validate_task_failure(phone_id)
        self._run(
            FailureReported(
                slot=self._inner.current_slot, phone_id=phone_id
            ),
            lambda: self._inner.report_task_failure(phone_id),
        )

    def close_slot(self) -> None:
        """Journal and close the current slot."""
        self._inner.validate_close()
        self._run(
            SlotAdvanced(slot=self._inner.current_slot),
            lambda: self._inner.close_slot(),
        )

    def advance_to(self, slot: int) -> None:
        """Close empty slots until ``slot`` is open, journaling each."""
        self._inner.validate_advance(slot)
        while self._inner.current_slot < slot:
            self.close_slot()

    def finalize(self) -> AuctionOutcome:
        """Journal the seal and finalize the round.

        The journal is fsynced afterwards regardless of policy: the
        outcome is about to be acted on, so its history must be on
        disk.
        """
        self._inner.validate_finalize()
        outcome: Optional[AuctionOutcome] = self._run(
            RoundFinalized(slot=self._inner.current_slot),
            lambda: self._inner.finalize(),
        )
        self._journal.sync()
        assert outcome is not None
        return outcome
