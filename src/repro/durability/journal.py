"""The append-only write-ahead JSONL journal.

One record per line, canonical JSON, SHA-256 hash-chained::

    {"event": {...}, "hash": h_n, "kind": "command"|"event",
     "prev": h_{n-1}, "seq": n}

where ``h_n = sha256(canonical({event, kind, prev, seq}))`` and the
genesis ``prev`` is 64 zeros.  Sequence numbers are 1-based and strictly
monotonic across segment files (``segment-00000001.jsonl``, rotated by
byte size), so any truncation, reordering, duplication, or bit flip
breaks either a record's own hash or the chain to its neighbour.

Recovery (:func:`scan_journal`, run on every open) distinguishes the two
failure shapes a crash-consistent log must tell apart:

* a **torn tail** — the final record of the final segment fails to
  decode or chain.  That is the expected signature of a crash mid-write
  (including a duplicated or checksum-flipped final record) and is
  repaired by truncating the segment back to the last good byte;
* **mid-log corruption** — any earlier record fails.  That can never be
  produced by a crash of this writer (records are appended strictly in
  order and never rewritten), so recovery refuses with a typed
  :class:`~repro.errors.JournalError` naming the bad sequence number.

Durability of individual appends is governed by the fsync policy:
``"always"`` fsyncs every record, ``"batch"`` every ``batch_size``
records (and on close), ``"off"`` leaves flushing to the OS.  Writes go
through an optional :class:`~repro.utils.retry.RetryPolicy` for
transient ``OSError``.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.auction.events import AuctionEvent, event_from_dict
from repro.errors import EventDecodeError, JournalError
from repro.obs.clock import perf_seconds
from repro.utils.retry import RetryPolicy, call_with_retry

#: ``prev`` hash of the first record.
GENESIS_HASH = "0" * 64

#: Record kinds: a *command* is journaled before the platform mutation
#: it describes (the redo log proper); an *event* is a derived
#: observation the platform emitted while applying the last command
#: (journaled after the fact, verified during replay).
KIND_COMMAND = "command"
KIND_EVENT = "event"
_KINDS = (KIND_COMMAND, KIND_EVENT)

#: Supported fsync policies.
FSYNC_ALWAYS = "always"
FSYNC_BATCH = "batch"
FSYNC_OFF = "off"
_FSYNC_POLICIES = (FSYNC_ALWAYS, FSYNC_BATCH, FSYNC_OFF)

_SEGMENT_PREFIX = "segment-"
_SEGMENT_SUFFIX = ".jsonl"


def _canonical(payload: Mapping[str, Any]) -> str:
    """Canonical JSON: sorted keys, no whitespace (checkpoint idiom)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def record_hash(
    seq: int, prev: str, kind: str, event_payload: Mapping[str, Any]
) -> str:
    """The SHA-256 chaining hash of one record body."""
    body = _canonical(
        {"event": dict(event_payload), "kind": kind, "prev": prev, "seq": seq}
    )
    return hashlib.sha256(body.encode("utf-8")).hexdigest()


@dataclasses.dataclass(frozen=True)
class JournalRecord:
    """One decoded, verified journal record."""

    seq: int
    prev: str
    kind: str
    event: AuctionEvent
    hash: str

    def to_line(self) -> str:
        """The record's canonical JSONL line (without the newline)."""
        return _canonical(
            {
                "event": self.event.to_dict(),
                "hash": self.hash,
                "kind": self.kind,
                "prev": self.prev,
                "seq": self.seq,
            }
        )


def make_record(
    seq: int, prev: str, kind: str, event: AuctionEvent
) -> JournalRecord:
    """Build (and hash) a record from its parts."""
    if kind not in _KINDS:
        raise JournalError(f"unknown record kind {kind!r}", sequence=seq)
    digest = record_hash(seq, prev, kind, event.to_dict())
    return JournalRecord(
        seq=seq, prev=prev, kind=kind, event=event, hash=digest
    )


def decode_line(line: str) -> JournalRecord:
    """Decode one JSONL line into a verified record.

    Raises :class:`~repro.errors.JournalError` when the line is not
    valid JSON, misses fields, fails its own hash, or carries an
    undecodable event payload.  Chain position (seq/prev against the
    neighbour) is the scanner's job, not this function's.
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise JournalError(f"record is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise JournalError("record is not a JSON object")
    try:
        seq = payload["seq"]
        prev = payload["prev"]
        kind = payload["kind"]
        event_payload = payload["event"]
        digest = payload["hash"]
    except KeyError as exc:
        raise JournalError(f"record misses field {exc}") from exc
    if not isinstance(seq, int) or isinstance(seq, bool):
        raise JournalError(f"record seq must be an int, got {seq!r}")
    if kind not in _KINDS:
        raise JournalError(
            f"unknown record kind {kind!r}", sequence=seq
        )
    expected = record_hash(seq, prev, kind, event_payload)
    if digest != expected:
        raise JournalError(
            f"record {seq} checksum mismatch: recorded {digest!r}, "
            f"recomputed {expected!r}",
            sequence=seq,
        )
    try:
        event = event_from_dict(event_payload)
    except EventDecodeError as exc:
        raise JournalError(
            f"record {seq} carries an undecodable event: {exc}",
            sequence=seq,
        ) from exc
    return JournalRecord(
        seq=seq, prev=prev, kind=kind, event=event, hash=digest
    )


@dataclasses.dataclass(frozen=True)
class ScanResult:
    """Outcome of a recovery scan over a journal directory.

    Attributes
    ----------
    records:
        Every verified record, in sequence order.
    segments:
        The segment files, in name (= write) order.
    torn_segment / torn_offset / torn_reason:
        When the final record was invalid: the file holding it, the
        byte offset its bytes start at, and why it was rejected.
    truncated_bytes:
        How many trailing bytes a repair would (or did) discard.
    """

    records: Tuple[JournalRecord, ...]
    segments: Tuple[pathlib.Path, ...]
    torn_segment: Optional[pathlib.Path] = None
    torn_offset: Optional[int] = None
    torn_reason: Optional[str] = None
    truncated_bytes: int = 0

    @property
    def torn(self) -> bool:
        """Whether the scan found (and marked) a torn tail."""
        return self.torn_segment is not None

    @property
    def last_seq(self) -> int:
        """Sequence number of the last good record (0 when empty)."""
        return self.records[-1].seq if self.records else 0

    @property
    def last_hash(self) -> str:
        """Chain hash of the last good record (genesis when empty)."""
        return self.records[-1].hash if self.records else GENESIS_HASH


def segment_paths(directory: pathlib.Path) -> List[pathlib.Path]:
    """The journal's segment files, in rotation order."""
    if not directory.exists():
        return []
    return sorted(
        path
        for path in directory.iterdir()
        if path.name.startswith(_SEGMENT_PREFIX)
        and path.name.endswith(_SEGMENT_SUFFIX)
    )


def _split_lines(data: bytes) -> List[Tuple[int, bytes]]:
    """``(byte_offset, line_without_newline)`` for every non-empty line.

    A final chunk without a trailing newline is returned too — whether
    it is a torn write or a complete record is decided by decoding it.
    """
    lines: List[Tuple[int, bytes]] = []
    offset = 0
    for chunk in data.split(b"\n"):
        if chunk:
            lines.append((offset, chunk))
        offset += len(chunk) + 1
    return lines


def scan_journal(directory: os.PathLike) -> ScanResult:
    """Verify a journal directory record by record.

    Applies the torn-tail rule: only the *final* record of the *final*
    segment may be invalid (it is reported, not raised); any earlier
    invalid record raises :class:`~repro.errors.JournalError` naming
    the bad sequence number.  The directory is not modified.
    """
    root = pathlib.Path(directory)
    segments = segment_paths(root)
    records: List[JournalRecord] = []
    expected_seq = 1
    prev_hash = GENESIS_HASH
    with obs.span("journal.scan", directory=str(root)) as tel:
        for segment_index, segment in enumerate(segments):
            data = segment.read_bytes()
            lines = _split_lines(data)
            for line_index, (offset, raw) in enumerate(lines):
                is_final_line = (
                    segment_index == len(segments) - 1
                    and line_index == len(lines) - 1
                )
                try:
                    record = decode_line(raw.decode("utf-8", "replace"))
                    if record.seq != expected_seq:
                        raise JournalError(
                            f"record out of sequence: expected "
                            f"{expected_seq}, found {record.seq}",
                            sequence=expected_seq,
                        )
                    if record.prev != prev_hash:
                        raise JournalError(
                            f"record {record.seq} breaks the hash chain: "
                            f"prev {record.prev!r} does not match "
                            f"{prev_hash!r}",
                            sequence=record.seq,
                        )
                except JournalError as exc:
                    if is_final_line:
                        # The signature of a crash mid-write: repairable.
                        return ScanResult(
                            records=tuple(records),
                            segments=tuple(segments),
                            torn_segment=segment,
                            torn_offset=offset,
                            torn_reason=str(exc),
                            truncated_bytes=len(data) - offset,
                        )
                    raise JournalError(
                        f"mid-log corruption at sequence "
                        f"{exc.sequence if exc.sequence is not None else expected_seq}"
                        f" in {segment.name}: {exc}",
                        sequence=(
                            exc.sequence
                            if exc.sequence is not None
                            else expected_seq
                        ),
                    ) from exc
                if is_final_line and not data.endswith(b"\n"):
                    # The record decodes but its newline never landed:
                    # a torn write that lost exactly the terminator.
                    # Appending after it would corrupt the line, so the
                    # whole record is redone.
                    return ScanResult(
                        records=tuple(records),
                        segments=tuple(segments),
                        torn_segment=segment,
                        torn_offset=offset,
                        torn_reason=(
                            f"record {record.seq} is missing its "
                            f"trailing newline (torn write)"
                        ),
                        truncated_bytes=len(data) - offset,
                    )
                records.append(record)
                expected_seq += 1
                prev_hash = record.hash
        tel.set_attribute("records", len(records))
    return ScanResult(records=tuple(records), segments=tuple(segments))


class Journal:
    """An open write-ahead journal (recovered on open, append-only after).

    Parameters
    ----------
    directory:
        The journal directory (created if missing); one journal per
        round.
    fsync:
        ``"always"`` / ``"batch"`` / ``"off"`` — see the module
        docstring.
    batch_size:
        Records per fsync under the ``"batch"`` policy.
    segment_bytes:
        Rotation threshold: a new segment file is started once the
        current one reaches this many bytes.
    io_retry:
        Optional :class:`~repro.utils.retry.RetryPolicy` applied to
        every write/fsync against transient ``OSError``.
    crash_hook:
        Fault-injection point (see
        :class:`~repro.faults.crash.CrashController`): an object with
        ``mutate(seq, data) -> bytes`` called just before the bytes
        hit the file, and ``after_append(seq)`` called just after —
        which may raise to simulate the process dying.  The journal
        flushes before ``after_append`` so the "crashed" bytes are on
        disk for recovery, exactly like a real kill between ``write``
        and return.
    repair:
        Truncate a torn tail found on open (default).  With
        ``repair=False`` a torn journal raises instead — use
        :func:`scan_journal` for read-only inspection.
    """

    def __init__(
        self,
        directory: os.PathLike,
        fsync: str = FSYNC_BATCH,
        batch_size: int = 8,
        segment_bytes: int = 1 << 20,
        io_retry: Optional[RetryPolicy] = None,
        crash_hook: Optional[Any] = None,
        repair: bool = True,
    ) -> None:
        if fsync not in _FSYNC_POLICIES:
            raise JournalError(
                f"unknown fsync policy {fsync!r}; expected one of "
                f"{_FSYNC_POLICIES}"
            )
        if batch_size < 1:
            raise JournalError(
                f"batch_size must be >= 1, got {batch_size}"
            )
        if segment_bytes < 1:
            raise JournalError(
                f"segment_bytes must be >= 1, got {segment_bytes}"
            )
        self._directory = pathlib.Path(directory)
        self._fsync = fsync
        self._batch_size = batch_size
        self._segment_bytes = segment_bytes
        self._io_retry = io_retry or RetryPolicy()
        self._crash_hook = crash_hook
        self._directory.mkdir(parents=True, exist_ok=True)

        with obs.span("journal.open", directory=str(self._directory)) as tel:
            scan = scan_journal(self._directory)
            if scan.torn:
                if not repair:
                    raise JournalError(
                        f"journal has a torn tail in "
                        f"{scan.torn_segment} ({scan.torn_reason}); "
                        f"open with repair=True to truncate it"
                    )
                self._truncate_tail(scan)
            self._records: List[JournalRecord] = list(scan.records)
            self._next_seq = scan.last_seq + 1
            self._prev_hash = scan.last_hash
            obs.counter("journal.recovered_records", len(scan.records))
            tel.set_attribute("recovered_records", len(scan.records))
            tel.set_attribute("truncated_bytes", scan.truncated_bytes)

        segments = segment_paths(self._directory)
        if segments:
            self._segment_path = segments[-1]
            self._segment_size = self._segment_path.stat().st_size
            self._segment_index = int(
                self._segment_path.name[
                    len(_SEGMENT_PREFIX) : -len(_SEGMENT_SUFFIX)
                ]
            )
        else:
            self._segment_index = 1
            self._segment_path = self._segment_file(1)
            self._segment_size = 0
        self._handle = open(self._segment_path, "ab")
        self._unsynced = 0
        self._dead = False
        self._closed = False

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def directory(self) -> pathlib.Path:
        """The journal directory."""
        return self._directory

    @property
    def records(self) -> Tuple[JournalRecord, ...]:
        """Every record currently in the journal, in order."""
        return tuple(self._records)

    @property
    def last_seq(self) -> int:
        """Sequence number of the last record (0 when empty)."""
        return self._next_seq - 1

    def _segment_file(self, index: int) -> pathlib.Path:
        return self._directory / (
            f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"
        )

    def _truncate_tail(self, scan: ScanResult) -> None:
        """Repair a torn tail: cut the segment back to the good bytes."""
        assert scan.torn_segment is not None
        assert scan.torn_offset is not None
        with open(scan.torn_segment, "r+b") as handle:
            handle.truncate(scan.torn_offset)
        obs.counter("journal.truncated_bytes", scan.truncated_bytes)
        obs.counter("journal.torn_tails")

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, kind: str, event: AuctionEvent) -> JournalRecord:
        """Append one record; returns it once durable per the policy."""
        if self._closed:
            raise JournalError("journal is closed")
        if self._dead:
            raise JournalError(
                "journal observed a simulated crash; no further appends"
            )
        record = make_record(self._next_seq, self._prev_hash, kind, event)
        data = (record.to_line() + "\n").encode("utf-8")
        if self._segment_size + len(data) > self._segment_bytes and (
            self._segment_size > 0
        ):
            self._rotate()
        crashing = False
        if self._crash_hook is not None:
            mutated = self._crash_hook.mutate(record.seq, data)
            crashing = mutated is not data and mutated != data
            data = mutated
        call_with_retry(
            lambda: self._write(data), self._io_retry, retry_on=(OSError,)
        )
        self._segment_size += len(data)
        self._unsynced += 1
        if self._fsync == FSYNC_ALWAYS or (
            self._fsync == FSYNC_BATCH
            and self._unsynced >= self._batch_size
        ):
            self.sync()
        obs.counter("journal.appends")
        if self._crash_hook is not None:
            # Flush so the (possibly mutated) tail is visible to the
            # recovery that follows the simulated death.
            self._handle.flush()
            try:
                self._crash_hook.after_append(record.seq)
            except BaseException:
                self._dead = True
                raise
        if crashing:  # pragma: no cover - hook should have raised
            self._dead = True
            raise JournalError(
                "crash hook mutated the record but did not raise"
            )
        self._records.append(record)
        self._next_seq += 1
        self._prev_hash = record.hash
        return record

    def _write(self, data: bytes) -> None:
        self._handle.write(data)
        self._handle.flush()

    def _rotate(self) -> None:
        """Seal the current segment and start the next one."""
        self.sync()
        self._handle.close()
        self._segment_index += 1
        self._segment_path = self._segment_file(self._segment_index)
        self._segment_size = 0
        self._handle = open(self._segment_path, "ab")
        obs.counter("journal.rotations")

    def sync(self) -> None:
        """Flush and fsync the current segment (a no-op when ``off``)."""
        self._handle.flush()
        if self._fsync != FSYNC_OFF:
            fsync_start = perf_seconds()
            call_with_retry(
                lambda: os.fsync(self._handle.fileno()),
                self._io_retry,
                retry_on=(OSError,),
            )
            obs.observe(
                "journal.fsync.seconds", perf_seconds() - fsync_start
            )
        self._unsynced = 0

    def close(self) -> None:
        """Flush, fsync, and close the journal (idempotent)."""
        if self._closed:
            return
        try:
            if not self._handle.closed:
                self.sync()
        finally:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Journal({str(self._directory)!r}, records={len(self._records)})"
        )
