"""Crash-consistent durability: write-ahead journal, replay, resume.

The ROADMAP's "auction-as-a-service" item needs a platform that can
lose power between a bid arriving and a payment settling.  This package
supplies the three layers:

* :mod:`repro.durability.journal` — the append-only, hash-chained JSONL
  write-ahead journal with fsync policies, segment rotation, and a
  recovery scan that truncates torn tails but refuses mid-log
  corruption with a typed :class:`~repro.errors.JournalError`;
* :mod:`repro.durability.journaled` — :class:`JournaledPlatform`, the
  wrapper that journals every command *before* the corresponding
  :class:`~repro.auction.CrowdsourcingPlatform` mutation (and every
  emitted :class:`~repro.auction.events.AuctionEvent` after it);
* :mod:`repro.durability.replay` — deterministic replay of a journal to
  a byte-identical :class:`~repro.model.AuctionOutcome`, plus
  :func:`resume_round`, which finishes a crashed round from its journal
  and a regenerated command stream.

Crash faults that exercise all of this live in
:mod:`repro.faults.crash`; the replay-fidelity guarantee is enforced at
runtime by :func:`repro.analysis.sanitizer.check_replay_fidelity`.
"""

from repro.durability.journal import (
    FSYNC_ALWAYS,
    FSYNC_BATCH,
    FSYNC_OFF,
    GENESIS_HASH,
    KIND_COMMAND,
    KIND_EVENT,
    Journal,
    JournalRecord,
    ScanResult,
    decode_line,
    record_hash,
    scan_journal,
    segment_paths,
)
from repro.durability.journaled import JournaledPlatform
from repro.durability.replay import (
    ReplayResult,
    ResumeResult,
    apply_command,
    execute_commands,
    replay_journal,
    replay_records,
    resume_round,
    round_commands,
)

__all__ = [
    "Journal",
    "JournalRecord",
    "ScanResult",
    "scan_journal",
    "segment_paths",
    "decode_line",
    "record_hash",
    "GENESIS_HASH",
    "KIND_COMMAND",
    "KIND_EVENT",
    "FSYNC_ALWAYS",
    "FSYNC_BATCH",
    "FSYNC_OFF",
    "JournaledPlatform",
    "ReplayResult",
    "ResumeResult",
    "apply_command",
    "execute_commands",
    "replay_journal",
    "replay_records",
    "resume_round",
    "round_commands",
]
