"""Deterministic replay and resume of journaled rounds.

The journal is a *redo log of commands*: replaying the command records
through a fresh :class:`~repro.auction.CrowdsourcingPlatform` — in
order, nothing else — reconstructs the exact platform state, because
the platform is deterministic in its inputs.  The derived event records
interleaved with the commands are not replayed; they are **verified**:
while re-executing a command, the events the platform emits must match
the journaled derived records one for one.  Any disagreement raises
:class:`~repro.errors.ReplayDivergenceError` — the journal and the code
that wrote it are out of sync, and replay refuses to silently diverge.
A *missing* suffix of derived records after the journal's last command
is tolerated: that is exactly what a crash between steps 3 and 4 of the
write-ahead discipline leaves behind.

:func:`resume_round` closes the loop for the deterministic round
drivers (campaigns, fault runs): given the journal and the regenerated
command stream of the round, it replays what the journal holds,
verifies the journaled prefix matches the regenerated commands, and
re-executes the remainder through a fresh
:class:`~repro.durability.JournaledPlatform` — so a crashed round,
resumed, produces an :class:`~repro.model.AuctionOutcome` whose pickled
bytes equal the uncrashed run's (property-tested in
``tests/durability``).
"""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.auction.events import (
    AuctionEvent,
    BidSubmitted,
    FailureReported,
    PhoneDropped,
    RoundFinalized,
    RoundStarted,
    SlotAdvanced,
    TasksAnnounced,
)
from repro.auction.platform import CrowdsourcingPlatform
from repro.durability.journal import (
    KIND_COMMAND,
    Journal,
    JournalRecord,
    scan_journal,
)
from repro.durability.journaled import JournaledPlatform
from repro.errors import JournalError, ReplayDivergenceError
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome

if False:  # pragma: no cover - import cycle guard (types only)
    from repro.faults.plan import FaultPlan
    from repro.simulation.scenario import Scenario


def apply_command(platform: object, command: AuctionEvent) -> object:
    """Dispatch one journaled command to a platform(-like) object.

    ``platform`` is either a bare :class:`CrowdsourcingPlatform`
    (replay) or a :class:`~repro.durability.JournaledPlatform`
    (resume) — both expose the same mutating surface.  Returns whatever
    the platform method returns (the outcome, for ``RoundFinalized``).
    """
    if isinstance(command, BidSubmitted):
        return platform.submit_bid(  # type: ignore[attr-defined]
            Bid(
                phone_id=command.phone_id,
                arrival=command.arrival,
                departure=command.departure,
                cost=command.cost,
            )
        )
    if isinstance(command, TasksAnnounced):
        return platform.submit_tasks(  # type: ignore[attr-defined]
            command.count, value=command.value
        )
    if isinstance(command, PhoneDropped):
        return platform.report_dropout(  # type: ignore[attr-defined]
            command.phone_id
        )
    if isinstance(command, FailureReported):
        return platform.report_task_failure(  # type: ignore[attr-defined]
            command.phone_id
        )
    if isinstance(command, SlotAdvanced):
        return platform.close_slot()  # type: ignore[attr-defined]
    if isinstance(command, RoundFinalized):
        return platform.finalize()  # type: ignore[attr-defined]
    raise JournalError(
        f"{type(command).__name__} is not a journal command"
    )


@dataclasses.dataclass(frozen=True)
class ReplayResult:
    """Everything a journal replay reconstructs.

    Attributes
    ----------
    outcome:
        The finalized :class:`~repro.model.AuctionOutcome`, or ``None``
        when the journal ends before ``RoundFinalized`` (a mid-round
        crash).
    platform:
        The reconstructed platform (open when ``outcome is None``).
    commands_applied / events_verified:
        How many command records were re-executed and how many derived
        event records were checked against re-emitted events.
    records:
        The verified journal records the replay consumed.
    """

    outcome: Optional[AuctionOutcome]
    platform: CrowdsourcingPlatform
    commands_applied: int
    events_verified: int
    records: Tuple[JournalRecord, ...]

    @property
    def finalized(self) -> bool:
        """Whether the journal reached ``RoundFinalized``."""
        return self.outcome is not None


def replay_records(
    records: Sequence[JournalRecord],
) -> ReplayResult:
    """Re-execute a verified record sequence on a fresh platform."""
    if not records:
        raise JournalError("cannot replay an empty journal")
    header = records[0]
    if header.kind != KIND_COMMAND or not isinstance(
        header.event, RoundStarted
    ):
        raise JournalError(
            f"journal must start with a RoundStarted command, found "
            f"{type(header.event).__name__} ({header.kind})",
            sequence=header.seq,
        )
    started = header.event
    platform = CrowdsourcingPlatform(
        num_slots=started.num_slots,
        reserve_price=started.reserve_price,
        payment_rule=started.payment_rule,
        max_reassignments=started.max_reassignments,
    )
    outcome: Optional[AuctionOutcome] = None
    expected: List[AuctionEvent] = []
    commands_applied = 0
    events_verified = 0
    for record in records[1:]:
        if record.kind == KIND_COMMAND:
            # Derived records of the previous command may be cut short
            # by a crash; a *following* command proves the mutation
            # completed, so the remaining expectations are dropped.
            expected.clear()
            before = len(platform.events)
            result = apply_command(platform, record.event)
            if isinstance(record.event, RoundFinalized):
                outcome = result  # type: ignore[assignment]
            expected.extend(platform.events[before:])
            commands_applied += 1
        else:
            if not expected:
                raise ReplayDivergenceError(
                    f"record {record.seq} journals derived event "
                    f"{type(record.event).__name__} but replaying the "
                    f"commands emitted no further event there",
                    sequence=record.seq,
                )
            emitted = expected.pop(0)
            if emitted != record.event:
                raise ReplayDivergenceError(
                    f"record {record.seq} diverges from replay: journal "
                    f"holds {record.event!r}, re-execution emitted "
                    f"{emitted!r}",
                    sequence=record.seq,
                )
            events_verified += 1
    return ReplayResult(
        outcome=outcome,
        platform=platform,
        commands_applied=commands_applied,
        events_verified=events_verified,
        records=tuple(records),
    )


def replay_journal(directory: os.PathLike) -> ReplayResult:
    """Scan a journal directory (read-only) and replay it.

    A torn tail is skipped exactly as recovery would truncate it;
    mid-log corruption raises :class:`~repro.errors.JournalError`.
    """
    with obs.span("journal.replay", directory=str(directory)):
        scan = scan_journal(directory)
        return replay_records(scan.records)


# ----------------------------------------------------------------------
# Deterministic round driving (command streams)
# ----------------------------------------------------------------------
def round_commands(
    bids: Sequence[Bid],
    scenario: "Scenario",
    plan: Optional["FaultPlan"] = None,
    include_finalize: bool = True,
) -> List[AuctionEvent]:
    """The deterministic command stream of one round.

    Mirrors the feeding order of the fault-aware driver
    (:func:`repro.faults.recovery.run_with_faults`): per slot — bids in
    arrival order, each immediately followed by a failure report when
    the plan marks the phone as a non-deliverer; then the slot's
    dropouts; then the slot's tasks, announced one by one; then the
    slot close.  ``bids`` must already have submission faults applied
    (:func:`repro.faults.recovery.apply_bid_faults`).

    Because the stream is a pure function of ``(bids, scenario,
    plan)``, a crashed round can be resumed by regenerating it and
    continuing from the journal's high-water mark
    (:func:`resume_round`).
    """
    by_arrival: Dict[int, List[Bid]] = {}
    for bid in bids:
        by_arrival.setdefault(bid.arrival, []).append(bid)
    dropouts_at: Dict[int, List[int]] = {}
    if plan is not None:
        departures = {bid.phone_id: bid.departure for bid in bids}
        for record in plan:
            if record.phone_id not in departures:
                continue  # bid lost: the phone never joined
            if record.dropout_slot is None:
                continue
            if record.dropout_slot > departures[record.phone_id]:
                continue  # "drops" after its claimed departure: a no-op
            dropouts_at.setdefault(record.dropout_slot, []).append(
                record.phone_id
            )

    commands: List[AuctionEvent] = []
    for slot in range(1, scenario.num_slots + 1):
        for bid in by_arrival.get(slot, ()):
            commands.append(
                BidSubmitted(
                    slot=slot,
                    phone_id=bid.phone_id,
                    arrival=bid.arrival,
                    departure=bid.departure,
                    cost=bid.cost,
                )
            )
            if plan is not None:
                record = plan.for_phone(bid.phone_id)
                if record is not None and record.fails_task:
                    commands.append(
                        FailureReported(slot=slot, phone_id=bid.phone_id)
                    )
        for phone_id in dropouts_at.get(slot, ()):
            commands.append(PhoneDropped(slot=slot, phone_id=phone_id))
        for task in scenario.schedule.tasks_in_slot(slot):
            commands.append(
                TasksAnnounced(slot=slot, count=1, value=task.value)
            )
        commands.append(SlotAdvanced(slot=slot))
    if include_finalize:
        commands.append(RoundFinalized(slot=scenario.num_slots))
    return commands


def execute_commands(
    platform: JournaledPlatform,
    commands: Sequence[AuctionEvent],
) -> Optional[AuctionOutcome]:
    """Apply a command stream through a journaled platform, in order."""
    outcome: Optional[AuctionOutcome] = None
    for command in commands:
        result = apply_command(platform, command)
        if isinstance(command, RoundFinalized):
            outcome = result  # type: ignore[assignment]
    return outcome


@dataclasses.dataclass(frozen=True)
class ResumeResult:
    """Outcome of :func:`resume_round`.

    Attributes
    ----------
    outcome:
        The finalized outcome (always set: the command stream ends in
        ``RoundFinalized``).
    platform:
        The journaled platform that finished the round.
    replayed_commands:
        Commands recovered from the journal (``0`` for a fresh round).
    executed_commands:
        Commands executed live to finish the round.
    """

    outcome: AuctionOutcome
    platform: JournaledPlatform
    replayed_commands: int
    executed_commands: int


def resume_round(
    journal: Journal,
    commands: Sequence[AuctionEvent],
    num_slots: int,
    reserve_price: bool = False,
    payment_rule: str = "paper",
    max_reassignments: int = 3,
) -> ResumeResult:
    """Finish a (possibly crashed, possibly empty) journaled round.

    ``commands`` is the round's full deterministic command stream
    (:func:`round_commands`, ending in ``RoundFinalized``).  The
    journal's recovered records are replayed and prefix-checked against
    it — a mismatch raises
    :class:`~repro.errors.ReplayDivergenceError`, a differing platform
    configuration raises :class:`~repro.errors.JournalError` — then the
    remaining commands run through the write-ahead wrapper.
    """
    records = journal.records
    if not records:
        platform = JournaledPlatform(
            journal,
            num_slots=num_slots,
            reserve_price=reserve_price,
            payment_rule=payment_rule,
            max_reassignments=max_reassignments,
        )
        outcome = execute_commands(platform, commands)
        assert outcome is not None
        return ResumeResult(
            outcome=outcome,
            platform=platform,
            replayed_commands=0,
            executed_commands=len(commands),
        )

    replay = replay_records(records)
    started = records[0].event
    assert isinstance(started, RoundStarted)
    requested = RoundStarted(
        slot=0,
        num_slots=num_slots,
        reserve_price=bool(reserve_price),
        payment_rule=payment_rule,
        max_reassignments=max_reassignments,
    )
    if started != requested:
        raise JournalError(
            f"journal {str(journal.directory)!r} records configuration "
            f"{started!r} but the resume requested {requested!r}"
        )
    journaled = [
        record.event
        for record in records[1:]
        if record.kind == KIND_COMMAND
    ]
    if list(commands[: len(journaled)]) != journaled:
        raise ReplayDivergenceError(
            f"journal {str(journal.directory)!r} holds a command "
            f"history that is not a prefix of the regenerated round; "
            f"refusing to resume (seed or scenario mismatch?)"
        )
    if len(journaled) > len(commands):
        raise ReplayDivergenceError(
            f"journal holds {len(journaled)} commands but the "
            f"regenerated round has only {len(commands)}"
        )
    platform = JournaledPlatform.from_recovery(journal, replay.platform)
    remaining = list(commands[len(journaled):])
    outcome = replay.outcome
    if remaining:
        outcome = execute_commands(platform, remaining)
    assert outcome is not None
    obs.counter("journal.resumed_rounds")
    return ResumeResult(
        outcome=outcome,
        platform=platform,
        replayed_commands=len(journaled),
        executed_commands=len(remaining),
    )
