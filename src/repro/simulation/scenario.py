"""A fully materialised simulation instance.

A :class:`Scenario` is one concrete round: the private profiles of every
smartphone that will appear, the task arrival schedule, and descriptive
metadata.  It is what workload generation produces, what traces persist,
and what the engine feeds to mechanisms (after strategies turn profiles
into bids).
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.agents.base import BiddingStrategy
from repro.agents.truthful import TruthfulStrategy
from repro.errors import SimulationError, ValidationError
from repro.model.bid import Bid
from repro.model.smartphone import SmartphoneProfile
from repro.model.task import TaskSchedule

_TRUTHFUL = TruthfulStrategy()


class Scenario:
    """One concrete round: profiles + task schedule + metadata."""

    def __init__(
        self,
        profiles: Sequence[SmartphoneProfile],
        schedule: TaskSchedule,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> None:
        by_id: Dict[int, SmartphoneProfile] = {}
        for profile in profiles:
            if not isinstance(profile, SmartphoneProfile):
                raise ValidationError(
                    f"profiles must be SmartphoneProfile, got "
                    f"{type(profile).__name__}"
                )
            if profile.phone_id in by_id:
                raise SimulationError(
                    f"duplicate profile for phone {profile.phone_id}"
                )
            if profile.departure > schedule.num_slots:
                raise SimulationError(
                    f"phone {profile.phone_id} departs at slot "
                    f"{profile.departure}, beyond the round horizon of "
                    f"{schedule.num_slots}"
                )
            by_id[profile.phone_id] = profile
        self._profiles: Tuple[SmartphoneProfile, ...] = tuple(
            by_id[pid] for pid in sorted(by_id)
        )
        self._by_id = by_id
        self._schedule = schedule
        self._metadata: Dict[str, object] = dict(metadata or {})

    @classmethod
    def from_trusted(
        cls,
        profiles: Sequence[SmartphoneProfile],
        schedule: TaskSchedule,
        metadata: Optional[Mapping[str, object]] = None,
    ) -> "Scenario":
        """Build a scenario from pre-validated inputs, skipping checks.

        Fast path for the columnar codec: ``profiles`` must already be
        unique, sorted by phone id, and within the schedule horizon —
        exactly what :meth:`RoundColumns.decode_profiles
        <repro.model.columnar.RoundColumns.decode_profiles>` produces
        from generator output.  The result is indistinguishable from
        ``Scenario(profiles, schedule, metadata)``.
        """
        scenario = object.__new__(cls)
        scenario._profiles = tuple(profiles)
        scenario._by_id = {p.phone_id: p for p in scenario._profiles}
        scenario._schedule = schedule
        scenario._metadata = dict(metadata or {})
        return scenario

    @property
    def profiles(self) -> Tuple[SmartphoneProfile, ...]:
        """All private profiles, ordered by phone id."""
        return self._profiles

    @property
    def schedule(self) -> TaskSchedule:
        """The round's task arrivals."""
        return self._schedule

    @property
    def metadata(self) -> Dict[str, object]:
        """Copy of the descriptive metadata (workload parameters etc.)."""
        return dict(self._metadata)

    @property
    def num_phones(self) -> int:
        """Number of smartphones in the round (the paper's ``n``)."""
        return len(self._profiles)

    @property
    def num_tasks(self) -> int:
        """Number of sensing tasks in the round (the paper's ``γ``)."""
        return len(self._schedule)

    @property
    def num_slots(self) -> int:
        """The round horizon ``m``."""
        return self._schedule.num_slots

    def profile(self, phone_id: int) -> SmartphoneProfile:
        """Look a profile up by phone id."""
        try:
            return self._by_id[phone_id]
        except KeyError as exc:
            raise SimulationError(f"unknown phone_id {phone_id}") from exc

    def truthful_bids(self) -> List[Bid]:
        """The bid vector when every phone reports truthfully."""
        return [profile.truthful_bid() for profile in self._profiles]

    def bids_from_strategies(
        self,
        strategies: Optional[Mapping[int, BiddingStrategy]] = None,
        rng: Optional[np.random.Generator] = None,
        default: Optional[BiddingStrategy] = None,
    ) -> List[Bid]:
        """Bid vector under a per-phone strategy assignment.

        Phones absent from ``strategies`` use ``default`` (truthful when
        not given).  Strategies returning ``None`` abstain — their phones
        submit no bid at all.
        """
        assignment = dict(strategies or {})
        for phone_id in assignment:
            if phone_id not in self._by_id:
                raise SimulationError(
                    f"strategy assigned to unknown phone_id {phone_id}"
                )
        fallback = default if default is not None else _TRUTHFUL
        bids: List[Bid] = []
        for profile in self._profiles:
            strategy = assignment.get(profile.phone_id, fallback)
            bid = strategy.make_bid(profile, rng)
            if bid is not None:
                bids.append(bid)
        return bids

    def active_profiles(self, slot: int) -> Tuple[SmartphoneProfile, ...]:
        """Profiles really active in ``slot`` (1-based)."""
        return tuple(p for p in self._profiles if p.is_active(slot))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Scenario(phones={self.num_phones}, tasks={self.num_tasks}, "
            f"slots={self.num_slots})"
        )
