"""Arrival processes for smartphones and sensing tasks.

The paper generates both arrival streams "with Poisson distributions"
(Section VI-A): the number of arrivals per slot is Poisson with the
configured rate.  Deterministic and trace-driven processes exist for
worked examples and replay.
"""

from __future__ import annotations

import abc
from typing import List, Sequence

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_non_negative, check_positive, check_type


class ArrivalProcess(abc.ABC):
    """Produces the number of arrivals in each slot of a round."""

    @abc.abstractmethod
    def counts(
        self, num_slots: int, rng: np.random.Generator
    ) -> List[int]:
        """Arrivals per slot: a list of ``num_slots`` non-negative ints."""

    def _check_num_slots(self, num_slots: int) -> int:
        check_type("num_slots", num_slots, int)
        check_positive("num_slots", num_slots)
        return num_slots


class PoissonArrivals(ArrivalProcess):
    """Independent Poisson arrivals with a fixed per-slot rate ``λ``."""

    def __init__(self, rate: float) -> None:
        check_non_negative("rate", rate)
        self._rate = float(rate)

    @property
    def rate(self) -> float:
        """The per-slot arrival rate ``λ``."""
        return self._rate

    def counts(self, num_slots: int, rng: np.random.Generator) -> List[int]:
        self._check_num_slots(num_slots)
        return [int(c) for c in rng.poisson(self._rate, size=num_slots)]

    def __repr__(self) -> str:
        return f"PoissonArrivals(rate={self._rate})"


class DeterministicArrivals(ArrivalProcess):
    """The same number of arrivals in every slot."""

    def __init__(self, per_slot: int) -> None:
        check_type("per_slot", per_slot, int)
        check_non_negative("per_slot", per_slot)
        self._per_slot = per_slot

    @property
    def per_slot(self) -> int:
        """Arrivals in each slot."""
        return self._per_slot

    def counts(self, num_slots: int, rng: np.random.Generator) -> List[int]:
        self._check_num_slots(num_slots)
        return [self._per_slot] * num_slots

    def __repr__(self) -> str:
        return f"DeterministicArrivals(per_slot={self._per_slot})"


class InhomogeneousPoissonArrivals(ArrivalProcess):
    """Poisson arrivals with a per-slot rate profile (diurnal demand).

    The profile is cycled to cover the round, so a 24-entry "hourly"
    profile drives rounds of any length.  Useful for rush-hour task
    streams (see ``examples/noise_mapping.py``) while staying Poisson
    within each slot, as in the paper.
    """

    def __init__(self, rate_profile: Sequence[float]) -> None:
        rates = []
        for index, rate in enumerate(rate_profile):
            check_non_negative(f"rate_profile[{index}]", rate)
            rates.append(float(rate))
        if not rates:
            raise ValidationError("rate_profile must not be empty")
        self._rates = tuple(rates)

    @property
    def rate_profile(self) -> Sequence[float]:
        """The cyclic per-slot rates."""
        return self._rates

    def counts(self, num_slots: int, rng: np.random.Generator) -> List[int]:
        self._check_num_slots(num_slots)
        return [
            int(rng.poisson(self._rates[slot % len(self._rates)]))
            for slot in range(num_slots)
        ]

    def __repr__(self) -> str:
        return (
            f"InhomogeneousPoissonArrivals(profile_len={len(self._rates)})"
        )


class TraceArrivals(ArrivalProcess):
    """Replay a recorded per-slot arrival vector.

    The trace must be at least as long as the requested round; extra
    entries are ignored so one long trace can drive sweeps over ``m``.
    """

    def __init__(self, trace: Sequence[int]) -> None:
        validated = []
        for index, count in enumerate(trace):
            check_type(f"trace[{index}]", count, int)
            check_non_negative(f"trace[{index}]", count)
            validated.append(count)
        if not validated:
            raise ValidationError("trace must not be empty")
        self._trace = tuple(validated)

    @property
    def trace(self) -> Sequence[int]:
        """The recorded arrival counts."""
        return self._trace

    def counts(self, num_slots: int, rng: np.random.Generator) -> List[int]:
        self._check_num_slots(num_slots)
        if num_slots > len(self._trace):
            raise ValidationError(
                f"trace has {len(self._trace)} slots, round needs "
                f"{num_slots}"
            )
        return list(self._trace[:num_slots])

    def __repr__(self) -> str:
        return f"TraceArrivals(len={len(self._trace)})"
