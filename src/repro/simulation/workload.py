"""Workload generation matching Table I of the paper.

Table I — summary of default settings:

===============================  =============
Parameter                        Default value
===============================  =============
Arrival rate λ of smartphones    6 (per slot)
Arrival rate λ_t of tasks        3 (per slot)
Average of real costs c̄          25
Number of slots m                50
Average length of active time    5 (10% of m)
===============================  =============

Arrivals are Poisson; active-time lengths are "uniformly selected" with
the configured average (we use the discrete uniform on
``[1, 2*avg − 1]``, which has that mean); costs default to
:class:`~repro.simulation.costs.UniformCosts` with the configured mean.

The paper never states the task value ``ν``; it is exposed here as
``task_value`` (default 30, slightly above the mean cost so that roughly
the cheaper half of phones are profitable to hire — see DESIGN.md §2).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional

import numpy as np

from repro.errors import ValidationError
from repro.model.columnar import RoundColumns
from repro.model.smartphone import SmartphoneProfile
from repro.model.task import TaskSchedule
from repro.simulation.arrivals import ArrivalProcess, PoissonArrivals
from repro.simulation.costs import CostDistribution, UniformCosts
from repro.simulation.scenario import Scenario
from repro.utils.rng import RngStreams
from repro.utils.validation import (
    check_non_negative,
    check_positive,
    check_type,
)


@dataclasses.dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of the random workload of Section VI.

    Attributes
    ----------
    num_slots:
        Round length ``m`` (Table I default: 50).
    phone_rate:
        Smartphone arrival rate ``λ`` per slot (default 6).
    task_rate:
        Task arrival rate ``λ_t`` per slot (default 3).
    mean_cost:
        Average real cost ``c̄`` (default 25).
    mean_active_length:
        Average active-time length in slots (default 5).
    task_value:
        The platform's per-task value ``ν`` (default 30; not in Table I —
        see the module docstring).
    """

    num_slots: int = 50
    phone_rate: float = 6.0
    task_rate: float = 3.0
    mean_cost: float = 25.0
    mean_active_length: int = 5
    task_value: float = 30.0

    def __post_init__(self) -> None:
        check_type("num_slots", self.num_slots, int)
        check_positive("num_slots", self.num_slots)
        check_non_negative("phone_rate", self.phone_rate)
        check_non_negative("task_rate", self.task_rate)
        check_positive("mean_cost", self.mean_cost)
        check_type("mean_active_length", self.mean_active_length, int)
        check_positive("mean_active_length", self.mean_active_length)
        check_non_negative("task_value", self.task_value)

    @classmethod
    def paper_default(cls) -> "WorkloadConfig":
        """The Table I defaults."""
        return cls()

    def replace(self, **changes: Any) -> "WorkloadConfig":
        """A copy with the given fields overridden (sweep helper)."""
        return dataclasses.replace(self, **changes)

    def to_dict(self) -> Dict[str, Any]:
        """Serialise for scenario metadata and trace headers."""
        return dataclasses.asdict(self)

    # ------------------------------------------------------------------
    # Generation
    # ------------------------------------------------------------------
    def generate(
        self,
        seed: int,
        phone_arrivals: Optional[ArrivalProcess] = None,
        task_arrivals: Optional[ArrivalProcess] = None,
        cost_distribution: Optional[CostDistribution] = None,
    ) -> Scenario:
        """Materialise one random round.

        Randomness comes from three independent named streams derived
        from ``seed`` (phone arrivals, task arrivals, costs/lengths), so
        e.g. sweeping the task rate does not perturb the generated phone
        population for a fixed seed.
        """
        costs = cost_distribution or UniformCosts.with_mean(self.mean_cost)
        columns = self._columns(
            seed,
            phone_arrivals or PoissonArrivals(self.phone_rate),
            task_arrivals or PoissonArrivals(self.task_rate),
            costs,
        )

        profiles: List[SmartphoneProfile] = [
            SmartphoneProfile(
                phone_id=pid, arrival=arr, departure=dep, cost=cost
            )
            for pid, arr, dep, cost in zip(
                columns.phone_id.tolist(),
                columns.arrival.tolist(),
                columns.departure.tolist(),
                columns.cost.tolist(),
            )
        ]
        schedule = TaskSchedule.from_counts(
            [int(c) for c in columns.task_counts], value=self.task_value
        )

        metadata = self.to_dict()
        metadata["seed"] = seed
        metadata["cost_distribution"] = repr(costs)
        return Scenario(
            profiles=profiles, schedule=schedule, metadata=metadata
        )

    def generate_columns(
        self,
        seed: int,
        phone_arrivals: Optional[ArrivalProcess] = None,
        task_arrivals: Optional[ArrivalProcess] = None,
        cost_distribution: Optional[CostDistribution] = None,
    ) -> RoundColumns:
        """The columnar form of :meth:`generate`, without materialisation.

        Draws the identical population (same streams, same draw order —
        the batched length draw consumes the generator exactly like the
        former per-phone loop) but returns flat
        :class:`~repro.model.columnar.RoundColumns` ready to pack into a
        shared-memory segment.  ``generate(seed)`` equals decoding
        ``generate_columns(seed)`` value-for-value.
        """
        return self._columns(
            seed,
            phone_arrivals or PoissonArrivals(self.phone_rate),
            task_arrivals or PoissonArrivals(self.task_rate),
            cost_distribution or UniformCosts.with_mean(self.mean_cost),
        )

    def metadata_for(self, seed: int, costs_repr: str) -> Dict[str, Any]:
        """The scenario metadata :meth:`generate` attaches for ``seed``.

        Lets columnar consumers (shard workers) rebuild the exact
        metadata dict without re-running generation.
        """
        metadata = self.to_dict()
        metadata["seed"] = seed
        metadata["cost_distribution"] = costs_repr
        return metadata

    def _columns(
        self,
        seed: int,
        phones: ArrivalProcess,
        tasks: ArrivalProcess,
        costs: CostDistribution,
    ) -> RoundColumns:
        """Vectorised generation core (shared by both public entry points)."""
        streams = RngStreams(seed)
        phone_counts = phones.counts(
            self.num_slots, streams.get("phone-arrivals")
        )
        task_counts = tasks.counts(
            self.num_slots, streams.get("task-arrivals")
        )

        attribute_rng = streams.get("phone-attributes")
        total_phones = sum(phone_counts)
        sampled_costs = costs.sample(total_phones, attribute_rng)

        arrival = np.repeat(
            np.arange(1, self.num_slots + 1, dtype=np.int64),
            phone_counts,
        )
        lengths = self._draw_active_lengths(attribute_rng, total_phones)
        departure = np.minimum(arrival + lengths - 1, self.num_slots)
        return RoundColumns(
            num_slots=self.num_slots,
            task_value=self.task_value,
            phone_id=np.arange(total_phones, dtype=np.int64),
            arrival=arrival,
            departure=departure,
            cost=np.asarray(sampled_costs, dtype=np.float64),
            task_counts=np.asarray(task_counts, dtype=np.int64),
        )

    def _draw_active_lengths(self, rng, count: int) -> np.ndarray:
        """Uniform integer lengths on ``[1, 2*avg − 1]`` (mean = avg).

        One batched draw; a size-``n`` batch of ``Generator.integers``
        consumes the bit stream exactly like ``n`` scalar draws, so this
        reproduces the historical per-phone loop bit-for-bit.  Lengths are
        clamped to the round horizon by the caller via the departure
        computation; profiles near the round end therefore have slightly
        shorter effective windows, matching a finite round.
        """
        upper = 2 * self.mean_active_length - 1
        if upper <= 1:
            return np.ones(count, dtype=np.int64)
        return rng.integers(1, upper + 1, size=count, dtype=np.int64)


def generate_many(
    config: WorkloadConfig, seeds: List[int]
) -> List[Scenario]:
    """Generate one scenario per seed (sweep repetition helper)."""
    if not seeds:
        raise ValidationError("seeds must not be empty")
    return [config.generate(seed) for seed in seeds]
