"""The worked example of Figs. 4 and 5, reconstructed exactly.

The paper's running example has 7 smartphones, 5 slots, and one task per
slot.  The figure's raster is not machine-readable, but every number is
recoverable from the prose:

* Fig. 4: Smartphone 2 is active ``[1, 4]`` with cost 5 and wins slot 1;
  Smartphone 1 wins slot 2; in slot 3 the pool is ``{3, 6, 7}`` with
  costs 11, 8, 6 and Smartphone 7 (cost 6) wins.
* Fig. 5(a): slot 1's second-lowest price is 6, reported by Smartphone 7,
  so 7 is active from slot 1; Smartphone 1 is paid 4 in slot 2, so some
  phone with cost 4 is active there (Smartphone 5).
* Fig. 5(b): after Smartphone 1 delays its arrival by 2 slots it reports
  ``[4, 5]`` (hence its true window is ``[2, 5]``, cost 3) and is paid 8
  in slot 4 (second price = Smartphone 6's cost 8).
* Section V-C's payment walk-through: without Smartphone 1 the slots
  2..5 go to Smartphones 5, 7, 6, 4 with costs 4, 6, 8, 9, so
  Smartphone 1's Algorithm-2 payment is 9.

The reconstruction below reproduces *all* of those numbers; the test
suite asserts each one.
"""

from __future__ import annotations

from typing import List

from repro.model.bid import Bid
from repro.model.smartphone import SmartphoneProfile
from repro.model.task import TaskSchedule

#: The value assigned to each task in the worked example.  The paper's
#: example never uses ν numerically (no welfare is computed for it); any
#: value at least the largest cost (11) keeps every allocation step
#: identical, and 12 is the smallest integer choice.
EXAMPLE_TASK_VALUE = 12.0

#: ``(phone_id, arrival, departure, cost)`` for Smartphones 1..7.
_EXAMPLE_ROWS = (
    (1, 2, 5, 3.0),
    (2, 1, 4, 5.0),
    (3, 3, 5, 11.0),
    (4, 5, 5, 9.0),
    (5, 2, 2, 4.0),
    (6, 3, 4, 8.0),
    (7, 1, 3, 6.0),
)


def paper_example_profiles() -> List[SmartphoneProfile]:
    """The 7 private profiles of the Fig. 4 example."""
    return [
        SmartphoneProfile(
            phone_id=pid, arrival=arrival, departure=departure, cost=cost
        )
        for pid, arrival, departure, cost in _EXAMPLE_ROWS
    ]


def paper_example_bids() -> List[Bid]:
    """The truthful bids of the Fig. 4 example."""
    return [profile.truthful_bid() for profile in paper_example_profiles()]


def paper_example_schedule(
    task_value: float = EXAMPLE_TASK_VALUE,
) -> TaskSchedule:
    """One task per slot over 5 slots, as in Figs. 4/5."""
    return TaskSchedule.from_counts([1, 1, 1, 1, 1], value=task_value)
