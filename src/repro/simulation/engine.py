"""The simulation engine: run mechanisms over scenarios, collect metrics.

:class:`SimulationEngine` is the one-stop entry point the examples and
the experiment harness use: give it a scenario and a mechanism, get back
a :class:`SimulationResult` with the outcome and every paper metric
already computed.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Mapping, Optional

import numpy as np

from repro import obs
from repro.agents.base import BiddingStrategy
from repro.mechanisms.base import Mechanism
from repro.metrics.overpayment import overpayment_ratio, total_overpayment
from repro.metrics.welfare import phone_utilities, true_social_welfare
from repro.model.outcome import AuctionOutcome
from repro.simulation.scenario import Scenario


@dataclasses.dataclass(frozen=True)
class SimulationResult:
    """One round's outcome plus the metrics of Section VI.

    Attributes
    ----------
    mechanism_name:
        Name of the mechanism that produced the outcome.
    outcome:
        The raw allocation/payment record.
    true_welfare:
        Social welfare on real costs (Definition 3).
    claimed_welfare:
        Social welfare on claimed costs (equal to ``true_welfare`` under
        truthful bidding).
    overpayment:
        Total payments minus total real winner costs.
    overpayment_ratio:
        Definition 11's ``σ``; ``None`` if nothing was allocated.
    utilities:
        True utility per phone (Definition 1).
    tasks_served:
        Number of allocated tasks.
    """

    mechanism_name: str
    outcome: AuctionOutcome
    true_welfare: float
    claimed_welfare: float
    overpayment: float
    overpayment_ratio: Optional[float]
    utilities: Dict[int, float]
    tasks_served: int

    @property
    def total_payment(self) -> float:
        """Total money the platform paid out."""
        return self.outcome.total_payment

    @property
    def service_rate(self) -> float:
        """Fraction of tasks served (1.0 for an empty schedule)."""
        total = len(self.outcome.schedule)
        return 1.0 if total == 0 else self.tasks_served / total


class SimulationEngine:
    """Runs mechanisms over scenarios and packages the metrics."""

    def run(
        self,
        mechanism: Mechanism,
        scenario: Scenario,
        strategies: Optional[Mapping[int, BiddingStrategy]] = None,
        rng: Optional[np.random.Generator] = None,
    ) -> SimulationResult:
        """Execute one round.

        Parameters
        ----------
        mechanism:
            The auction mechanism to run.
        scenario:
            The round's profiles and task schedule.
        strategies:
            Optional per-phone bidding strategies (default: everyone
            truthful).
        rng:
            Random source for stochastic strategies.
        """
        if strategies:
            bids = scenario.bids_from_strategies(strategies, rng)
        else:
            bids = scenario.truthful_bids()
        with obs.span(
            "mechanism.run", mechanism=mechanism.name, bids=len(bids)
        ):
            outcome = mechanism.run(bids, scenario.schedule)
        return self.package(mechanism.name, outcome, scenario)

    @staticmethod
    def package(
        mechanism_name: str,
        outcome: AuctionOutcome,
        scenario: Scenario,
    ) -> SimulationResult:
        """Compute the metric bundle for an already-produced outcome."""
        return SimulationResult(
            mechanism_name=mechanism_name,
            outcome=outcome,
            true_welfare=true_social_welfare(outcome, scenario),
            claimed_welfare=outcome.claimed_welfare,
            overpayment=total_overpayment(outcome, scenario),
            overpayment_ratio=overpayment_ratio(outcome, scenario),
            utilities=phone_utilities(outcome, scenario),
            tasks_served=len(outcome.allocation),
        )
