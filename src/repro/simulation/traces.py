"""Scenario persistence: JSON traces for record and replay.

A trace is a single JSON document with a header (format version,
metadata), the private profiles, and the task schedule.  Replaying a
trace reconstructs the exact :class:`~repro.simulation.Scenario`, so a
sweep result can always be re-derived from its recorded inputs.
"""

from __future__ import annotations

import json
import os
from typing import Any, Dict, Union

from repro.errors import SimulationError
from repro.model.smartphone import SmartphoneProfile
from repro.model.task import SensingTask, TaskSchedule
from repro.simulation.scenario import Scenario

#: Bumped whenever the trace layout changes incompatibly.
TRACE_FORMAT_VERSION = 1

PathLike = Union[str, "os.PathLike[str]"]


def scenario_to_dict(scenario: Scenario) -> Dict[str, Any]:
    """The JSON-ready representation of ``scenario``."""
    return {
        "format_version": TRACE_FORMAT_VERSION,
        "metadata": scenario.metadata,
        "num_slots": scenario.num_slots,
        "profiles": [p.to_dict() for p in scenario.profiles],
        "tasks": [t.to_dict() for t in scenario.schedule],
    }


def scenario_from_dict(payload: Dict[str, Any]) -> Scenario:
    """Rebuild a scenario from :func:`scenario_to_dict` output.

    Raises
    ------
    SimulationError
        On a missing or unsupported format version, or structurally
        invalid content.
    """
    version = payload.get("format_version")
    if version != TRACE_FORMAT_VERSION:
        raise SimulationError(
            f"unsupported trace format version {version!r}; this build "
            f"reads version {TRACE_FORMAT_VERSION}"
        )
    try:
        num_slots = int(payload["num_slots"])
        profiles = [
            SmartphoneProfile.from_dict(entry)
            for entry in payload["profiles"]
        ]
        tasks = [SensingTask.from_dict(entry) for entry in payload["tasks"]]
        metadata = dict(payload.get("metadata") or {})
    except (KeyError, TypeError) as exc:
        raise SimulationError(f"malformed trace payload: {exc}") from exc
    schedule = TaskSchedule(num_slots=num_slots, tasks=tasks)
    return Scenario(profiles=profiles, schedule=schedule, metadata=metadata)


def save_scenario(scenario: Scenario, path: PathLike) -> None:
    """Write ``scenario`` to ``path`` as JSON."""
    payload = scenario_to_dict(scenario)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_scenario(path: PathLike) -> Scenario:
    """Read a scenario previously written by :func:`save_scenario`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except json.JSONDecodeError as exc:
        raise SimulationError(f"trace {path!s} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise SimulationError(
            f"trace {path!s} must contain a JSON object, got "
            f"{type(payload).__name__}"
        )
    return scenario_from_dict(payload)
