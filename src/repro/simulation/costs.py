"""Cost distributions for smartphone sensing costs.

Table I only fixes the *average* real cost (default 25); the shape is
unspecified.  The default workload uses :class:`UniformCosts` spanning
``[1, 2*mean - 1]`` (mean-preserving, bounded away from zero so payments
and overpayment ratios stay well-conditioned); constant and exponential
shapes exist for sensitivity studies.
"""

from __future__ import annotations

import abc
from typing import List

import numpy as np

from repro.errors import ValidationError
from repro.utils.validation import check_non_negative, check_positive


class CostDistribution(abc.ABC):
    """Samples per-task sensing costs for generated smartphones."""

    @abc.abstractmethod
    def sample(self, count: int, rng: np.random.Generator) -> List[float]:
        """Draw ``count`` costs (all ``>= 0``)."""

    @property
    @abc.abstractmethod
    def mean(self) -> float:
        """The distribution's mean (used in reports and sweeps)."""

    @staticmethod
    def _check_count(count: int) -> int:
        if not isinstance(count, int) or isinstance(count, bool):
            raise ValidationError(
                f"count must be an int, got {type(count).__name__}"
            )
        if count < 0:
            raise ValidationError(f"count must be >= 0, got {count}")
        return count


class UniformCosts(CostDistribution):
    """Costs uniform on ``[low, high]``."""

    def __init__(self, low: float, high: float) -> None:
        check_non_negative("low", low)
        check_non_negative("high", high)
        if high < low:
            raise ValidationError(
                f"high ({high}) must be >= low ({low})"
            )
        self._low = float(low)
        self._high = float(high)

    @classmethod
    def with_mean(cls, mean: float) -> "UniformCosts":
        """The default paper-style shape: uniform on ``[1, 2*mean - 1]``.

        Mean-preserving for ``mean >= 1``; degrades to a constant at 1
        when ``mean == 1``.
        """
        check_positive("mean", mean)
        if mean < 1.0:
            return cls(low=mean, high=mean)
        return cls(low=1.0, high=2.0 * mean - 1.0)

    @property
    def low(self) -> float:
        """Lower bound of the support."""
        return self._low

    @property
    def high(self) -> float:
        """Upper bound of the support."""
        return self._high

    @property
    def mean(self) -> float:
        return (self._low + self._high) / 2.0

    def sample(self, count: int, rng: np.random.Generator) -> List[float]:
        self._check_count(count)
        return [float(c) for c in rng.uniform(self._low, self._high, size=count)]

    def __repr__(self) -> str:
        return f"UniformCosts(low={self._low}, high={self._high})"


class ConstantCosts(CostDistribution):
    """Every smartphone has the same cost (degenerate markets, tests)."""

    def __init__(self, value: float) -> None:
        check_non_negative("value", value)
        self._value = float(value)

    @property
    def value(self) -> float:
        """The constant cost."""
        return self._value

    @property
    def mean(self) -> float:
        return self._value

    def sample(self, count: int, rng: np.random.Generator) -> List[float]:
        self._check_count(count)
        return [self._value] * count

    def __repr__(self) -> str:
        return f"ConstantCosts(value={self._value})"


class ExponentialCosts(CostDistribution):
    """Exponentially distributed costs (heavy right tail).

    Models populations where a few phones are much more expensive to
    engage — useful for stressing the payment schemes' tails.
    """

    def __init__(self, mean: float) -> None:
        check_positive("mean", mean)
        self._mean = float(mean)

    @property
    def mean(self) -> float:
        return self._mean

    def sample(self, count: int, rng: np.random.Generator) -> List[float]:
        self._check_count(count)
        return [float(c) for c in rng.exponential(self._mean, size=count)]

    def __repr__(self) -> str:
        return f"ExponentialCosts(mean={self._mean})"
