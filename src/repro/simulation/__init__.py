"""Simulation substrate: arrival processes, workloads, scenarios, engine.

This layer generates the random instances of Section VI (Table I defaults:
Poisson smartphone and task arrivals, uniform active-time lengths and
costs) and drives mechanisms over them.
"""

from repro.simulation.arrivals import (
    ArrivalProcess,
    DeterministicArrivals,
    InhomogeneousPoissonArrivals,
    PoissonArrivals,
    TraceArrivals,
)
from repro.simulation.costs import (
    ConstantCosts,
    CostDistribution,
    ExponentialCosts,
    UniformCosts,
)
from repro.simulation.engine import SimulationEngine, SimulationResult
from repro.simulation.paper_example import (
    paper_example_profiles,
    paper_example_schedule,
)
from repro.simulation.scenario import Scenario
from repro.simulation.traces import load_scenario, save_scenario
from repro.simulation.workload import WorkloadConfig

__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "DeterministicArrivals",
    "InhomogeneousPoissonArrivals",
    "TraceArrivals",
    "CostDistribution",
    "UniformCosts",
    "ConstantCosts",
    "ExponentialCosts",
    "WorkloadConfig",
    "Scenario",
    "SimulationEngine",
    "SimulationResult",
    "save_scenario",
    "load_scenario",
    "paper_example_profiles",
    "paper_example_schedule",
]
