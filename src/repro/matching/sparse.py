"""CSR shortest-augmenting-path assignment solver for sparse instances.

The offline winning-bid determination graph is interval-structured: an
edge (task, phone) exists only when the phone's claimed window covers
the task's slot, so with short active windows relative to the round the
graph is overwhelmingly sparse.  The dense
:class:`~repro.matching.solver.AssignmentSolver` scans full matrix rows
on every Dijkstra pivot (``O(V)`` per pivot, ``O(V^2)`` per
augmentation); this solver stores the edges in CSR form and runs a
heap-based Dijkstra that touches only a row's actual neighbours —
``O(E + V log V)`` per augmentation, where ``E`` is the number of edges
reachable from the inserted row.  On city-scale instances (thousands of
slots, tens of thousands of bids) the reachable neighbourhood is tiny
because augmenting paths cannot leave a time-window cluster, so
augmentations are effectively local.

The public API mirrors :class:`AssignmentSolver` — ``solve``,
``row_to_col``, ``total_cost``, the warm-started repair queries
``total_cost_without_column`` / ``matching_without_column``, and the
row-removal family ``total_cost_without_row`` / ``resolve_without_row``
/ ``delete_row`` — so :class:`~repro.matching.graph.TaskAssignmentGraph`
can swap solvers per backend without touching the payment paths.

Optional rows are modelled natively: when ``dummy_cost`` is given,
every row ``r`` owns a private *implicit* dummy column ``num_cols + r``
at that cost.  This is equivalent to the dense solver's explicit dummy
columns (all dummies cost the same, so private assignment is never a
restriction) but costs no memory and keeps the CSR arrays dense-free.
With ``dummy_cost=None`` the solver behaves exactly like the dense one
on the stored edges and raises :class:`MatchingError` when no perfect
row assignment exists.

Tie-breaking matches the dense solver: rows are inserted in index
order and the heap orders frontier columns by ``(distance, column)``,
which is the same lowest-index-first rule the dense ``argmin`` applies.
The property suites in ``tests/matching/test_sparse.py`` and
``tests/properties/test_backend_properties.py`` cross-check every query
against the dense solver and against cold re-solves.
"""

from __future__ import annotations

import heapq
from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import MatchingError

_INF = float("inf")


class SparseAssignmentSolver:
    """Minimum-cost assignment over a CSR edge list.

    Parameters
    ----------
    num_rows, num_cols:
        Vertex counts.  Columns ``0..num_cols-1`` are the real columns;
        when ``dummy_cost`` is set, column ``num_cols + r`` is row
        ``r``'s private dummy column.
    indptr, indices, data:
        CSR arrays: row ``r``'s edges are ``indices[indptr[r]:
        indptr[r+1]]`` with costs ``data[indptr[r]:indptr[r+1]]``.
        Column indices must be strictly increasing within each row.
    dummy_cost:
        Cost of leaving a row on its implicit dummy column, or ``None``
        for no dummies (every row must then match a real column).
    """

    def __init__(
        self,
        num_rows: int,
        num_cols: int,
        indptr: np.ndarray,
        indices: np.ndarray,
        data: np.ndarray,
        dummy_cost: Optional[float] = None,
    ) -> None:
        if num_rows < 0 or num_cols < 0:
            raise MatchingError(
                f"negative shape ({num_rows} x {num_cols})"
            )
        self._indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        self._indices = np.ascontiguousarray(indices, dtype=np.int64)
        self._data = np.ascontiguousarray(data, dtype=float)
        if self._indptr.shape != (num_rows + 1,):
            raise MatchingError(
                f"indptr must have length num_rows + 1 = {num_rows + 1}, "
                f"got {self._indptr.shape[0]}"
            )
        if self._indices.shape != self._data.shape or self._indices.ndim != 1:
            raise MatchingError("indices and data must be equal-length 1-D")
        nnz = self._indices.shape[0]
        if (
            self._indptr[0] != 0
            or self._indptr[-1] != nnz
            or np.any(np.diff(self._indptr) < 0)
        ):
            raise MatchingError("indptr must be monotone from 0 to nnz")
        if nnz:
            if self._indices.min() < 0 or self._indices.max() >= num_cols:
                raise MatchingError(
                    f"edge column indices must lie in [0, {num_cols})"
                )
            # Strictly increasing within each row: the only places the
            # global diff may be non-positive are the row boundaries.
            boundaries = np.zeros(nnz, dtype=bool)
            inner = self._indptr[1:-1]
            boundaries[inner[inner < nnz]] = True
            if np.any((np.diff(self._indices) <= 0) & ~boundaries[1:]):
                raise MatchingError(
                    "edge column indices must be strictly increasing "
                    "within each row"
                )
        if not np.all(np.isfinite(self._data)):
            raise MatchingError("edge costs must be finite")
        if dummy_cost is not None and not np.isfinite(dummy_cost):
            raise MatchingError("dummy_cost must be finite")
        if dummy_cost is None and num_rows > num_cols:
            raise MatchingError(
                f"without dummy columns rows <= cols is required, got "
                f"{num_rows} x {num_cols}"
            )

        self._num_rows = num_rows
        self._num_cols = num_cols
        self._dummy_cost = (
            None if dummy_cost is None else float(dummy_cost)
        )
        total_cols = num_cols + (num_rows if dummy_cost is not None else 0)
        self._total_cols = total_cols
        # The hot Dijkstra loops run over plain Python lists: per-row
        # neighbourhoods are tiny (tens of edges), where per-element
        # list access beats the fixed per-call overhead of numpy slice
        # arithmetic by a wide margin.
        self._indptr_list: List[int] = self._indptr.tolist()
        self._cols_list: List[int] = self._indices.tolist()
        self._data_list: List[float] = self._data.tolist()
        # Pre-zipped per-row (col, cost) pairs: the relax loop unpacks
        # tuples instead of double-subscripting by position.
        self._row_edges: List[List[Tuple[int, float]]] = [
            list(
                zip(
                    self._cols_list[
                        self._indptr_list[r]:self._indptr_list[r + 1]
                    ],
                    self._data_list[
                        self._indptr_list[r]:self._indptr_list[r + 1]
                    ],
                )
            )
            for r in range(num_rows)
        ]
        self._u: List[float] = [0.0] * num_rows
        self._v: List[float] = [0.0] * total_cols
        # match_of_col[j] = row matched to column j, -1 when free.
        self._match_of_col: List[int] = [-1] * total_cols
        self._row_deleted = np.zeros(num_rows, dtype=bool)
        self._num_active_rows = num_rows
        self._duals_stale = False
        self._solved = False
        self._total: Optional[float] = None
        self._row_to_col_cache: Optional[np.ndarray] = None
        # Column-major view, built lazily for row-removal chain searches.
        self._csc_indptr_list: Optional[List[int]] = None
        self._csc_rows_list: Optional[List[int]] = None
        self._csc_data_list: Optional[List[float]] = None

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def shape(self) -> Tuple[int, int]:
        """``(rows, cols)`` counting the implicit dummy columns."""
        return self._num_rows, self._total_cols

    @property
    def num_real_cols(self) -> int:
        """Real columns (excluding the implicit per-row dummies)."""
        return self._num_cols

    @property
    def num_edges(self) -> int:
        """Stored edges (dummies excluded)."""
        return int(self._indices.shape[0])

    @property
    def num_active_rows(self) -> int:
        """Rows still present (total rows minus :meth:`delete_row` calls)."""
        return self._num_active_rows

    def edge_cost(self, row: int, column: int) -> float:
        """Cost of edge ``(row, column)``; dummies included.

        Raises :class:`MatchingError` when the pair is not an edge.
        """
        if not (0 <= row < self._num_rows):
            raise MatchingError(f"row {row} outside [0, {self._num_rows})")
        if self._dummy_cost is not None and column == self._num_cols + row:
            return self._dummy_cost
        position = self._edge_position(row, column)
        if position < 0:
            raise MatchingError(
                f"({row}, {column}) is not an edge of this instance"
            )
        return float(self._data[position])

    def _edge_position(self, row: int, column: int) -> int:
        """Index of edge ``(row, column)`` in the CSR arrays, or ``-1``."""
        start = int(self._indptr[row])
        end = int(self._indptr[row + 1])
        position = start + int(
            np.searchsorted(self._indices[start:end], column)
        )
        if position < end and int(self._indices[position]) == column:
            return position
        return -1

    # ------------------------------------------------------------------
    # Core shortest-augmenting-path search
    # ------------------------------------------------------------------
    def _dijkstra(
        self,
        row: int,
        forbidden: Optional[int],
        parent: Optional[List[int]],
    ) -> Tuple[float, int, int, List[int], List[float]]:
        """Shortest alternating path from ``row`` to any free column.

        Heap-ordered by ``(distance, column)`` — the dense solver's
        lowest-index-first ``argmin`` tie-break, without scanning
        columns the search never reaches.  Absolute reduced distances
        mirror the dense solver's expression ``(cost - v) - (u -
        path_len)`` so the two backends agree on ties whenever the
        arithmetic is exact.  Returns the same tuple as the dense
        ``_dijkstra``: ``(distance, free_col, pivots, retired_cols,
        retired_dist)``.
        """
        row_edges = self._row_edges
        u = self._u
        v = self._v
        num_cols = self._num_cols
        dummy_cost = self._dummy_cost
        match_of_col = self._match_of_col
        push = heapq.heappush
        pop = heapq.heappop
        shortest = [_INF] * self._total_cols
        visited = [False] * self._total_cols
        if forbidden is not None:
            visited[forbidden] = True

        heap: List[Tuple[float, int]] = []
        retired_cols: List[int] = []
        retired_dist: List[float] = []
        pivots = 0
        path_len = 0.0
        current_row = row
        previous_col = -1
        while True:
            pivots += 1
            # Relax every edge of the current row at the current
            # alternating-path length.
            offset = u[current_row] - path_len
            for col, cost in row_edges[current_row]:
                if visited[col]:
                    continue
                slack = (cost - v[col]) - offset
                if slack < shortest[col]:
                    shortest[col] = slack
                    if parent is not None:
                        parent[col] = previous_col
                    push(heap, (slack, col))
            if dummy_cost is not None:
                dummy = num_cols + current_row
                if not visited[dummy]:
                    slack = (dummy_cost - v[dummy]) - offset
                    if slack < shortest[dummy]:
                        shortest[dummy] = slack
                        if parent is not None:
                            parent[dummy] = previous_col
                        push(heap, (slack, dummy))
            while True:
                if not heap:
                    raise MatchingError(
                        "no augmenting path: the reduced problem has no "
                        "perfect row assignment"
                    )
                distance, col = pop(heap)
                if not visited[col] and distance <= shortest[col]:
                    break
            if match_of_col[col] == -1:
                return distance, col, pivots, retired_cols, retired_dist
            visited[col] = True
            retired_cols.append(col)
            retired_dist.append(distance)
            current_row = match_of_col[col]
            previous_col = col
            path_len = distance

    def _augment(self, row: int) -> int:
        """Insert ``row`` into the matching; one Dijkstra + one dual pass."""
        parent: List[int] = [-2] * self._total_cols
        min_val, free_col, pivots, retired_cols, retired_dist = (
            self._dijkstra(row, None, parent)
        )

        # Deferred dual update, identical to the dense solver's: one
        # pass over the Dijkstra tree, before the flip.
        self._u[row] += min_val
        match_of_col = self._match_of_col
        u = self._u
        v = self._v
        for col, distance in zip(retired_cols, retired_dist):
            delta = distance - min_val
            u[match_of_col[col]] -= delta
            v[col] += delta

        col = free_col
        while True:
            prev = parent[col]
            if prev == -1:
                match_of_col[col] = row
                break
            match_of_col[col] = match_of_col[prev]
            col = prev
        return pivots

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self) -> Tuple[np.ndarray, float]:
        """The optimal assignment: ``(row_to_col, total_cost)``.

        Cached after the first call.  Rows map to real columns, their
        implicit dummy, or ``-1`` when deleted.
        """
        if not self._solved:
            with obs.span(
                "matching.sparse.solve",
                rows=self._num_rows,
                cols=self._total_cols,
                edges=self.num_edges,
            ) as sp:
                pivots = 0
                for row in range(self._num_rows):
                    if not self._row_deleted[row]:
                        pivots += self._augment(row)
                self._solved = True
                self._total = self._matched_cost()
                sp.set_attribute("pivots", pivots)
                obs.counter(
                    "matching.augmentations", self._num_active_rows
                )
                obs.counter("matching.pivots", pivots)
        return self.row_to_col(), self.total_cost()

    def _matched_cost(self) -> float:
        """Total cost of the stored matching, recomputed from the edges."""
        costs = [
            self.edge_cost(row, col)
            for col, row in enumerate(self._match_of_col)
            if row >= 0
        ]
        if not costs:
            return 0.0
        return float(np.asarray(costs).sum())

    def row_to_col(self) -> np.ndarray:
        """The cached assignment as ``row -> col`` (solves if needed).

        Deleted rows map to ``-1``; rows parked on their implicit dummy
        map to ``num_real_cols + row``.
        """
        if not self._solved:
            self.solve()
        if self._row_to_col_cache is None:
            row_to_col = np.full(self._num_rows, -1, dtype=np.int64)
            for col, row in enumerate(self._match_of_col):
                if row >= 0:
                    row_to_col[row] = col
            self._row_to_col_cache = row_to_col
        return self._row_to_col_cache.copy()

    def total_cost(self) -> float:
        """Total cost of the cached optimum (solves if needed)."""
        if not self._solved:
            self.solve()
        assert self._total is not None
        return self._total

    # ------------------------------------------------------------------
    # Column-removal sensitivity (the VCG ``ω*(B₋ᵢ)`` query)
    # ------------------------------------------------------------------
    def _check_column(self, column: int) -> None:
        if not (0 <= column < self._total_cols):
            raise MatchingError(
                f"column {column} outside [0, {self._total_cols})"
            )
        if self._dummy_cost is None and (
            self._num_active_rows >= self._num_cols
        ):
            raise MatchingError(
                "cannot remove a column: every column is needed to match "
                "all rows (add dummy columns)"
            )

    def total_cost_without_column(self, column: int) -> float:
        """Optimal total cost when ``column`` is removed.

        Distance-only warm-started repair: the cached dual potentials
        stay feasible on the reduced column set, so one heap Dijkstra
        from the displaced row prices the repair exactly.  The solver's
        own state is untouched.
        """
        self._check_column(column)
        if not self._solved:
            self.solve()
        self._refresh_duals()
        displaced_row = int(self._match_of_col[column])
        if displaced_row == -1:
            return self.total_cost()
        with obs.span("matching.sparse.repair", column=column) as sp:
            distance, free_col, pivots, _, _ = self._dijkstra(
                displaced_row, column, None
            )
            sp.set_attribute("pivots", pivots)
            obs.counter("matching.pivots", pivots)
            obs.counter("matching.warm_resolves")
            return float(
                self.total_cost()
                - self.edge_cost(displaced_row, column)
                + distance
                + self._u[displaced_row]
                + self._v[free_col]
            )

    def matching_without_column(self, column: int) -> np.ndarray:
        """``row_to_col`` of the optimum with ``column`` removed.

        Same one-Dijkstra repair as :meth:`total_cost_without_column`
        but parent-tracked, so the repaired matching itself is returned
        (non-mutating; the removed column appears in no row's image).
        The payment path uses this to recompute reduced welfare from
        raw edge weights instead of from dual arithmetic.
        """
        self._check_column(column)
        if not self._solved:
            self.solve()
        self._refresh_duals()
        assignment = self.row_to_col()
        displaced_row = int(self._match_of_col[column])
        if displaced_row == -1:
            return assignment
        with obs.span(
            "matching.sparse.repair", column=column, matching=True
        ) as sp:
            parent: List[int] = [-2] * self._total_cols
            _, free_col, pivots, _, _ = self._dijkstra(
                displaced_row, column, parent
            )
            sp.set_attribute("pivots", pivots)
            obs.counter("matching.pivots", pivots)
            obs.counter("matching.warm_resolves")
        col = free_col
        while True:
            prev = parent[col]
            if prev == -1:
                assignment[displaced_row] = col
                break
            assignment[self._match_of_col[prev]] = col
            col = prev
        return assignment

    # ------------------------------------------------------------------
    # Row-removal sensitivity
    # ------------------------------------------------------------------
    def _check_row(self, row: int) -> None:
        if not (0 <= row < self._num_rows):
            raise MatchingError(f"row {row} outside [0, {self._num_rows})")
        if self._row_deleted[row]:
            raise MatchingError(f"row {row} was already deleted")

    def _refresh_duals(self) -> None:
        """Re-solve from scratch when :meth:`delete_row` left duals stale."""
        if not self._duals_stale:
            return
        self._u = [0.0] * self._num_rows
        self._v = [0.0] * self._total_cols
        self._match_of_col = [-1] * self._total_cols
        self._row_to_col_cache = None
        self._total = None
        self._solved = False
        self._duals_stale = False
        self.solve()

    def _ensure_csc(self) -> None:
        """Build the column-major edge view (movers-into-a-hole lookups)."""
        if self._csc_indptr_list is not None:
            return
        rows = np.repeat(
            np.arange(self._num_rows, dtype=np.int64),
            np.diff(self._indptr),
        )
        order = np.lexsort((rows, self._indices))
        csc_cols = self._indices[order]
        self._csc_rows_list = rows[order].tolist()
        self._csc_data_list = self._data[order].tolist()
        self._csc_indptr_list = (
            np.searchsorted(csc_cols, np.arange(self._num_cols + 1))
            .astype(np.int64)
            .tolist()
        )

    def _row_removal_search(
        self, row: int, column: int
    ) -> Tuple[float, int, List[int], List[int], int]:
        """Cheapest reassignment chain into the column freed by ``row``.

        The sparse mirror of the dense hole-Dijkstra: from a real hole
        ``h`` the candidate movers are the rows adjacent to ``h`` in the
        column-major view; from a dummy hole only its owning row can
        move in.  Terminal credit and the telescoped improvement are
        identical to the dense derivation.
        """
        self._ensure_csc()
        csc_indptr = self._csc_indptr_list
        csc_rows = self._csc_rows_list
        csc_data = self._csc_data_list
        assert csc_indptr is not None
        assert csc_rows is not None
        assert csc_data is not None
        u = self._u
        v = self._v
        row_to_col: List[int] = self.row_to_col().tolist()

        dist = [_INF] * self._total_cols
        dist[column] = 0.0
        visited = [False] * self._total_cols
        parent_row = [-1] * self._total_cols
        parent_hole = [-1] * self._total_cols

        heap: List[Tuple[float, int]] = [(0.0, column)]
        best = _INF
        best_col = column
        pivots = 0
        while heap:
            hole_dist, hole = heapq.heappop(heap)
            if visited[hole] or hole_dist > dist[hole]:
                continue
            # Unexplored chains cost at least ``hole_dist`` and end with
            # a credit ``-v >= 0``, so none can beat ``best`` any more.
            if hole_dist >= best:
                break
            pivots += 1
            visited[hole] = True
            ending_here = hole_dist - v[hole]
            if ending_here < best:
                best = ending_here
                best_col = hole
            if hole < self._num_cols:
                v_hole = v[hole]
                for position in range(
                    csc_indptr[hole], csc_indptr[hole + 1]
                ):
                    mover = csc_rows[position]
                    if mover == row:
                        continue
                    target = row_to_col[mover]
                    if target < 0 or visited[target]:
                        continue
                    candidate = hole_dist + (
                        (csc_data[position] - v_hole) - u[mover]
                    )
                    if candidate < dist[target]:
                        dist[target] = candidate
                        parent_row[target] = mover
                        parent_hole[target] = hole
                        heapq.heappush(heap, (candidate, target))
            else:
                assert self._dummy_cost is not None
                mover = hole - self._num_cols
                if mover == row or self._row_deleted[mover]:
                    continue
                target = row_to_col[mover]
                if target < 0 or target == hole or visited[target]:
                    continue
                candidate = hole_dist + (
                    (self._dummy_cost - v[hole]) - u[mover]
                )
                if candidate < dist[target]:
                    dist[target] = candidate
                    parent_row[target] = mover
                    parent_hole[target] = hole
                    heapq.heappush(heap, (candidate, target))
        improvement = min(v[column] + best, 0.0)
        return improvement, best_col, parent_row, parent_hole, pivots

    def _removal_plan(
        self, row: int
    ) -> Tuple[int, float, int, List[int], List[int]]:
        """Shared front half of the row-removal queries."""
        self._check_row(row)
        if not self._solved:
            self.solve()
        self._refresh_duals()
        column = int(self.row_to_col()[row])
        if column < 0:
            empty: List[int] = []
            return column, 0.0, column, empty, empty
        with obs.span("matching.sparse.row_removal", row=row) as sp:
            improvement, end_col, parent_row, parent_hole, pivots = (
                self._row_removal_search(row, column)
            )
            sp.set_attribute("pivots", pivots)
            obs.counter("matching.pivots", pivots)
            obs.counter("matching.warm_resolves")
        return column, improvement, end_col, parent_row, parent_hole

    def total_cost_without_row(self, row: int) -> float:
        """Optimal total cost when ``row`` is removed (non-mutating)."""
        column, improvement, _, _, _ = self._removal_plan(row)
        if column < 0:
            return self.total_cost()
        return float(
            self.total_cost() - self.edge_cost(row, column) + improvement
        )

    def resolve_without_row(self, row: int) -> Tuple[np.ndarray, float]:
        """``(row_to_col, total)`` of the optimum without ``row``."""
        column, improvement, end_col, parent_row, parent_hole = (
            self._removal_plan(row)
        )
        assignment = self.row_to_col()
        total = self.total_cost()
        assignment[row] = -1
        if column >= 0:
            total = total - self.edge_cost(row, column) + improvement
            current = end_col
            while current != column:
                mover = int(parent_row[current])
                assignment[mover] = int(parent_hole[current])
                current = int(parent_hole[current])
        return assignment, total

    def delete_row(self, row: int) -> float:
        """Remove ``row`` permanently; returns the new optimal total.

        Applies the repair chain to the stored matching (same dance as
        the dense solver); the chain's new edges are generally not
        tight under the old potentials, so the next dual-based repair
        triggers one fresh solve over the remaining rows first.
        """
        column, improvement, end_col, parent_row, parent_hole = (
            self._removal_plan(row)
        )
        if column >= 0:
            assert self._total is not None
            self._total = float(
                self._total - self.edge_cost(row, column) + improvement
            )
            self._match_of_col[end_col] = -1
            current = end_col
            while current != column:
                mover = parent_row[current]
                self._match_of_col[parent_hole[current]] = mover
                current = parent_hole[current]
            self._row_to_col_cache = None
            if end_col != column or self._v[column] != 0.0:
                self._duals_stale = True
        self._row_deleted[row] = True
        self._num_active_rows -= 1
        return self.total_cost()


def csr_from_dense(
    matrix: np.ndarray,
    keep: Optional[np.ndarray] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """CSR arrays ``(indptr, indices, data)`` from a dense matrix.

    ``keep`` optionally masks which entries become edges (default: all
    of them).  Convenience for tests and for routing dense-input
    callers (``max_weight_matching``) through the sparse backends.
    """
    dense = np.asarray(matrix, dtype=float)
    if dense.ndim != 2:
        raise MatchingError(
            f"matrix must be 2-D, got ndim={dense.ndim}"
        )
    mask = (
        np.ones(dense.shape, dtype=bool)
        if keep is None
        else np.asarray(keep, dtype=bool)
    )
    if mask.shape != dense.shape:
        raise MatchingError("keep mask must match the matrix shape")
    rows, cols = np.nonzero(mask)
    indptr = np.zeros(dense.shape[0] + 1, dtype=np.int64)
    np.add.at(indptr, rows + 1, 1)
    indptr = np.cumsum(indptr)
    return indptr, cols.astype(np.int64), dense[rows, cols]
