"""Building the task x smartphone weighted bipartite graph.

Section IV-B, "Transforming to matching problem": each task ``τ_{j,k}`` is
a vertex on one side, each smartphone ``i`` a vertex on the other; the edge
weight is ``ν − b_i`` when the smartphone's claimed window covers slot
``j`` and zero otherwise (Fig. 3 of the paper).

The graph owns the weight-to-cost transformation shared by all solves:
negative weights are clamped to zero (equivalent to leaving the pair
unmatched), one zero-weight dummy column per task guarantees a feasible
perfect row assignment, and maximisation becomes minimisation against the
maximum entry.  On top of the cached full optimum, ``ω*(B₋ᵢ)`` queries
are answered by the solver's one-augmentation repair instead of full
re-solves — the difference between ``O(n^4)`` and ``O(n^3)`` for the VCG
payment pass.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MatchingError
from repro.matching.solver import AssignmentSolver
from repro.model.bid import Bid
from repro.model.task import SensingTask, TaskSchedule


class TaskAssignmentGraph:
    """The weighted bipartite graph of one offline allocation instance.

    Rows are tasks (in schedule order), columns are bids (in phone-id
    order).  The weight matrix follows the paper exactly:
    ``w[task][phone] = ν − b_i`` if the phone's claimed window contains the
    task's slot, else ``0``.  Negative entries (claimed cost above the task
    value) are kept as-is in :attr:`weights`; matching treats non-positive
    weights as "never match".
    """

    def __init__(
        self,
        schedule: TaskSchedule,
        bids: Sequence[Bid],
        compatible: Optional[Callable[[SensingTask, Bid], bool]] = None,
    ) -> None:
        """Build the graph.

        ``compatible`` optionally restricts edges beyond the time
        windows — e.g. sensing-capability constraints (the typed-task
        extension in :mod:`repro.extensions.capabilities`).  The paper's
        base model has every phone able to serve every task, which is
        the default (``None``).
        """
        self._schedule = schedule
        ordered_bids = sorted(bids, key=lambda bid: bid.phone_id)
        seen = set()
        for bid in ordered_bids:
            if bid.phone_id in seen:
                raise MatchingError(f"duplicate bid for phone {bid.phone_id}")
            seen.add(bid.phone_id)
        self._bids: Tuple[Bid, ...] = tuple(ordered_bids)
        self._tasks: Tuple[SensingTask, ...] = schedule.tasks
        self._compatible = compatible
        self._col_by_phone: Dict[int, int] = {
            bid.phone_id: col for col, bid in enumerate(self._bids)
        }
        self._row_by_task: Dict[int, int] = {
            task.task_id: row for row, task in enumerate(self._tasks)
        }

        num_rows = len(self._tasks)
        num_cols = len(self._bids)
        raw = np.zeros((num_rows, num_cols), dtype=float)
        if num_rows and num_cols:
            values = np.array([task.value for task in self._tasks])
            costs = np.array([bid.cost for bid in self._bids])
            slots = np.array([task.slot for task in self._tasks])
            arrivals = np.array([bid.arrival for bid in self._bids])
            departures = np.array([bid.departure for bid in self._bids])
            active = (slots[:, None] >= arrivals[None, :]) & (
                slots[:, None] <= departures[None, :]
            )
            if compatible is not None:
                mask = np.array(
                    [
                        [compatible(task, bid) for bid in self._bids]
                        for task in self._tasks
                    ],
                    dtype=bool,
                )
                active &= mask
            raw = np.where(active, values[:, None] - costs[None, :], 0.0)
        self._raw_weights = raw
        self._solver: Optional[AssignmentSolver] = None
        self._max_entry = 0.0

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def tasks(self) -> Tuple[SensingTask, ...]:
        """Row vertices: the tasks, in schedule order."""
        return self._tasks

    @property
    def bids(self) -> Tuple[Bid, ...]:
        """Column vertices: the bids, in phone-id order."""
        return self._bids

    @property
    def weights(self) -> List[List[float]]:
        """A copy of the raw weight matrix (rows = tasks, cols = bids)."""
        return [list(row) for row in self._raw_weights]

    @property
    def num_edges(self) -> int:
        """Number of strictly useful edges (positive weight)."""
        return int((self._raw_weights > 0.0).sum())

    def weight(self, task_id: int, phone_id: int) -> float:
        """Edge weight between a task and a phone, by their ids."""
        try:
            row = self._row_by_task[task_id]
        except KeyError:
            raise MatchingError(f"unknown task_id {task_id}") from None
        try:
            col = self._col_by_phone[phone_id]
        except KeyError:
            raise MatchingError(f"unknown phone_id {phone_id}") from None
        return float(self._raw_weights[row, col])

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def _ensure_solver(self) -> AssignmentSolver:
        if self._solver is None:
            num_rows, num_cols = self._raw_weights.shape
            clamped = np.maximum(self._raw_weights, 0.0)
            self._max_entry = float(clamped.max()) if clamped.size else 0.0
            # One dummy column per row: rows may stay effectively
            # unmatched at weight zero.
            cost = np.full(
                (num_rows, num_cols + num_rows), self._max_entry
            )
            cost[:, :num_cols] = self._max_entry - clamped
            self._solver = AssignmentSolver(cost)
        return self._solver

    def solve(
        self, exclude_phone: Optional[int] = None
    ) -> Tuple[Dict[int, int], float]:
        """Maximum-weight allocation as ``task_id -> phone_id``.

        ``exclude_phone`` removes one phone's column before solving — the
        ``ω*(B₋ᵢ)`` computation.  Returns the allocation and its claimed
        social welfare ``ω*``.  The full solve is cached; exclusions
        build a fresh reduced instance (use :meth:`welfare_without_phone`
        for the fast repair-based welfare-only query).
        """
        if not self._tasks.__len__() or not self._bids:
            return {}, 0.0
        if exclude_phone is None:
            solver = self._ensure_solver()
            row_to_col, _ = solver.solve()
            return self._extract_allocation(row_to_col, list(self._bids))

        if exclude_phone not in self._col_by_phone:
            raise MatchingError(
                f"exclude_phone {exclude_phone} is not a column of this "
                f"graph"
            )
        kept_bids = [
            bid for bid in self._bids if bid.phone_id != exclude_phone
        ]
        reduced = TaskAssignmentGraph(
            self._schedule, kept_bids, compatible=self._compatible
        )
        return reduced.solve()

    def welfare_without_phone(self, phone_id: int) -> float:
        """``ω*(B₋ᵢ)`` via the solver's one-augmentation repair.

        Returns only the welfare (the VCG payment needs nothing more);
        equal to ``self.solve(exclude_phone=phone_id)[1]`` but roughly a
        factor ``n`` faster.  Tests cross-check the two paths.
        """
        try:
            column = self._col_by_phone[phone_id]
        except KeyError:
            raise MatchingError(
                f"phone {phone_id} is not a column of this graph"
            ) from None
        if not self._tasks:
            return 0.0
        solver = self._ensure_solver()
        solver.solve()
        reduced_cost = solver.total_cost_without_column(column)
        return len(self._tasks) * self._max_entry - reduced_cost

    def _extract_allocation(
        self, row_to_col: np.ndarray, bids: List[Bid]
    ) -> Tuple[Dict[int, int], float]:
        allocation: Dict[int, int] = {}
        welfare = 0.0
        num_real_cols = len(bids)
        for row, col in enumerate(row_to_col):
            col = int(col)
            if col < 0 or col >= num_real_cols:
                continue  # dummy column: task left unserved
            gain = float(self._raw_weights[row, col])
            if gain <= 0.0:
                continue  # zero-weight edge: equivalent to unmatched
            allocation[self._tasks[row].task_id] = bids[col].phone_id
            welfare += gain
        return allocation, welfare
