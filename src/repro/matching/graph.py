"""Building the task x smartphone weighted bipartite graph.

Section IV-B, "Transforming to matching problem": each task ``τ_{j,k}`` is
a vertex on one side, each smartphone ``i`` a vertex on the other; the edge
weight is ``ν − b_i`` when the smartphone's claimed window covers slot
``j`` and zero otherwise (Fig. 3 of the paper).

The graph is interval-structured — an edge (task, phone) exists only when
``ã_i ≤ slot ≤ d̃_i`` — so with short active windows it is overwhelmingly
sparse.  Construction therefore never materialises the dense
``tasks x bids`` matrix: the active pairs are collected directly from the
``(arrival, departure, slot)`` arrays into CSR form, one vectorised
active-bids scan per distinct slot, and any ``compatible`` callback is
evaluated on interval-active pairs only.  A dense matrix is materialised
lazily, and only for the backends (``"numpy"``, ``"python"``) and
accessors (:attr:`weights`) that genuinely need one.

The graph owns the weight-to-cost transformation shared by all solves:
negative weights are clamped to zero (equivalent to leaving the pair
unmatched), a zero-weight dummy column per task guarantees a feasible
perfect row assignment, and maximisation becomes minimisation against the
maximum entry.  On top of the cached full optimum, ``ω*(B₋ᵢ)`` queries
are answered by the solver's one-augmentation repair instead of full
re-solves — the difference between ``O(n^4)`` and ``O(n^3)`` for the VCG
payment pass.  Both warm backends return the *repaired matching* and the
graph re-prices it from raw edge weights, so the dense and sparse engines
produce bit-identical reduced welfare (and hence VCG payments) whenever
they agree on the matching.

Backend dispatch: ``backend=None`` defers to the session default of
:mod:`repro.matching.backend` (``"auto"`` out of the box).  ``"auto"``
measures the instance and picks the CSR ``"sparse"`` engine when the
graph is both large (``tasks x bids >= AUTO_SPARSE_MIN_CELLS``) and
sparse (edge density ``<= AUTO_SPARSE_MAX_DENSITY``), falling back to the
vectorised dense ``"numpy"`` engine otherwise — small instances solve in
milliseconds dense, and the constants keep every paper-scale workload
(``num_slots <= ~100``) on the historically-benchmarked dense path.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MatchingError
from repro.matching.backend import (
    require_backend_available,
    resolve_backend,
)
from repro.matching.solver import AssignmentSolver
from repro.matching.sparse import SparseAssignmentSolver
from repro.model.bid import Bid
from repro.model.task import SensingTask, TaskSchedule

#: ``auto`` picks the sparse engine only above this many dense cells
#: (tasks x bids); below it the vectorised dense solver is already fast
#: and keeps the long-benchmarked paper-scale path byte-stable.
AUTO_SPARSE_MIN_CELLS = 200_000

#: ... and only when the fraction of interval-active pairs is at most
#: this dense.  Above it the CSR adjacency stops paying for itself.
AUTO_SPARSE_MAX_DENSITY = 0.25

#: Backends whose solver supports warm-started repair queries.
_WARM_BACKENDS = ("numpy", "sparse")


def _sum_gains(gains: np.ndarray) -> float:
    """Canonical welfare total: the positive gains summed in sorted order.

    The optimum of a round is often degenerate (equal task values make
    task-permutation ties), so different backends may legitimately
    return different optimal matchings whose gain *multisets* coincide.
    Summing the gains in sorted order makes the reported welfare — and
    therefore every VCG payment — a bit-identical function of that
    multiset, independent of which tied optimum a backend happened to
    find.
    """
    if not gains.size:
        return 0.0
    return float(np.sort(gains).sum())


class TaskAssignmentGraph:
    """The weighted bipartite graph of one offline allocation instance.

    Rows are tasks (in schedule order), columns are bids (in phone-id
    order).  The weight follows the paper exactly:
    ``w[task][phone] = ν − b_i`` if the phone's claimed window contains the
    task's slot, else ``0``.  Active pairs with negative weight (claimed
    cost above the task value) are kept as stored edges so
    :meth:`weight` reports them; matching treats non-positive weights as
    "never match".
    """

    def __init__(
        self,
        schedule: TaskSchedule,
        bids: Sequence[Bid],
        compatible: Optional[Callable[[SensingTask, Bid], bool]] = None,
        backend: Optional[str] = None,
    ) -> None:
        """Build the graph.

        ``compatible`` optionally restricts edges beyond the time
        windows — e.g. sensing-capability constraints (the typed-task
        extension in :mod:`repro.extensions.capabilities`); it is
        evaluated only on interval-active pairs.  ``backend`` picks the
        matching engine (see :mod:`repro.matching.backend`); ``None``
        defers to the session default, and ``"auto"`` dispatches on
        instance size and edge density.
        """
        self._schedule = schedule
        ordered_bids = sorted(bids, key=lambda bid: bid.phone_id)
        seen = set()
        for bid in ordered_bids:
            if bid.phone_id in seen:
                raise MatchingError(f"duplicate bid for phone {bid.phone_id}")
            seen.add(bid.phone_id)
        self._bids: Tuple[Bid, ...] = tuple(ordered_bids)
        self._tasks: Tuple[SensingTask, ...] = schedule.tasks
        self._compatible = compatible
        self._backend_request = backend
        self._col_by_phone: Dict[int, int] = {
            bid.phone_id: col for col, bid in enumerate(self._bids)
        }
        self._row_by_task: Dict[int, int] = {
            task.task_id: row for row, task in enumerate(self._tasks)
        }

        self._build_edges()
        self._resolved_backend: Optional[str] = None
        self._solver: Optional[object] = None
        self._dense_raw_cache: Optional[np.ndarray] = None
        self._cold_assignment_cache: Optional[np.ndarray] = None
        self._gain_vector: Optional[np.ndarray] = None
        self._base_assignment: Optional[np.ndarray] = None

    def _build_edges(self) -> None:
        """Collect the interval-active pairs into CSR form.

        One vectorised arrival/departure scan per *distinct slot* — never
        a ``tasks x bids`` allocation — so a 1000-slot instance with tens
        of thousands of bids builds in ``O(slots * bids + E)`` time and
        ``O(E)`` memory.  The ``compatible`` callback, when present, is
        evaluated on the interval-active pairs only.
        """
        num_rows = len(self._tasks)
        num_cols = len(self._bids)
        counts = np.zeros(num_rows, dtype=np.int64)
        col_chunks: List[np.ndarray] = []
        weight_chunks: List[np.ndarray] = []
        if num_rows and num_cols:
            arrivals = np.array([bid.arrival for bid in self._bids])
            departures = np.array([bid.departure for bid in self._bids])
            costs = np.array([bid.cost for bid in self._bids])
            slots = np.array([task.slot for task in self._tasks])
            values = np.array([task.value for task in self._tasks])
            # Tasks are schedule-ordered by (slot, index): rows sharing a
            # slot are contiguous and share one active-bid scan.
            unique_slots, starts = np.unique(slots, return_index=True)
            boundaries = np.append(starts, num_rows)
            for slot, row_start, row_end in zip(
                unique_slots.tolist(), boundaries[:-1], boundaries[1:]
            ):
                active_cols = np.nonzero(
                    (arrivals <= slot) & (departures >= slot)
                )[0]
                for row in range(int(row_start), int(row_end)):
                    cols = active_cols
                    if self._compatible is not None and cols.size:
                        keep = np.fromiter(
                            (
                                self._compatible(
                                    self._tasks[row], self._bids[int(col)]
                                )
                                for col in cols
                            ),
                            dtype=bool,
                            count=cols.size,
                        )
                        cols = cols[keep]
                    counts[row] = cols.size
                    if cols.size:
                        col_chunks.append(cols.astype(np.int64))
                        weight_chunks.append(values[row] - costs[cols])
        self._indptr = np.concatenate(
            [[0], np.cumsum(counts)]
        ).astype(np.int64)
        if col_chunks:
            self._edge_cols = np.concatenate(col_chunks)
            self._edge_weights = np.concatenate(weight_chunks)
        else:
            self._edge_cols = np.empty(0, dtype=np.int64)
            self._edge_weights = np.empty(0)
        positive = self._edge_weights > 0.0
        self._num_positive_edges = int(positive.sum())
        self._max_entry = (
            float(self._edge_weights[positive].max())
            if self._num_positive_edges
            else 0.0
        )

    # ------------------------------------------------------------------
    # Structure accessors
    # ------------------------------------------------------------------
    @property
    def tasks(self) -> Tuple[SensingTask, ...]:
        """Row vertices: the tasks, in schedule order."""
        return self._tasks

    @property
    def bids(self) -> Tuple[Bid, ...]:
        """Column vertices: the bids, in phone-id order."""
        return self._bids

    @property
    def weights(self) -> List[List[float]]:
        """A copy of the raw weight matrix (rows = tasks, cols = bids).

        Materialises the dense matrix — diagnostics and small-instance
        accessor only; the sparse solve path never calls it.
        """
        return [list(row) for row in self._dense_raw()]

    @property
    def num_edges(self) -> int:
        """Number of strictly useful edges (positive weight)."""
        return self._num_positive_edges

    @property
    def num_active_pairs(self) -> int:
        """Interval-active (task, bid) pairs, profitable or not."""
        return int(self._edge_cols.shape[0])

    @property
    def edge_density(self) -> float:
        """Active pairs as a fraction of the dense ``tasks x bids`` grid."""
        cells = len(self._tasks) * len(self._bids)
        if not cells:
            return 0.0
        return self.num_active_pairs / cells

    def weight(self, task_id: int, phone_id: int) -> float:
        """Edge weight between a task and a phone, by their ids."""
        try:
            row = self._row_by_task[task_id]
        except KeyError:
            raise MatchingError(f"unknown task_id {task_id}") from None
        try:
            col = self._col_by_phone[phone_id]
        except KeyError:
            raise MatchingError(f"unknown phone_id {phone_id}") from None
        return self._pair_weight(row, col)

    def _pair_weight(self, row: int, col: int) -> float:
        """Stored weight of ``(row, col)``; ``0.0`` for inactive pairs."""
        start = int(self._indptr[row])
        end = int(self._indptr[row + 1])
        position = start + int(
            np.searchsorted(self._edge_cols[start:end], col)
        )
        if position < end and int(self._edge_cols[position]) == col:
            return float(self._edge_weights[position])
        return 0.0

    def _dense_raw(self) -> np.ndarray:
        """The dense raw weight matrix, materialised lazily and cached."""
        if self._dense_raw_cache is None:
            raw = np.zeros((len(self._tasks), len(self._bids)))
            if self._edge_cols.size:
                rows = np.repeat(
                    np.arange(len(self._tasks), dtype=np.int64),
                    np.diff(self._indptr),
                )
                raw[rows, self._edge_cols] = self._edge_weights
            self._dense_raw_cache = raw
        return self._dense_raw_cache

    def _positive_csr(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """CSR arrays of the strictly profitable edges."""
        positive = self._edge_weights > 0.0
        rows = np.repeat(
            np.arange(len(self._tasks), dtype=np.int64),
            np.diff(self._indptr),
        )[positive]
        counts = np.bincount(rows, minlength=len(self._tasks))
        indptr = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
        return indptr, self._edge_cols[positive], self._edge_weights[positive]

    # ------------------------------------------------------------------
    # Backend dispatch
    # ------------------------------------------------------------------
    @property
    def solver_backend(self) -> str:
        """The concrete engine this graph solves with (resolves ``auto``)."""
        if self._resolved_backend is None:
            chosen = resolve_backend(self._backend_request)
            if chosen == "auto":
                cells = len(self._tasks) * len(self._bids)
                is_sparse = (
                    cells >= AUTO_SPARSE_MIN_CELLS
                    and self.edge_density <= AUTO_SPARSE_MAX_DENSITY
                )
                chosen = "sparse" if is_sparse else "numpy"
            self._resolved_backend = require_backend_available(chosen)
        return self._resolved_backend

    def _ensure_solver(self):
        """The warm solver (dense or CSR) for this graph, built lazily."""
        if self._solver is None:
            num_rows, num_cols = len(self._tasks), len(self._bids)
            if self.solver_backend == "sparse":
                indptr, cols, weights = self._positive_csr()
                self._solver = SparseAssignmentSolver(
                    num_rows,
                    num_cols,
                    indptr,
                    cols,
                    self._max_entry - weights,
                    dummy_cost=self._max_entry,
                )
            else:
                clamped = np.maximum(self._dense_raw(), 0.0)
                # One dummy column per row: rows may stay effectively
                # unmatched at weight zero.
                cost = np.full(
                    (num_rows, num_cols + num_rows), self._max_entry
                )
                cost[:, :num_cols] = self._max_entry - clamped
                self._solver = AssignmentSolver(cost)
        return self._solver

    def _cold_assignment(self) -> np.ndarray:
        """``row -> col`` from the repair-less backends, cached."""
        if self._cold_assignment_cache is None:
            num_rows, num_cols = len(self._tasks), len(self._bids)
            if self.solver_backend == "scipy":
                from repro.matching.scipy_backend import (
                    solve_csr_min_weight,
                )

                indptr, cols, weights = self._positive_csr()
                assignment = solve_csr_min_weight(
                    num_rows,
                    num_cols,
                    indptr,
                    cols,
                    self._max_entry - weights,
                    dummy_cost=self._max_entry,
                )
            else:
                from repro.matching.hungarian import solve_assignment_min

                clamped = np.maximum(self._dense_raw(), 0.0)
                cost = np.full(
                    (num_rows, num_cols + num_rows), self._max_entry
                )
                cost[:, :num_cols] = self._max_entry - clamped
                assignment_list, _ = solve_assignment_min(cost.tolist())
                assignment = np.asarray(assignment_list, dtype=np.int64)
            self._cold_assignment_cache = assignment
        return self._cold_assignment_cache

    # ------------------------------------------------------------------
    # Solving
    # ------------------------------------------------------------------
    def solve(
        self, exclude_phone: Optional[int] = None
    ) -> Tuple[Dict[int, int], float]:
        """Maximum-weight allocation as ``task_id -> phone_id``.

        ``exclude_phone`` removes one phone's column before solving — the
        ``ω*(B₋ᵢ)`` computation.  Returns the allocation and its claimed
        social welfare ``ω*``.  The full solve is cached; exclusions
        build a fresh reduced instance (use :meth:`welfare_without_phone`
        for the fast repair-based welfare-only query).
        """
        if not self._tasks.__len__() or not self._bids:
            return {}, 0.0
        if exclude_phone is None:
            if self.solver_backend in _WARM_BACKENDS:
                row_to_col, _ = self._ensure_solver().solve()
            else:
                row_to_col = self._cold_assignment()
            return self._extract_allocation(row_to_col, list(self._bids))

        if exclude_phone not in self._col_by_phone:
            raise MatchingError(
                f"exclude_phone {exclude_phone} is not a column of this "
                f"graph"
            )
        kept_bids = [
            bid for bid in self._bids if bid.phone_id != exclude_phone
        ]
        reduced = TaskAssignmentGraph(
            self._schedule,
            kept_bids,
            compatible=self._compatible,
            backend=self._backend_request,
        )
        return reduced.solve()

    def welfare_without_phone(self, phone_id: int) -> float:
        """``ω*(B₋ᵢ)`` via the solver's one-augmentation repair.

        Returns only the welfare (the VCG payment needs nothing more);
        equal to ``self.solve(exclude_phone=phone_id)[1]`` but roughly a
        factor ``n`` faster on the warm backends.  The repaired matching
        is re-priced from raw edge weights (not from dual arithmetic),
        so dense and sparse engines agree bit-for-bit whenever they
        agree on the matching.  Tests cross-check against the cold
        exclusion solve.
        """
        try:
            column = self._col_by_phone[phone_id]
        except KeyError:
            raise MatchingError(
                f"phone {phone_id} is not a column of this graph"
            ) from None
        if not self._tasks:
            return 0.0
        if self.solver_backend not in _WARM_BACKENDS:
            return self.solve(exclude_phone=phone_id)[1]
        solver = self._ensure_solver()
        solver.solve()
        repaired = solver.matching_without_column(column)
        return self._assignment_welfare(repaired)

    def _ensure_gains(self) -> np.ndarray:
        """Per-row profitable gain of the cached full optimum."""
        if self._gain_vector is None:
            assignment = self._ensure_solver().row_to_col()
            num_cols = len(self._bids)
            gains = np.zeros(len(self._tasks))
            for row, col in enumerate(assignment):
                col = int(col)
                if 0 <= col < num_cols:
                    gain = self._pair_weight(row, col)
                    if gain > 0.0:
                        gains[row] = gain
            self._base_assignment = assignment
            self._gain_vector = gains
        return self._gain_vector

    def _assignment_welfare(self, assignment: np.ndarray) -> float:
        """Welfare of a repaired matching, re-priced from raw weights.

        Only rows that moved relative to the cached optimum are looked
        up; the total is then canonicalised by :func:`_sum_gains`.
        """
        gains = self._ensure_gains()
        assert self._base_assignment is not None
        num_cols = len(self._bids)
        changed = np.nonzero(assignment != self._base_assignment)[0]
        if changed.size:
            gains = gains.copy()
            for row in changed.tolist():
                col = int(assignment[row])
                gain = (
                    self._pair_weight(row, col)
                    if 0 <= col < num_cols
                    else 0.0
                )
                gains[row] = gain if gain > 0.0 else 0.0
        return _sum_gains(gains[gains > 0.0])

    def _extract_allocation(
        self, row_to_col: np.ndarray, bids: List[Bid]
    ) -> Tuple[Dict[int, int], float]:
        allocation: Dict[int, int] = {}
        gains: List[float] = []
        num_real_cols = len(bids)
        for row, col in enumerate(row_to_col):
            col = int(col)
            if col < 0 or col >= num_real_cols:
                continue  # dummy column: task left unserved
            gain = self._pair_weight(row, col)
            if gain <= 0.0:
                continue  # zero-weight edge: equivalent to unmatched
            allocation[self._tasks[row].task_id] = bids[col].phone_id
            gains.append(gain)
        return allocation, _sum_gains(np.asarray(gains))
