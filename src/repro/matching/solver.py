"""Vectorised assignment solver with one-column-removal sensitivity.

The offline VCG mechanism needs one full optimum ``ω*(B)`` plus one
reduced optimum ``ω*(B₋ᵢ)`` *per winner*.  Re-solving from scratch per
winner costs ``O(n^4)`` overall; this solver instead:

* solves the full min-cost assignment once with a numpy-vectorised
  shortest-augmenting-path Hungarian (Jonker-Volgenant style potentials),
* answers "total cost without column ``j``" by *repairing* the cached
  optimum: un-match the row paired with ``j`` and run a single
  augmenting-path search with ``j`` forbidden.  The cached dual
  potentials remain feasible on the reduced column set, and one
  augmentation restores optimality for all rows — the standard
  sensitivity-analysis result for the assignment problem.  Each repair is
  ``O(cols^2)`` instead of a full solve.

Correctness of the repair is cross-checked against full re-solves by the
property tests in ``tests/matching/``.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import MatchingError


class AssignmentSolver:
    """Minimum-cost assignment of ``n`` rows to ``m >= n`` columns.

    Every row is matched to a distinct column (callers model optional
    rows by adding dummy columns).  The matrix is copied; the solver is
    immutable after construction apart from lazy solving.
    """

    def __init__(self, cost: np.ndarray) -> None:
        matrix = np.asarray(cost, dtype=float)
        if matrix.ndim != 2:
            raise MatchingError(
                f"cost must be a 2-D matrix, got ndim={matrix.ndim}"
            )
        if not np.all(np.isfinite(matrix)):
            raise MatchingError("cost matrix entries must be finite")
        num_rows, num_cols = matrix.shape
        if num_rows > num_cols:
            raise MatchingError(
                f"AssignmentSolver requires rows <= cols, got "
                f"{num_rows} x {num_cols}"
            )
        self._cost = matrix.copy()
        self._num_rows = num_rows
        self._num_cols = num_cols
        self._solved = False
        self._u = np.zeros(num_rows)
        self._v = np.zeros(num_cols)
        # match_of_col[j] = row matched to column j, -1 when free.
        self._match_of_col = np.full(num_cols, -1, dtype=np.int64)

    @property
    def shape(self) -> Tuple[int, int]:
        """``(rows, cols)`` of the cost matrix."""
        return self._num_rows, self._num_cols

    # ------------------------------------------------------------------
    # Core augmenting-path step
    # ------------------------------------------------------------------
    @staticmethod
    def _augment(
        cost: np.ndarray,
        u: np.ndarray,
        v: np.ndarray,
        match_of_col: np.ndarray,
        row: int,
        forbidden: Optional[int] = None,
    ) -> int:
        """Insert ``row`` into the matching via one Dijkstra-style search.

        Mutates ``u``, ``v``, ``match_of_col`` in place.  ``forbidden``
        excludes one column entirely (used by the sensitivity repair).
        Returns the number of tree-growth iterations (pivots) the search
        needed — the telemetry layer's unit of matching work.
        """
        num_cols = v.shape[0]
        min_slack = np.full(num_cols, np.inf)
        parent = np.full(num_cols, -2, dtype=np.int64)  # -1 = tree root
        in_tree = np.zeros(num_cols, dtype=bool)
        if forbidden is not None:
            in_tree[forbidden] = True  # never enter; never dual-updated
            tree_cols = []
        else:
            tree_cols = []

        pivots = 0
        current_row = row
        previous_col = -1
        while True:
            pivots += 1
            reduced = cost[current_row] - u[current_row] - v
            better = (~in_tree) & (reduced < min_slack)
            min_slack[better] = reduced[better]
            parent[better] = previous_col

            masked = np.where(in_tree, np.inf, min_slack)
            next_col = int(np.argmin(masked))
            delta = masked[next_col]
            if not np.isfinite(delta):
                raise MatchingError(
                    "no augmenting path: the reduced problem has no "
                    "perfect row assignment"
                )

            # Dual update: rows/cols on the alternating tree shift by
            # delta, slacks of outside columns shrink by delta.
            u[row] += delta
            if tree_cols:
                tree_idx = np.asarray(tree_cols, dtype=np.int64)
                u[match_of_col[tree_idx]] += delta
                v[tree_idx] -= delta
            outside = ~in_tree
            min_slack[outside] -= delta

            in_tree[next_col] = True
            tree_cols.append(next_col)
            if match_of_col[next_col] == -1:
                final_col = next_col
                break
            current_row = int(match_of_col[next_col])
            previous_col = next_col

        # Flip matched edges along the path back to the root.
        col = final_col
        while True:
            prev = int(parent[col])
            if prev == -1:
                match_of_col[col] = row
                break
            match_of_col[col] = match_of_col[prev]
            col = prev
        return pivots

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self) -> Tuple[np.ndarray, float]:
        """The optimal assignment: ``(row_to_col, total_cost)``.

        ``row_to_col[i]`` is the column matched to row ``i``.  Cached
        after the first call.
        """
        if not self._solved:
            with obs.span(
                "matching.solver.solve",
                rows=self._num_rows,
                cols=self._num_cols,
            ) as sp:
                pivots = 0
                for row in range(self._num_rows):
                    pivots += self._augment(
                        self._cost, self._u, self._v, self._match_of_col, row
                    )
                self._solved = True
                sp.set_attribute("pivots", pivots)
                obs.counter("matching.augmentations", self._num_rows)
                obs.counter("matching.pivots", pivots)
        return self.row_to_col(), self.total_cost()

    def row_to_col(self) -> np.ndarray:
        """The cached assignment as ``row -> col`` (solves if needed)."""
        if not self._solved:
            self.solve()
        row_to_col = np.full(self._num_rows, -1, dtype=np.int64)
        matched = self._match_of_col >= 0
        row_to_col[self._match_of_col[matched]] = np.nonzero(matched)[0]
        return row_to_col

    def total_cost(self) -> float:
        """Total cost of the cached optimum (solves if needed)."""
        if not self._solved:
            self.solve()
        cols = np.nonzero(self._match_of_col >= 0)[0]
        rows = self._match_of_col[cols]
        return float(self._cost[rows, cols].sum())

    def total_cost_without_column(self, column: int) -> float:
        """Optimal total cost when ``column`` is removed.

        Uses the single-augmentation repair described in the module
        docstring; the solver's own state is untouched.
        """
        if not (0 <= column < self._num_cols):
            raise MatchingError(
                f"column {column} outside [0, {self._num_cols})"
            )
        if self._num_rows >= self._num_cols:
            raise MatchingError(
                "cannot remove a column: every column is needed to match "
                "all rows (add dummy columns)"
            )
        if not self._solved:
            self.solve()

        displaced_row = int(self._match_of_col[column])
        if displaced_row == -1:
            return self.total_cost()

        with obs.span("matching.solver.repair", column=column) as sp:
            u = self._u.copy()
            v = self._v.copy()
            match_of_col = self._match_of_col.copy()
            match_of_col[column] = -1
            pivots = self._augment(
                self._cost, u, v, match_of_col, displaced_row, forbidden=column
            )
            sp.set_attribute("pivots", pivots)
            obs.counter("matching.pivots", pivots)
            cols = np.nonzero(match_of_col >= 0)[0]
            rows = match_of_col[cols]
            return float(self._cost[rows, cols].sum())
