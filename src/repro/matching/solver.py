"""Vectorised assignment solver with warm-started sensitivity queries.

The offline VCG mechanism needs one full optimum ``ω*(B)`` plus one
reduced optimum ``ω*(B₋ᵢ)`` *per winner*.  Re-solving from scratch per
winner costs ``O(n^4)`` overall; this solver instead:

* solves the full min-cost assignment once with a numpy-vectorised
  shortest-augmenting-path Hungarian (Jonker-Volgenant style
  potentials).  Dual updates are deferred: each augmentation runs one
  Dijkstra search over reduced costs and applies a *single* vectorised
  potential update at the end, instead of re-pricing the whole tree on
  every pivot.  Rows are inserted in index order with a
  lowest-index-first tie-break so the matching — ties included — is the
  same deterministic function of the matrix as the pure-Python
  reference solver.
* answers "total cost without column ``j``" by *repairing* the cached
  optimum: the cached dual potentials remain feasible on the reduced
  column set, so one Dijkstra pass from the displaced row — with ``j``
  forbidden — prices the repair exactly.  The query is distance-only:
  no potentials are copied or updated and no matching is flipped,
  because the reduced optimum's *cost* is ``total - cost[r][j] + dist +
  u[r] + v[f]`` where ``dist`` is the shortest reduced distance from the
  displaced row ``r`` to the free column ``f`` that ends the path (the
  ``u``/``v`` terms restore the true-cost scale of the alternating
  path).  Each repair is ``O(cols^2)`` instead of a full solve.
* answers row-removal queries with a single shortest-path pass:
  deleting a row frees its column, and the optimum of the reduced
  problem is the remaining matching plus the cheapest *reassignment
  chain* into that freed column (a row moves onto it, freeing its own
  column for the next row, and so on; the symmetric-difference argument
  shows one chain suffices because any cycle or chain avoiding the
  freed column was already available — and therefore non-improving —
  in the full problem).  The chain search is one Dijkstra over reduced
  costs with the freed column as source, pricing a move of row ``r``
  into hole ``h`` at ``cost[r][h] - u[r] - v[h]`` and crediting a chain
  that ends by freeing column ``c`` with ``-v[c]``.
  :meth:`total_cost_without_row`, :meth:`resolve_without_row` and the
  mutating :meth:`delete_row` all use it.

Correctness of the repairs is cross-checked against full re-solves by
the property tests in ``tests/matching/`` and
``tests/properties/test_warm_start_properties.py``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import MatchingError

_INF = float("inf")


class AssignmentSolver:
    """Minimum-cost assignment of ``n`` rows to ``m >= n`` columns.

    Every row is matched to a distinct column (callers model optional
    rows by adding dummy columns).  The matrix is copied; apart from
    lazy solving and explicit :meth:`delete_row` calls the solver is
    immutable after construction.
    """

    def __init__(self, cost: np.ndarray) -> None:
        matrix = np.asarray(cost, dtype=float)
        if matrix.ndim != 2:
            raise MatchingError(
                f"cost must be a 2-D matrix, got ndim={matrix.ndim}"
            )
        if not np.all(np.isfinite(matrix)):
            raise MatchingError("cost matrix entries must be finite")
        num_rows, num_cols = matrix.shape
        if num_rows > num_cols:
            raise MatchingError(
                f"AssignmentSolver requires rows <= cols, got "
                f"{num_rows} x {num_cols}"
            )
        self._cost = matrix.copy()
        self._num_rows = num_rows
        self._num_cols = num_cols
        self._solved = False
        self._u = np.zeros(num_rows)
        self._v = np.zeros(num_cols)
        # ``cost - v`` maintained incrementally: the Dijkstra hot loop
        # reads one row of it per pivot instead of recombining
        # ``cost``/``v`` arrays every time.
        self._cost_minus_v = self._cost.copy()
        # match_of_col[j] = row matched to column j, -1 when free.
        self._match_of_col = np.full(num_cols, -1, dtype=np.int64)
        self._row_deleted = np.zeros(num_rows, dtype=bool)
        self._num_active_rows = num_rows
        # Set by delete_row when a reassignment chain left matched
        # edges non-tight; dual-based repairs re-solve lazily first.
        self._duals_stale = False
        self._total: Optional[float] = None
        # Scratch buffers reused by every Dijkstra pass.
        self._shortest = np.empty(num_cols)
        self._unvisited = np.empty(num_cols, dtype=bool)
        self._improve = np.empty(num_cols, dtype=bool)
        self._parent = np.empty(num_cols, dtype=np.int64)

    @property
    def shape(self) -> Tuple[int, int]:
        """``(rows, cols)`` of the cost matrix."""
        return self._num_rows, self._num_cols

    @property
    def num_active_rows(self) -> int:
        """Rows still present (total rows minus :meth:`delete_row` calls)."""
        return self._num_active_rows

    # ------------------------------------------------------------------
    # Core shortest-augmenting-path search
    # ------------------------------------------------------------------
    def _dijkstra(
        self,
        row: int,
        forbidden: Optional[int],
        parent: Optional[np.ndarray],
    ) -> Tuple[float, int, int, List[int], List[float]]:
        """Shortest alternating path from ``row`` to any free column.

        Runs over reduced costs ``cost[i][j] - u[i] - v[j]`` without
        touching any solver state.  ``forbidden`` excludes one column
        entirely (treated as already retired).  When ``parent`` is
        given, ``parent[j]`` records the predecessor column on the best
        known path to ``j`` (needed only when the caller will flip the
        matching afterwards).

        Returns ``(distance, free_col, pivots, retired_cols,
        retired_dist)`` where ``distance`` is the shortest reduced-cost
        distance to ``free_col`` and the retired lists hold the columns
        scanned into the Dijkstra tree with their final distances (the
        inputs of the deferred dual update).
        """
        cost_minus_v = self._cost_minus_v
        u = self._u
        match_of_col = self._match_of_col

        # ``shortest`` doubles as the frontier: retired columns are set
        # to +inf so a plain argmin always yields the nearest open one.
        shortest = self._shortest
        unvisited = self._unvisited
        improve = self._improve
        shortest.fill(_INF)
        unvisited.fill(True)
        if forbidden is not None:
            unvisited[forbidden] = False

        retired_cols: List[int] = []
        retired_dist: List[float] = []
        pivots = 0
        min_val = 0.0
        current_row = row
        previous_col = -1
        while True:
            pivots += 1
            # Absolute reduced distance through ``current_row``; the
            # potentials of tree rows are untouched during the search,
            # so one row-vector expression per pivot suffices.
            slack = cost_minus_v[current_row] - (u[current_row] - min_val)
            np.less(slack, shortest, out=improve)
            improve &= unvisited
            np.copyto(shortest, slack, where=improve)
            if parent is not None:
                np.copyto(parent, previous_col, where=improve)

            next_col = int(shortest.argmin())
            min_val = float(shortest[next_col])
            if not np.isfinite(min_val):
                raise MatchingError(
                    "no augmenting path: the reduced problem has no "
                    "perfect row assignment"
                )
            if match_of_col[next_col] == -1:
                return min_val, next_col, pivots, retired_cols, retired_dist
            unvisited[next_col] = False
            shortest[next_col] = _INF
            retired_cols.append(next_col)
            retired_dist.append(min_val)
            current_row = int(match_of_col[next_col])
            previous_col = next_col

    def _augment(self, row: int) -> int:
        """Insert ``row`` into the matching; one Dijkstra + one dual pass.

        Returns the number of tree-growth iterations (pivots) the search
        needed — the telemetry layer's unit of matching work.
        """
        parent = self._parent
        parent.fill(-2)
        min_val, free_col, pivots, retired_cols, retired_dist = (
            self._dijkstra(row, None, parent)
        )

        # Deferred dual update: one vectorised pass over the tree.  Must
        # run before the flip (it reads the pre-augmentation matching).
        self._u[row] += min_val
        if retired_cols:
            cols = np.asarray(retired_cols, dtype=np.int64)
            delta = np.asarray(retired_dist) - min_val
            self._u[self._match_of_col[cols]] -= delta
            self._v[cols] += delta
            self._cost_minus_v[:, cols] -= delta

        # Flip matched edges along the path back to the root.
        col = free_col
        while True:
            prev = int(parent[col])
            if prev == -1:
                self._match_of_col[col] = row
                break
            self._match_of_col[col] = self._match_of_col[prev]
            col = prev
        return pivots

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def solve(self) -> Tuple[np.ndarray, float]:
        """The optimal assignment: ``(row_to_col, total_cost)``.

        ``row_to_col[i]`` is the column matched to row ``i``.  Cached
        after the first call.
        """
        if not self._solved:
            with obs.span(
                "matching.solver.solve",
                rows=self._num_rows,
                cols=self._num_cols,
            ) as sp:
                # Rows are inserted in index order with the same
                # nearest-column-first tie-break at every pivot, so the
                # matching (ties included) is a deterministic function
                # of the matrix alone — mechanisms rely on that.
                pivots = 0
                for row in range(self._num_rows):
                    if not self._row_deleted[row]:
                        pivots += self._augment(row)
                self._solved = True
                cols = np.nonzero(self._match_of_col >= 0)[0]
                rows = self._match_of_col[cols]
                self._total = float(self._cost[rows, cols].sum())
                sp.set_attribute("pivots", pivots)
                obs.counter(
                    "matching.augmentations", self._num_active_rows
                )
                obs.counter("matching.pivots", pivots)
        return self.row_to_col(), self.total_cost()

    def row_to_col(self) -> np.ndarray:
        """The cached assignment as ``row -> col`` (solves if needed).

        Deleted rows map to ``-1``.
        """
        if not self._solved:
            self.solve()
        row_to_col = np.full(self._num_rows, -1, dtype=np.int64)
        matched = self._match_of_col >= 0
        row_to_col[self._match_of_col[matched]] = np.nonzero(matched)[0]
        return row_to_col

    def total_cost(self) -> float:
        """Total cost of the cached optimum (solves if needed)."""
        if not self._solved:
            self.solve()
        assert self._total is not None
        return self._total

    def total_cost_without_column(self, column: int) -> float:
        """Optimal total cost when ``column`` is removed.

        Uses the distance-only warm-started repair described in the
        module docstring; the solver's own state is untouched.
        """
        if not (0 <= column < self._num_cols):
            raise MatchingError(
                f"column {column} outside [0, {self._num_cols})"
            )
        if self._num_active_rows >= self._num_cols:
            raise MatchingError(
                "cannot remove a column: every column is needed to match "
                "all rows (add dummy columns)"
            )
        if not self._solved:
            self.solve()
        self._refresh_duals()

        displaced_row = int(self._match_of_col[column])
        if displaced_row == -1:
            return self.total_cost()

        with obs.span("matching.solver.repair", column=column) as sp:
            distance, free_col, pivots, _, _ = self._dijkstra(
                displaced_row, column, None
            )
            sp.set_attribute("pivots", pivots)
            obs.counter("matching.pivots", pivots)
            obs.counter("matching.warm_resolves")
            return float(
                self.total_cost()
                - self._cost[displaced_row, column]
                + distance
                + self._u[displaced_row]
                + self._v[free_col]
            )

    def matching_without_column(self, column: int) -> np.ndarray:
        """``row_to_col`` of the optimum with ``column`` removed.

        Same one-Dijkstra repair as :meth:`total_cost_without_column`
        but parent-tracked, so the repaired matching itself is returned
        (non-mutating; the removed column appears in no row's image).
        The payment path uses this to recompute reduced welfare from
        raw edge weights instead of from dual arithmetic.
        """
        if not (0 <= column < self._num_cols):
            raise MatchingError(
                f"column {column} outside [0, {self._num_cols})"
            )
        if self._num_active_rows >= self._num_cols:
            raise MatchingError(
                "cannot remove a column: every column is needed to match "
                "all rows (add dummy columns)"
            )
        if not self._solved:
            self.solve()
        self._refresh_duals()
        assignment = self.row_to_col().copy()
        displaced_row = int(self._match_of_col[column])
        if displaced_row == -1:
            return assignment
        with obs.span(
            "matching.solver.repair", column=column, matching=True
        ) as sp:
            parent = self._parent
            parent.fill(-2)
            _, free_col, pivots, _, _ = self._dijkstra(
                displaced_row, column, parent
            )
            sp.set_attribute("pivots", pivots)
            obs.counter("matching.pivots", pivots)
            obs.counter("matching.warm_resolves")
        col = free_col
        while True:
            prev = int(parent[col])
            if prev == -1:
                assignment[displaced_row] = col
                break
            assignment[int(self._match_of_col[prev])] = col
            col = prev
        return assignment

    # ------------------------------------------------------------------
    # Row-removal sensitivity
    # ------------------------------------------------------------------
    def _check_row(self, row: int) -> None:
        if not (0 <= row < self._num_rows):
            raise MatchingError(f"row {row} outside [0, {self._num_rows})")
        if self._row_deleted[row]:
            raise MatchingError(f"row {row} was already deleted")

    def _refresh_duals(self) -> None:
        """Re-solve from scratch when :meth:`delete_row` left duals stale.

        A reassignment chain keeps the matching and total exact but its
        new matched edges are generally not tight under the old
        potentials, so the *next* dual-based repair must start from
        fresh ones.  The re-solve covers active rows only.
        """
        if not self._duals_stale:
            return
        self._u.fill(0.0)
        self._v.fill(0.0)
        np.copyto(self._cost_minus_v, self._cost)
        self._match_of_col.fill(-1)
        self._total = None
        self._solved = False
        self._duals_stale = False
        self.solve()

    def _row_removal_search(
        self, row: int, column: int
    ) -> Tuple[float, int, np.ndarray, np.ndarray, int]:
        """Cheapest reassignment chain into the column freed by ``row``.

        Dijkstra over *hole* positions: dropping ``row`` leaves a hole
        at ``column``; moving a matched row ``r`` into a hole ``h``
        costs the reduced amount ``cost[r][h] - u[r] - v[h] >= 0`` and
        shifts the hole to ``r``'s old column.  A chain may stop at any
        hole ``h``, leaving it unmatched; since an unmatched column's
        potential must be zero at an optimum, stopping at ``h`` carries
        a terminal credit of ``-v[h] >= 0``.  The true welfare change of
        the best chain telescopes to ``v[column] + min_h (dist[h] -
        v[h]) <= 0`` (the empty chain gives exactly zero).

        Returns ``(improvement, end_col, parent_row, parent_hole,
        pivots)``; the chain is recovered by walking ``parent_*`` from
        ``end_col`` back to ``column``.
        """
        cost_minus_v = self._cost_minus_v
        u = self._u
        v = self._v
        match_of_col = self._match_of_col

        matched_cols = np.nonzero(match_of_col >= 0)[0]
        move_rows = match_of_col[matched_cols]
        movable = move_rows != row
        move_rows = move_rows[movable]
        move_cols = matched_cols[movable]

        dist = np.full(self._num_cols, _INF)
        dist[column] = 0.0
        visited = np.zeros(self._num_cols, dtype=bool)
        parent_row = np.full(self._num_cols, -1, dtype=np.int64)
        parent_hole = np.full(self._num_cols, -1, dtype=np.int64)

        best = _INF
        best_col = column
        pivots = 0
        while True:
            frontier = np.where(visited, _INF, dist)
            hole = int(frontier.argmin())
            hole_dist = float(frontier[hole])
            # Unexplored chains cost at least ``hole_dist`` and end with
            # a credit ``-v >= 0``, so none can beat ``best`` any more.
            if not np.isfinite(hole_dist) or hole_dist >= best:
                break
            pivots += 1
            visited[hole] = True
            ending_here = hole_dist - float(v[hole])
            if ending_here < best:
                best = ending_here
                best_col = hole
            if move_rows.size:
                candidate = (
                    hole_dist
                    + cost_minus_v[move_rows, hole]
                    - u[move_rows]
                )
                better = (candidate < dist[move_cols]) & ~visited[move_cols]
                targets = move_cols[better]
                dist[targets] = candidate[better]
                parent_row[targets] = move_rows[better]
                parent_hole[targets] = hole
        improvement = min(float(v[column]) + best, 0.0)
        return improvement, best_col, parent_row, parent_hole, pivots

    def _removal_plan(
        self, row: int
    ) -> Tuple[int, float, int, np.ndarray, np.ndarray]:
        """Shared front half of the row-removal queries.

        Solves (and refreshes stale duals) first, then returns
        ``(column, improvement, end_col, parent_row, parent_hole)`` for
        ``row``'s matched column; ``column`` is ``-1`` for an unmatched
        row, in which case removal changes nothing.
        """
        self._check_row(row)
        if not self._solved:
            self.solve()
        self._refresh_duals()
        column = int(self.row_to_col()[row])
        if column < 0:
            empty = np.empty(0, dtype=np.int64)
            return column, 0.0, column, empty, empty
        with obs.span("matching.solver.row_removal", row=row) as sp:
            improvement, end_col, parent_row, parent_hole, pivots = (
                self._row_removal_search(row, column)
            )
            sp.set_attribute("pivots", pivots)
            obs.counter("matching.pivots", pivots)
            obs.counter("matching.warm_resolves")
        return column, improvement, end_col, parent_row, parent_hole

    def total_cost_without_row(self, row: int) -> float:
        """Optimal total cost when ``row`` is removed.

        One chain search (see :meth:`_row_removal_search`); the solver's
        own state is untouched.
        """
        column, improvement, _, _, _ = self._removal_plan(row)
        if column < 0:
            return self.total_cost()
        return float(
            self.total_cost() - self._cost[row, column] + improvement
        )

    def resolve_without_row(self, row: int) -> Tuple[np.ndarray, float]:
        """``(row_to_col, total)`` of the optimum without ``row``.

        Non-mutating companion of :meth:`delete_row`; the removed row
        maps to ``-1`` in the returned assignment, and rows on the
        repair chain appear at their reassigned columns.
        """
        column, improvement, end_col, parent_row, parent_hole = (
            self._removal_plan(row)
        )
        assignment = self.row_to_col().copy()
        total = self.total_cost()
        assignment[row] = -1
        if column >= 0:
            total = total - float(self._cost[row, column]) + improvement
            current = end_col
            while current != column:
                mover = int(parent_row[current])
                assignment[mover] = int(parent_hole[current])
                current = int(parent_hole[current])
        return assignment, total

    def delete_row(self, row: int) -> float:
        """Remove ``row`` permanently; returns the new optimal total.

        Applies the repair chain to the stored matching, so the cached
        assignment and total stay exact.  The chain's new edges are not
        tight under the old potentials, so the next dual-based repair
        (:meth:`total_cost_without_column` or another removal) triggers
        one fresh solve over the remaining rows first.
        """
        column, improvement, end_col, parent_row, parent_hole = (
            self._removal_plan(row)
        )
        if column >= 0:
            assert self._total is not None
            self._total = float(
                self._total - self._cost[row, column] + improvement
            )
            # The chain's last column ends up free; every earlier hole
            # (including ``column`` itself) receives the row that moved
            # into it.  Write the free slot first — the walk then fills
            # holes strictly behind itself.
            self._match_of_col[end_col] = -1
            current = end_col
            while current != column:
                mover = int(parent_row[current])
                self._match_of_col[int(parent_hole[current])] = mover
                current = int(parent_hole[current])
            if end_col != column or self._v[column] != 0.0:
                self._duals_stale = True
        self._row_deleted[row] = True
        self._num_active_rows -= 1
        return self.total_cost()
