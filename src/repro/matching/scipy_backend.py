"""Optional scipy cross-check backend for sparse matching.

Wraps :func:`scipy.sparse.csgraph.min_weight_full_bipartite_matching`
behind the same CSR-with-implicit-dummies contract the in-house
:class:`~repro.matching.sparse.SparseAssignmentSolver` uses, so the
graph layer can swap it in via ``backend="scipy"`` and the property
suites can cross-check welfare against an independent implementation.

scipy is an *optional* dependency (the ``[perf]`` extra); importing
this module never imports scipy.  When scipy is missing, requesting the
backend raises a :class:`MatchingError` that names the extra instead of
an ImportError deep inside a solve.

Two caveats of the scipy routine are handled here:

* it cannot distinguish an explicit zero-cost edge from a missing one,
  so every stored cost is shifted by ``+1.0`` — a constant per matched
  row that changes every perfect assignment's total by exactly
  ``num_rows`` and therefore neither the argmin nor its tie structure;
* it requires a perfect matching on the row side, which the appended
  per-row dummy columns guarantee.

scipy breaks ties differently from the in-house solvers, so it is a
*welfare* cross-check: equal optimal value, possibly a different
optimal matching when the optimum is not unique.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

import numpy as np

from repro import obs
from repro.errors import MatchingError

#: Constant added to every stored cost so scipy never sees an explicit
#: zero entry (see the module docstring).
_ZERO_SHIFT = 1.0


def _load_scipy() -> Tuple[Any, Any]:
    """Import the scipy pieces, or fail with install guidance."""
    try:
        from scipy.sparse import csr_matrix
        from scipy.sparse.csgraph import (
            min_weight_full_bipartite_matching,
        )
    except ImportError as exc:  # pragma: no cover - depends on env
        raise MatchingError(
            "matching backend 'scipy' requires scipy, which is not "
            "installed; install the perf extra (pip install "
            "'repro[perf]') or pick another backend"
        ) from exc
    return csr_matrix, min_weight_full_bipartite_matching


def scipy_available() -> bool:
    """Whether the scipy backend can actually run in this environment."""
    try:
        _load_scipy()
    except MatchingError:
        return False
    return True


def solve_csr_min_weight(
    num_rows: int,
    num_cols: int,
    indptr: np.ndarray,
    indices: np.ndarray,
    data: np.ndarray,
    dummy_cost: Optional[float] = None,
) -> np.ndarray:
    """Min-cost assignment of the CSR instance via scipy.

    Same edge contract as :class:`SparseAssignmentSolver`: row ``r``
    optionally owns the implicit dummy column ``num_cols + r`` at
    ``dummy_cost``.  Returns ``row -> col`` (dummy columns included in
    the image).  Raises :class:`MatchingError` when scipy is missing or
    the instance is infeasible.
    """
    csr_matrix, min_weight_matching = _load_scipy()
    indptr = np.asarray(indptr, dtype=np.int64)
    indices = np.asarray(indices, dtype=np.int64)
    data = np.asarray(data, dtype=float)
    if num_rows == 0:
        return np.empty(0, dtype=np.int64)

    if dummy_cost is None:
        total_cols = num_cols
        full_indptr = indptr
        full_indices = indices
        full_data = data + _ZERO_SHIFT
    else:
        # Append each row's dummy edge at the end of its CSR slice (the
        # dummy has the largest column index of the row, so sortedness
        # is preserved).
        total_cols = num_cols + num_rows
        counts = np.diff(indptr)
        full_indptr = np.concatenate(
            [[0], np.cumsum(counts + 1)]
        ).astype(np.int64)
        nnz = int(indices.shape[0]) + num_rows
        full_indices = np.empty(nnz, dtype=np.int64)
        full_data = np.empty(nnz)
        for row in range(num_rows):
            start, end = int(indptr[row]), int(indptr[row + 1])
            out = int(full_indptr[row])
            width = end - start
            full_indices[out : out + width] = indices[start:end]
            full_data[out : out + width] = data[start:end] + _ZERO_SHIFT
            full_indices[out + width] = num_cols + row
            full_data[out + width] = dummy_cost + _ZERO_SHIFT

    biadjacency = csr_matrix(
        (full_data, full_indices, full_indptr),
        shape=(num_rows, total_cols),
    )
    with obs.span(
        "matching.scipy.solve",
        rows=num_rows,
        cols=total_cols,
        edges=int(full_indices.shape[0]),
    ):
        try:
            row_ind, col_ind = min_weight_matching(biadjacency)
        except ValueError as exc:
            raise MatchingError(
                f"scipy found no perfect row assignment: {exc}"
            ) from exc
    row_to_col = np.full(num_rows, -1, dtype=np.int64)
    row_to_col[row_ind] = col_ind
    return row_to_col
