"""Structural validity checks for matchings.

A matching produced by any matcher in this package must satisfy:

* every row appears at most once, every column appears at most once,
* every matched pair lies inside the matrix,
* every matched pair has strictly positive weight (non-positive weights
  mean "no useful edge" under this package's conventions).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.errors import MatchingError


def check_matching(
    weights: Sequence[Sequence[float]],
    pairs: Iterable[Tuple[int, int]],
) -> float:
    """Validate ``pairs`` against ``weights``; return the total weight.

    Raises :class:`~repro.errors.MatchingError` on any structural
    violation, so tests can use it as a one-line oracle.
    """
    num_rows = len(weights)
    num_cols = len(weights[0]) if num_rows else 0
    seen_rows = set()
    seen_cols = set()
    total = 0.0
    for row, col in pairs:
        if not (0 <= row < num_rows) or not (0 <= col < num_cols):
            raise MatchingError(
                f"pair ({row}, {col}) outside a {num_rows} x {num_cols} "
                f"matrix"
            )
        if row in seen_rows:
            raise MatchingError(f"row {row} matched twice")
        if col in seen_cols:
            raise MatchingError(f"column {col} matched twice")
        weight = weights[row][col]
        if weight <= 0.0:
            raise MatchingError(
                f"pair ({row}, {col}) has non-positive weight {weight}"
            )
        seen_rows.add(row)
        seen_cols.add(col)
        total += weight
    return total
