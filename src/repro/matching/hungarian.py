"""Maximum-weight bipartite matching via the Hungarian algorithm.

This is a from-scratch implementation of the ``O(n^3)`` Hungarian
(Kuhn-Munkres) algorithm in its potentials-and-slack form (Edmonds-Karp /
Tomizawa improvement — the same complexity the paper cites for its offline
winning-bid determination, Theorem 3).

Two layers are exposed:

* :func:`solve_assignment_min` — the classic primitive: given an ``n x m``
  cost matrix with ``n <= m``, find a minimum-cost assignment matching
  every row to a distinct column.
* :func:`max_weight_matching` — what mechanisms actually need: given a
  rectangular weight matrix where entries ``<= 0`` mean "no useful edge",
  find a matching maximising total weight, with unmatched rows/columns
  allowed.  Internally pads with zero-weight dummy columns so that leaving
  a row unmatched is always feasible, then calls the primitive.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import MatchingError
from repro.matching.backend import (
    require_backend_available,
    resolve_backend,
)
from repro.matching.solver import AssignmentSolver

_INF = float("inf")


def _validate_matrix(matrix: Sequence[Sequence[float]]) -> Tuple[int, int]:
    """Check rectangularity and finiteness; return ``(rows, cols)``.

    The length scan is a cheap ``O(rows)`` Python loop; the finiteness
    check — the part that used to visit every entry in Python and runs
    on every solve, payment re-solves included — is vectorised.
    """
    num_rows = len(matrix)
    if num_rows == 0:
        return 0, 0
    num_cols = len(matrix[0])
    for row_index, row in enumerate(matrix):
        if len(row) != num_cols:
            raise MatchingError(
                f"matrix is ragged: row 0 has {num_cols} entries, row "
                f"{row_index} has {len(row)}"
            )
    finite = np.isfinite(np.asarray(matrix, dtype=float))
    if not finite.all():
        row_index, col_index = (int(k) for k in np.argwhere(~finite)[0])
        value = matrix[row_index][col_index]
        raise MatchingError(
            f"matrix entries must be finite, found {value!r} in "
            f"row {row_index}"
        )
    return num_rows, num_cols


def solve_assignment_min(
    cost: Sequence[Sequence[float]],
) -> Tuple[List[int], float]:
    """Minimum-cost assignment for an ``n x m`` matrix with ``n <= m``.

    Returns ``(assignment, total)`` where ``assignment[i]`` is the column
    matched to row ``i`` and ``total`` is the summed cost.  Every row is
    matched (callers wanting optional rows add dummy columns).

    Implementation: the standard shortest-augmenting-path formulation with
    row potentials ``u``, column potentials ``v`` and per-column slack,
    giving ``O(n^2 m)`` time.
    """
    num_rows, num_cols = _validate_matrix(cost)
    if num_rows == 0:
        return [], 0.0
    if num_rows > num_cols:
        raise MatchingError(
            f"solve_assignment_min requires rows <= cols, got "
            f"{num_rows} x {num_cols}"
        )

    # 1-based arrays in the classic formulation; index 0 is a sentinel.
    u = [0.0] * (num_rows + 1)
    v = [0.0] * (num_cols + 1)
    match_of_col = [0] * (num_cols + 1)  # row currently matched to column j
    way = [0] * (num_cols + 1)  # predecessor column on the alternating path

    with obs.span(
        "matching.hungarian.solve", rows=num_rows, cols=num_cols
    ) as tel:
        pivots = 0
        for row in range(1, num_rows + 1):
            match_of_col[0] = row
            current_col = 0
            min_slack = [_INF] * (num_cols + 1)
            used = [False] * (num_cols + 1)
            while True:
                pivots += 1
                used[current_col] = True
                current_row = match_of_col[current_col]
                delta = _INF
                next_col = 0
                for col in range(1, num_cols + 1):
                    if used[col]:
                        continue
                    reduced = (
                        cost[current_row - 1][col - 1] - u[current_row] - v[col]
                    )
                    if reduced < min_slack[col]:
                        min_slack[col] = reduced
                        way[col] = current_col
                    if min_slack[col] < delta:
                        delta = min_slack[col]
                        next_col = col
                for col in range(num_cols + 1):
                    if used[col]:
                        u[match_of_col[col]] += delta
                        v[col] -= delta
                    else:
                        min_slack[col] -= delta
                current_col = next_col
                if match_of_col[current_col] == 0:
                    break
            # Unwind the alternating path, flipping matched edges.
            while current_col:
                previous_col = way[current_col]
                match_of_col[current_col] = match_of_col[previous_col]
                current_col = previous_col
        tel.set_attribute("pivots", pivots)
        obs.counter("matching.pivots", pivots)

    assignment = [-1] * num_rows
    total = 0.0
    for col in range(1, num_cols + 1):
        row = match_of_col[col]
        if row:
            assignment[row - 1] = col - 1
            total += cost[row - 1][col - 1]
    return assignment, total


@dataclasses.dataclass(frozen=True)
class MatchingResult:
    """Result of a maximum-weight matching computation.

    Attributes
    ----------
    pairs:
        Matched ``(row, col)`` pairs with strictly positive weight,
        sorted by row.
    total_weight:
        Sum of the weights of ``pairs``.
    """

    pairs: Tuple[Tuple[int, int], ...]
    total_weight: float

    def row_to_col(self) -> dict:
        """The matching as a ``{row: col}`` dict."""
        return {row: col for row, col in self.pairs}

    def col_to_row(self) -> dict:
        """The matching as a ``{col: row}`` dict."""
        return {col: row for row, col in self.pairs}


def max_weight_matching(
    weights: Sequence[Sequence[float]],
    backend: Optional[str] = None,
) -> MatchingResult:
    """Maximum-weight bipartite matching with optional participation.

    ``weights[i][j]`` is the gain from matching row ``i`` to column ``j``.
    Entries ``<= 0`` are treated as "matching is never beneficial" and are
    never part of the returned matching — equivalently, every vertex may
    stay unmatched at gain zero.  This matches the paper's graph where an
    edge between task ``τ_{j,k}`` and an *inactive* smartphone has weight
    zero and a winning assignment contributes ``ν − b_i``.

    The implementation clamps negative entries to zero, pads the matrix
    with one zero-weight dummy column per row (so a perfect row assignment
    always exists), converts to a minimisation problem against the maximum
    entry, solves it, and finally discards matches whose original weight
    is not strictly positive.  ``backend`` picks the solver (see
    :mod:`repro.matching.backend`): ``"numpy"`` runs the vectorised
    :class:`~repro.matching.solver.AssignmentSolver`; ``"sparse"`` routes
    the profitable entries through the CSR
    :class:`~repro.matching.sparse.SparseAssignmentSolver`; ``"scipy"``
    cross-checks via ``scipy.sparse.csgraph``; ``"python"`` runs the
    pure-Python reference :func:`solve_assignment_min`.  ``"auto"``
    resolves to ``"numpy"`` here — the input matrix is already dense.
    The in-house backends produce the same matching, ties included
    (cross-checked by the matching property suites).
    """
    chosen = require_backend_available(resolve_backend(backend))
    if chosen == "auto":
        chosen = "numpy"
    num_rows, num_cols = _validate_matrix(weights)
    if num_rows == 0 or num_cols == 0:
        return MatchingResult(pairs=(), total_weight=0.0)

    clamped = np.maximum(np.asarray(weights, dtype=float), 0.0)
    max_entry = float(clamped.max())
    if chosen in ("sparse", "scipy"):
        from repro.matching.sparse import (
            SparseAssignmentSolver,
            csr_from_dense,
        )

        indptr, indices, data = csr_from_dense(
            max_entry - clamped, keep=clamped > 0.0
        )
        if chosen == "sparse":
            solver = SparseAssignmentSolver(
                num_rows,
                num_cols,
                indptr,
                indices,
                data,
                dummy_cost=max_entry,
            )
            assignment, _ = solver.solve()
        else:
            from repro.matching.scipy_backend import solve_csr_min_weight

            assignment = solve_csr_min_weight(
                num_rows,
                num_cols,
                indptr,
                indices,
                data,
                dummy_cost=max_entry,
            )
    else:
        # One zero-weight dummy column per row guarantees a feasible
        # perfect row assignment even when every real edge is useless.
        cost = np.full((num_rows, num_cols + num_rows), max_entry)
        cost[:, :num_cols] = max_entry - clamped
        if chosen == "python":
            assignment_list, _ = solve_assignment_min(cost.tolist())
            assignment = np.asarray(assignment_list, dtype=np.int64)
        else:
            assignment, _ = AssignmentSolver(cost).solve()

    pairs = []
    total = 0.0
    for row, col in enumerate(assignment):
        col = int(col)
        if 0 <= col < num_cols and weights[row][col] > 0.0:
            pairs.append((row, col))
            total += weights[row][col]
    return MatchingResult(pairs=tuple(pairs), total_weight=total)
