"""Matching solver backend selection.

Five interchangeable backend names cover the assignment solvers:

* ``"auto"`` — the production default: the graph layer measures the
  instance (cells = tasks x bids, edge density) and dispatches to the
  dense ``"numpy"`` solver for small or dense instances and to the CSR
  ``"sparse"`` solver for large sparse ones (the interval-structured
  graphs of city-scale rounds).  Dense-input entry points such as
  :func:`~repro.matching.hungarian.max_weight_matching` resolve
  ``"auto"`` to ``"numpy"`` — their matrix is already materialised.
* ``"numpy"`` — :class:`repro.matching.solver.AssignmentSolver`, the
  vectorised dense shortest-augmenting-path solver with warm-started
  repair queries.
* ``"sparse"`` — :class:`repro.matching.sparse.SparseAssignmentSolver`,
  the CSR heap-Dijkstra solver with the same warm-start repair API;
  never materialises a dense matrix.
* ``"scipy"`` — wraps ``scipy.sparse.csgraph
  .min_weight_full_bipartite_matching`` as an independent cross-check.
  scipy is optional (the ``[perf]`` extra); selecting this backend
  without scipy installed raises a :class:`MatchingError` naming the
  extra.
* ``"python"`` — :func:`repro.matching.hungarian.solve_assignment_min`,
  the from-scratch pure-Python reference implementation.  It is kept
  deliberately simple (no vectorisation, no warm starts) so its code can
  be audited against the textbook algorithm, and the property suites
  cross-check the other backends against it — ties included, since the
  in-house solvers insert rows in index order with a lowest-index-first
  pivot tie-break.

The module-level default applies wherever a ``backend=None`` argument is
left unset; :func:`use_backend` scopes an override to a ``with`` block
(useful in tests and cross-check harnesses).
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.errors import MatchingError

#: Recognised backend names, in preference order.
AVAILABLE_BACKENDS = ("auto", "numpy", "sparse", "scipy", "python")

_default_backend = "auto"


def resolve_backend(backend: Optional[str] = None) -> str:
    """Validate ``backend``, falling back to the session default."""
    name = _default_backend if backend is None else backend
    if name not in AVAILABLE_BACKENDS:
        raise MatchingError(
            f"unknown matching backend {name!r}; available: "
            f"{', '.join(AVAILABLE_BACKENDS)}"
        )
    return name


def require_backend_available(backend: str) -> str:
    """Validate ``backend`` *and* check its dependencies are importable.

    Today only ``"scipy"`` has an external dependency; the check raises
    a :class:`MatchingError` pointing at the ``[perf]`` extra instead of
    letting an ImportError escape from inside a solve.
    """
    if backend not in AVAILABLE_BACKENDS:
        raise MatchingError(
            f"unknown matching backend {backend!r}; available: "
            f"{', '.join(AVAILABLE_BACKENDS)}"
        )
    if backend == "scipy":
        from repro.matching.scipy_backend import _load_scipy

        _load_scipy()
    return backend


def get_default_backend() -> str:
    """The backend used when callers pass ``backend=None``."""
    return _default_backend


def set_default_backend(backend: str) -> None:
    """Set the session-wide default backend."""
    global _default_backend
    if backend not in AVAILABLE_BACKENDS:
        raise MatchingError(
            f"unknown matching backend {backend!r}; available: "
            f"{', '.join(AVAILABLE_BACKENDS)}"
        )
    _default_backend = backend


@contextlib.contextmanager
def use_backend(backend: str) -> Iterator[str]:
    """Scope a default-backend override to a ``with`` block."""
    previous = get_default_backend()
    set_default_backend(backend)
    try:
        yield backend
    finally:
        set_default_backend(previous)
