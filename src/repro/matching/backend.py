"""Matching solver backend selection.

Two interchangeable assignment solvers exist:

* ``"numpy"`` — :class:`repro.matching.solver.AssignmentSolver`, the
  vectorised shortest-augmenting-path solver with warm-started repair
  queries.  This is the production default.
* ``"python"`` — :func:`repro.matching.hungarian.solve_assignment_min`,
  the from-scratch pure-Python reference implementation.  It is kept
  deliberately simple (no vectorisation, no warm starts) so its code can
  be audited against the textbook algorithm, and the property suites
  cross-check the numpy backend against it — ties included, since both
  insert rows in index order with a lowest-index-first pivot tie-break.

The module-level default applies wherever a ``backend=None`` argument is
left unset; :func:`use_backend` scopes an override to a ``with`` block
(useful in tests and cross-check harnesses).
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.errors import MatchingError

#: Recognised backend names, in preference order.
AVAILABLE_BACKENDS = ("numpy", "python")

_default_backend = "numpy"


def resolve_backend(backend: Optional[str] = None) -> str:
    """Validate ``backend``, falling back to the session default."""
    name = _default_backend if backend is None else backend
    if name not in AVAILABLE_BACKENDS:
        raise MatchingError(
            f"unknown matching backend {name!r}; available: "
            f"{', '.join(AVAILABLE_BACKENDS)}"
        )
    return name


def get_default_backend() -> str:
    """The backend used when callers pass ``backend=None``."""
    return _default_backend


def set_default_backend(backend: str) -> None:
    """Set the session-wide default backend."""
    global _default_backend
    if backend not in AVAILABLE_BACKENDS:
        raise MatchingError(
            f"unknown matching backend {backend!r}; available: "
            f"{', '.join(AVAILABLE_BACKENDS)}"
        )
    _default_backend = backend


@contextlib.contextmanager
def use_backend(backend: str) -> Iterator[str]:
    """Scope a default-backend override to a ``with`` block."""
    previous = get_default_backend()
    set_default_backend(backend)
    try:
        yield backend
    finally:
        set_default_backend(previous)
