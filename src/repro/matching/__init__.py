"""Bipartite matching substrate.

The offline mechanism reduces winning-bid determination to maximum-weight
bipartite matching (Section IV-B of the paper).  This package provides:

* :mod:`repro.matching.graph` — building the task x smartphone weighted
  bipartite graph from bids and a task schedule,
* :mod:`repro.matching.hungarian` — a from-scratch ``O(n^3)`` Hungarian
  algorithm (potentials + slack arrays) for maximum-weight matching,
* :mod:`repro.matching.solver` — the vectorised assignment solver with
  warm-started sensitivity queries (the default production backend),
* :mod:`repro.matching.backend` — selects between the ``"numpy"``
  production solver and the ``"python"`` reference implementation,
* :mod:`repro.matching.maxcard` — Hopcroft-Karp maximum-cardinality
  matching (feasibility analysis: how many tasks are serviceable at all),
* :mod:`repro.matching.bruteforce` — exponential exact matcher used to
  cross-check the Hungarian implementation on small instances,
* :mod:`repro.matching.validate` — structural validity checks.
"""

from repro.matching.backend import (
    AVAILABLE_BACKENDS,
    get_default_backend,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.matching.bruteforce import brute_force_max_weight_matching
from repro.matching.graph import TaskAssignmentGraph
from repro.matching.hungarian import (
    MatchingResult,
    max_weight_matching,
    solve_assignment_min,
)
from repro.matching.maxcard import hopcroft_karp
from repro.matching.solver import AssignmentSolver
from repro.matching.validate import check_matching

__all__ = [
    "AVAILABLE_BACKENDS",
    "AssignmentSolver",
    "TaskAssignmentGraph",
    "MatchingResult",
    "max_weight_matching",
    "solve_assignment_min",
    "hopcroft_karp",
    "brute_force_max_weight_matching",
    "check_matching",
    "get_default_backend",
    "resolve_backend",
    "set_default_backend",
    "use_backend",
]
