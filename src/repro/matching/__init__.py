"""Bipartite matching substrate.

The offline mechanism reduces winning-bid determination to maximum-weight
bipartite matching (Section IV-B of the paper).  This package provides:

* :mod:`repro.matching.graph` — building the task x smartphone weighted
  bipartite graph from bids and a task schedule,
* :mod:`repro.matching.hungarian` — a from-scratch ``O(n^3)`` Hungarian
  algorithm (potentials + slack arrays) for maximum-weight matching,
* :mod:`repro.matching.solver` — the vectorised dense assignment solver
  with warm-started sensitivity queries,
* :mod:`repro.matching.sparse` — the CSR heap-Dijkstra assignment solver
  for large sparse (interval-structured) instances, same warm-start API,
* :mod:`repro.matching.scipy_backend` — optional
  ``scipy.sparse.csgraph`` cross-check backend (the ``[perf]`` extra),
* :mod:`repro.matching.backend` — backend registry and dispatch
  (``"auto"``/``"numpy"``/``"sparse"``/``"scipy"``/``"python"``),
* :mod:`repro.matching.maxcard` — Hopcroft-Karp maximum-cardinality
  matching (feasibility analysis: how many tasks are serviceable at all),
* :mod:`repro.matching.bruteforce` — exponential exact matcher used to
  cross-check the Hungarian implementation on small instances,
* :mod:`repro.matching.validate` — structural validity checks.
"""

from repro.matching.backend import (
    AVAILABLE_BACKENDS,
    get_default_backend,
    require_backend_available,
    resolve_backend,
    set_default_backend,
    use_backend,
)
from repro.matching.bruteforce import brute_force_max_weight_matching
from repro.matching.graph import TaskAssignmentGraph
from repro.matching.hungarian import (
    MatchingResult,
    max_weight_matching,
    solve_assignment_min,
)
from repro.matching.maxcard import hopcroft_karp
from repro.matching.scipy_backend import scipy_available
from repro.matching.solver import AssignmentSolver
from repro.matching.sparse import SparseAssignmentSolver, csr_from_dense
from repro.matching.validate import check_matching

__all__ = [
    "AVAILABLE_BACKENDS",
    "AssignmentSolver",
    "SparseAssignmentSolver",
    "TaskAssignmentGraph",
    "MatchingResult",
    "csr_from_dense",
    "max_weight_matching",
    "solve_assignment_min",
    "hopcroft_karp",
    "brute_force_max_weight_matching",
    "check_matching",
    "get_default_backend",
    "require_backend_available",
    "resolve_backend",
    "scipy_available",
    "set_default_backend",
    "use_backend",
]
