"""Hopcroft-Karp maximum-cardinality bipartite matching.

Used for feasibility analysis (how many tasks could be served at all,
ignoring costs) and as an independent structural check on the Hungarian
matcher: a maximum-weight matching over a 0/1 weight matrix must have the
same cardinality as Hopcroft-Karp reports.
"""

from __future__ import annotations

import collections
from typing import Dict, List, Sequence, Tuple

from repro import obs
from repro.errors import MatchingError

_INF = float("inf")


def hopcroft_karp(
    adjacency: Sequence[Sequence[int]], num_right: int
) -> Tuple[int, Dict[int, int]]:
    """Maximum-cardinality matching of a bipartite graph.

    Parameters
    ----------
    adjacency:
        ``adjacency[u]`` lists the right-vertex indices adjacent to left
        vertex ``u``.
    num_right:
        Number of right vertices (right indices must be ``< num_right``).

    Returns
    -------
    ``(size, matching)`` where ``matching`` maps each matched left vertex
    to its right partner.

    Complexity ``O(E * sqrt(V))``.
    """
    num_left = len(adjacency)
    for u, neighbours in enumerate(adjacency):
        for v in neighbours:
            if not (0 <= v < num_right):
                raise MatchingError(
                    f"right vertex {v} (adjacent to left {u}) out of range "
                    f"[0, {num_right})"
                )

    match_left: List[int] = [-1] * num_left
    match_right: List[int] = [-1] * num_right
    distance: List[float] = [0.0] * num_left

    def bfs() -> bool:
        queue = collections.deque()
        for u in range(num_left):
            if match_left[u] == -1:
                distance[u] = 0.0
                queue.append(u)
            else:
                distance[u] = _INF
        found_augmenting = False
        while queue:
            u = queue.popleft()
            for v in adjacency[u]:
                partner = match_right[v]
                if partner == -1:
                    found_augmenting = True
                elif distance[partner] == _INF:
                    distance[partner] = distance[u] + 1.0
                    queue.append(partner)
        return found_augmenting

    def dfs(u: int) -> bool:
        for v in adjacency[u]:
            partner = match_right[v]
            if partner == -1 or (
                distance[partner] == distance[u] + 1.0 and dfs(partner)
            ):
                match_left[u] = v
                match_right[v] = u
                return True
        distance[u] = _INF
        return False

    with obs.span(
        "matching.hopcroft_karp", left=num_left, right=num_right
    ) as tel:
        size = 0
        phases = 0
        while bfs():
            phases += 1
            for u in range(num_left):
                if match_left[u] == -1 and dfs(u):
                    size += 1
        tel.set_attribute("phases", phases)
        tel.set_attribute("size", size)

    matching = {u: v for u, v in enumerate(match_left) if v != -1}
    return size, matching
