"""Exhaustive maximum-weight matching for cross-checking.

Enumerates, row by row, every way of matching each row to an unused column
or leaving it unmatched, keeping the best total.  Exponential — intended
only for test instances with at most ~10 rows, where it provides ground
truth for the Hungarian implementation.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import MatchingError
from repro.matching.hungarian import MatchingResult, _validate_matrix

_MAX_BRUTE_FORCE_ROWS = 12


def brute_force_max_weight_matching(
    weights: Sequence[Sequence[float]],
) -> MatchingResult:
    """Exact maximum-weight matching by exhaustive search.

    Semantics match :func:`repro.matching.hungarian.max_weight_matching`:
    entries ``<= 0`` are never matched and every vertex may stay
    unmatched.  Raises :class:`~repro.errors.MatchingError` for instances
    with more than 12 rows (the search is exponential).
    """
    num_rows, num_cols = _validate_matrix(weights)
    if num_rows > _MAX_BRUTE_FORCE_ROWS:
        raise MatchingError(
            f"brute force limited to {_MAX_BRUTE_FORCE_ROWS} rows, "
            f"got {num_rows}"
        )
    if num_rows == 0 or num_cols == 0:
        return MatchingResult(pairs=(), total_weight=0.0)

    best_total = 0.0
    best_pairs: Tuple[Tuple[int, int], ...] = ()
    used_cols = [False] * num_cols
    chosen: List[Tuple[int, int]] = []

    def recurse(row: int, total: float) -> None:
        nonlocal best_total, best_pairs
        if row == num_rows:
            if total > best_total:
                best_total = total
                best_pairs = tuple(chosen)
            return
        # Option 1: leave this row unmatched.
        recurse(row + 1, total)
        # Option 2: match it to any unused, strictly beneficial column.
        for col in range(num_cols):
            if used_cols[col] or weights[row][col] <= 0.0:
                continue
            used_cols[col] = True
            chosen.append((row, col))
            recurse(row + 1, total + weights[row][col])
            chosen.pop()
            used_cols[col] = False

    recurse(0, 0.0)
    return MatchingResult(pairs=best_pairs, total_weight=best_total)
