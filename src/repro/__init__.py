"""Truthful auction mechanisms for mobile crowdsourcing with dynamic
smartphones.

A production-quality reproduction of Feng et al., *"Towards Truthful
Mechanisms for Mobile Crowdsourcing with Dynamic Smartphones"*
(ICDCS 2014).  The package implements the paper's two mechanisms — the
offline optimal VCG mechanism and the online greedy mechanism with
critical-value payments — together with the full simulation substrate,
baselines, property auditors, and the experiment harness regenerating
every figure of the paper's evaluation.

Quickstart
----------
>>> from repro import (
...     WorkloadConfig, SimulationEngine,
...     OfflineVCGMechanism, OnlineGreedyMechanism,
... )
>>> scenario = WorkloadConfig.paper_default().generate(seed=1)
>>> engine = SimulationEngine()
>>> offline = engine.run(OfflineVCGMechanism(), scenario)
>>> online = engine.run(OnlineGreedyMechanism(), scenario)
>>> offline.claimed_welfare >= online.claimed_welfare
True

See ``examples/`` for complete runnable programs and DESIGN.md for the
module map.
"""

from repro.agents import (
    BiddingStrategy,
    CombinedMisreportStrategy,
    CostAdditiveStrategy,
    CostScalingStrategy,
    DelayedArrivalStrategy,
    EarlyDepartureStrategy,
    RandomMisreportStrategy,
    TruthfulStrategy,
    best_response_search,
)
from repro.auction import (
    CampaignResult,
    CrowdsourcingPlatform,
    replay_scenario,
    run_campaign,
)
from repro.errors import (
    BidConstraintError,
    ExperimentError,
    MatchingError,
    MechanismError,
    ReproError,
    SimulationError,
    ValidationError,
)
from repro.experiments import (
    ExperimentConfig,
    MechanismSpec,
    SweepSpec,
    figure_spec,
    list_figures,
    render_sweep_csv,
    render_sweep_table,
    run_point,
    run_sweep,
)
from repro.faults import (
    FaultConfig,
    FaultInjector,
    FaultPlan,
    run_with_faults,
)
from repro.mechanisms import (
    Mechanism,
    OfflineVCGMechanism,
    OnlineGreedyMechanism,
    available_mechanisms,
    create_mechanism,
    register_mechanism,
)
from repro.mechanisms.baselines import (
    FifoMechanism,
    FixedPriceMechanism,
    OfflineGreedyMechanism,
    RandomAllocationMechanism,
    SecondPriceSlotMechanism,
)
from repro.metrics import (
    audit_individual_rationality,
    audit_monotonicity,
    audit_truthfulness,
    empirical_competitive_ratio,
    overpayment_ratio,
    true_social_welfare,
)
from repro.model import (
    AuctionOutcome,
    Bid,
    RoundConfig,
    SensingTask,
    SmartphoneProfile,
    TaskSchedule,
)
from repro.simulation import (
    Scenario,
    SimulationEngine,
    SimulationResult,
    WorkloadConfig,
    load_scenario,
    save_scenario,
)

__version__ = "1.0.0"

__all__ = [
    # model
    "Bid",
    "SmartphoneProfile",
    "SensingTask",
    "TaskSchedule",
    "RoundConfig",
    "AuctionOutcome",
    # mechanisms
    "Mechanism",
    "OfflineVCGMechanism",
    "OnlineGreedyMechanism",
    "SecondPriceSlotMechanism",
    "FixedPriceMechanism",
    "RandomAllocationMechanism",
    "FifoMechanism",
    "OfflineGreedyMechanism",
    "available_mechanisms",
    "create_mechanism",
    "register_mechanism",
    # agents
    "BiddingStrategy",
    "TruthfulStrategy",
    "CostScalingStrategy",
    "CostAdditiveStrategy",
    "DelayedArrivalStrategy",
    "EarlyDepartureStrategy",
    "CombinedMisreportStrategy",
    "RandomMisreportStrategy",
    "best_response_search",
    # simulation
    "WorkloadConfig",
    "Scenario",
    "SimulationEngine",
    "SimulationResult",
    "save_scenario",
    "load_scenario",
    # auction platform
    "CrowdsourcingPlatform",
    "replay_scenario",
    "run_campaign",
    "CampaignResult",
    # fault injection & recovery
    "FaultConfig",
    "FaultPlan",
    "FaultInjector",
    "run_with_faults",
    # metrics
    "true_social_welfare",
    "overpayment_ratio",
    "empirical_competitive_ratio",
    "audit_truthfulness",
    "audit_individual_rationality",
    "audit_monotonicity",
    # experiments
    "ExperimentConfig",
    "MechanismSpec",
    "SweepSpec",
    "run_point",
    "run_sweep",
    "figure_spec",
    "list_figures",
    "render_sweep_table",
    "render_sweep_csv",
    # errors
    "ReproError",
    "ValidationError",
    "BidConstraintError",
    "MatchingError",
    "MechanismError",
    "SimulationError",
    "ExperimentError",
    "__version__",
]
