"""Counters, gauges, and histograms for the telemetry layer.

A :class:`MetricsRegistry` is a plain in-process bag of named
instruments.  Instruments are created lazily on first use, so
instrumented code never has to pre-declare anything; names follow a
dotted taxonomy documented in ``docs/ARCHITECTURE.md`` (e.g.
``greedy.candidate_evals``, ``platform.events.TaskReassigned``).

The registry is deliberately simple — synchronous, no label sets —
because its job is to account for *one* traced run (a round, a sweep, a
bench session), after which a perf snapshot serialises it and the
registry is thrown away.  Histograms default to retaining every
observation (exact quantiles); long campaigns that observe millions of
values per instrument opt into the *bounded* mode
(:data:`MODE_BOUNDED`), which keeps fixed-width geometric buckets
instead of samples and trades a documented relative quantile error for
O(1)-per-observation memory.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError

#: Histogram storage modes.
MODE_EXACT = "exact"      # retain every observation; exact quantiles
MODE_BOUNDED = "bounded"  # geometric buckets; bounded-error quantiles
_MODES = (MODE_EXACT, MODE_BOUNDED)

#: Default per-bucket growth factor of the bounded mode.  Buckets span
#: ``[growth**k, growth**(k+1))``; reporting the arithmetic bucket
#: midpoint bounds the relative quantile error by ``(growth - 1) / 2``
#: (2 % at the default).
DEFAULT_GROWTH = 1.04


@dataclasses.dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


@dataclasses.dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution of observed values.

    Two storage modes:

    * ``"exact"`` (default) — observations are retained verbatim and
      quantiles are computed by linear interpolation over the sorted
      sample, the same convention as ``numpy.quantile(...,
      method="linear")``, implemented here without the numpy dependency
      so the telemetry layer stays import-light.
    * ``"bounded"`` — observations are folded into geometric buckets
      (``growth`` per step, signed, with a dedicated zero bucket), so
      memory is bounded by the *dynamic range* of the values rather
      than their count.  Quantiles report the midpoint of the bucket
      the rank falls in, clamped to the observed min/max, which bounds
      the relative error by ``(growth - 1) / 2``.

    ``count`` / ``total`` / ``mean`` / ``min`` / ``max`` are exact in
    both modes.
    """

    def __init__(
        self,
        name: str,
        mode: str = MODE_EXACT,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        if mode not in _MODES:
            raise ObservabilityError(
                f"histogram {name!r}: unknown mode {mode!r}; "
                f"expected one of {_MODES}"
            )
        if growth <= 1.0:
            raise ObservabilityError(
                f"histogram {name!r}: growth must be > 1, got {growth}"
            )
        self.name = name
        self.mode = mode
        self.growth = float(growth)
        self._values: List[float] = []
        self._sorted: bool = True
        # -- bounded-mode state: (sign, bucket-index) -> count ----------
        self._buckets: Dict[Tuple[int, int], int] = {}
        self._log_growth = math.log(self.growth)
        self._count = 0
        self._total = 0.0
        self._min = math.inf
        self._max = -math.inf

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._count += 1
        self._total += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self.mode == MODE_EXACT:
            self._values.append(value)
            self._sorted = False
            return
        key = self._bucket_key(value)
        self._buckets[key] = self._buckets.get(key, 0) + 1

    def _bucket_key(self, value: float) -> Tuple[int, int]:
        """The (sign, index) bucket holding ``value`` (bounded mode)."""
        if value == 0.0:
            return (0, 0)
        sign = 1 if value > 0 else -1
        index = math.floor(math.log(abs(value)) / self._log_growth)
        return (sign, index)

    def _bucket_midpoint(self, key: Tuple[int, int]) -> float:
        """Representative value of one bucket (its arithmetic midpoint)."""
        sign, index = key
        if sign == 0:
            return 0.0
        low = self.growth ** index
        high = low * self.growth
        return sign * (low + high) / 2.0

    # ------------------------------------------------------------------
    # Exact aggregates (both modes)
    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        """Mean of the observations (0.0 when empty)."""
        return self._total / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        return self._max if self._count else 0.0

    @property
    def bucket_count(self) -> int:
        """How many buckets the bounded mode currently occupies (0 when
        exact)."""
        return len(self._buckets)

    def values(self) -> Tuple[float, ...]:
        """The raw observations, in recording order (exact mode only)."""
        if self.mode != MODE_EXACT:
            raise ObservabilityError(
                f"histogram {self.name!r} is bounded; raw observations "
                f"are not retained"
            )
        return tuple(self._values)

    # ------------------------------------------------------------------
    # Quantiles
    # ------------------------------------------------------------------
    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``).

        Exact mode interpolates linearly over the sorted sample: with
        ``n`` observations the rank is ``q * (n - 1)``, and a fractional
        rank interpolates between its neighbours.  Bounded mode returns
        the midpoint of the bucket the (rounded) rank falls in, clamped
        to the observed min/max — relative error at most
        ``(growth - 1) / 2``.  Raises :class:`ObservabilityError` on an
        empty histogram or a ``q`` outside ``[0, 1]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(
                f"quantile must be in [0, 1], got {q}"
            )
        if not self._count:
            raise ObservabilityError(
                f"histogram {self.name!r} is empty; no quantiles exist"
            )
        if self.mode == MODE_EXACT:
            if not self._sorted:
                self._values.sort()
                self._sorted = True
            rank = q * (len(self._values) - 1)
            lower = int(rank)
            upper = min(lower + 1, len(self._values) - 1)
            fraction = rank - lower
            return (
                self._values[lower] * (1.0 - fraction)
                + self._values[upper] * fraction
            )
        # Bounded: walk buckets in ascending representative order until
        # the cumulative count covers the rank.
        rank = q * (self._count - 1)
        ordered = sorted(self._buckets, key=self._bucket_midpoint)
        cumulative = 0
        for key in ordered:
            cumulative += self._buckets[key]
            if cumulative > rank:
                midpoint = self._bucket_midpoint(key)
                return min(max(midpoint, self._min), self._max)
        # Unreachable: cumulative == count > rank on the last bucket.
        return self._max  # pragma: no cover - defensive

    def summary(self) -> Dict[str, Any]:
        """Count, total, mean, min/max and the standard quantiles.

        Bounded histograms additionally report their mode (so snapshot
        readers know the quantiles are approximate); exact summaries
        keep the historical keys byte-for-byte.
        """
        if not self._count:
            return {"count": 0, "total": 0.0, "mean": 0.0}
        summary: Dict[str, Any] = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }
        if self.mode != MODE_EXACT:
            summary["mode"] = self.mode
        return summary


class MetricsRegistry:
    """Lazily created named counters, gauges, and histograms.

    ``default_histogram_mode`` sets the storage mode of histograms
    created through the one-shot :meth:`observe` path (and
    :meth:`histogram` calls that do not name a mode) — a long-campaign
    driver can flip a whole tracer to bounded memory with one
    constructor argument while tests and snapshots keep the exact
    default.
    """

    def __init__(self, default_histogram_mode: str = MODE_EXACT) -> None:
        if default_histogram_mode not in _MODES:
            raise ObservabilityError(
                f"unknown default histogram mode "
                f"{default_histogram_mode!r}; expected one of {_MODES}"
            )
        self._default_mode = default_histogram_mode
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (create on first use) -----------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(
        self,
        name: str,
        mode: Optional[str] = None,
        growth: float = DEFAULT_GROWTH,
    ) -> Histogram:
        """The histogram called ``name``, created on first use.

        ``mode`` opts this one instrument into a storage mode at
        creation (default: the registry's default mode).  Asking for a
        mode that contradicts the existing instrument's raises — the
        two modes answer quantile queries differently, so a silent
        mismatch would corrupt whichever caller loses the race.
        """
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                name,
                mode=mode if mode is not None else self._default_mode,
                growth=growth,
            )
        elif mode is not None and mode != instrument.mode:
            raise ObservabilityError(
                f"histogram {name!r} already exists in "
                f"{instrument.mode!r} mode; cannot reopen as {mode!r}"
            )
        return instrument

    # -- one-shot recording shortcuts ----------------------------------
    def increment(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).increment(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- inspection ----------------------------------------------------
    @property
    def counters(self) -> Dict[str, float]:
        """``name -> value`` of every counter, sorted by name."""
        return {
            name: self._counters[name].value
            for name in sorted(self._counters)
        }

    @property
    def gauges(self) -> Dict[str, float]:
        """``name -> value`` of every gauge, sorted by name."""
        return {
            name: self._gauges[name].value for name in sorted(self._gauges)
        }

    @property
    def histograms(self) -> Dict[str, Histogram]:
        """``name -> histogram``, sorted by name."""
        return {
            name: self._histograms[name]
            for name in sorted(self._histograms)
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump (used by the perf snapshot)."""
        return {
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": {
                name: histogram.summary()
                for name, histogram in self.histograms.items()
            },
        }
