"""Counters, gauges, and histograms for the telemetry layer.

A :class:`MetricsRegistry` is a plain in-process bag of named
instruments.  Instruments are created lazily on first use, so
instrumented code never has to pre-declare anything; names follow a
dotted taxonomy documented in ``docs/ARCHITECTURE.md`` (e.g.
``greedy.candidate_evals``, ``platform.events.TaskReassigned``).

The registry is deliberately simple — synchronous, unbounded, no label
sets — because its job is to account for *one* traced run (a round, a
sweep, a bench session), after which a perf snapshot serialises it and
the registry is thrown away.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Tuple

from repro.errors import ObservabilityError


@dataclasses.dataclass
class Counter:
    """A monotonically increasing count."""

    name: str
    value: float = 0.0

    def increment(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the counter."""
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} cannot decrease (got {amount})"
            )
        self.value += amount


@dataclasses.dataclass
class Gauge:
    """A point-in-time value (last write wins)."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """A distribution of observed values with exact quantiles.

    Observations are retained verbatim (runs are bounded, so memory is
    not a concern) and quantiles are computed by linear interpolation
    over the sorted sample — the same convention as
    ``numpy.quantile(..., method="linear")``, implemented here without
    the numpy dependency so the telemetry layer stays import-light.
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: List[float] = []
        self._sorted: bool = True

    def observe(self, value: float) -> None:
        """Record one observation."""
        self._values.append(float(value))
        self._sorted = False

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        """Mean of the observations (0.0 when empty)."""
        return self.total / len(self._values) if self._values else 0.0

    @property
    def min(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def max(self) -> float:
        return max(self._values) if self._values else 0.0

    def values(self) -> Tuple[float, ...]:
        """The raw observations, in recording order."""
        return tuple(self._values)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (``0 <= q <= 1``) by linear interpolation.

        With ``n`` sorted observations the rank is ``q * (n - 1)``; a
        fractional rank interpolates linearly between its neighbours.
        Raises :class:`ObservabilityError` on an empty histogram or a
        ``q`` outside ``[0, 1]``.
        """
        if not 0.0 <= q <= 1.0:
            raise ObservabilityError(
                f"quantile must be in [0, 1], got {q}"
            )
        if not self._values:
            raise ObservabilityError(
                f"histogram {self.name!r} is empty; no quantiles exist"
            )
        if not self._sorted:
            self._values.sort()
            self._sorted = True
        rank = q * (len(self._values) - 1)
        lower = int(rank)
        upper = min(lower + 1, len(self._values) - 1)
        fraction = rank - lower
        return (
            self._values[lower] * (1.0 - fraction)
            + self._values[upper] * fraction
        )

    def summary(self) -> Dict[str, float]:
        """Count, total, mean, min/max and the standard quantiles."""
        if not self._values:
            return {"count": 0, "total": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }


class MetricsRegistry:
    """Lazily created named counters, gauges, and histograms."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access (create on first use) -----------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(name)
        return instrument

    # -- one-shot recording shortcuts ----------------------------------
    def increment(self, name: str, amount: float = 1.0) -> None:
        self.counter(name).increment(amount)

    def set_gauge(self, name: str, value: float) -> None:
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        self.histogram(name).observe(value)

    # -- inspection ----------------------------------------------------
    @property
    def counters(self) -> Dict[str, float]:
        """``name -> value`` of every counter, sorted by name."""
        return {
            name: self._counters[name].value
            for name in sorted(self._counters)
        }

    @property
    def gauges(self) -> Dict[str, float]:
        """``name -> value`` of every gauge, sorted by name."""
        return {
            name: self._gauges[name].value for name in sorted(self._gauges)
        }

    @property
    def histograms(self) -> Dict[str, Histogram]:
        """``name -> histogram``, sorted by name."""
        return {
            name: self._histograms[name]
            for name in sorted(self._histograms)
        }

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly dump (used by the perf snapshot)."""
        return {
            "counters": self.counters,
            "gauges": self.gauges,
            "histograms": {
                name: histogram.summary()
                for name, histogram in self.histograms.items()
            },
        }
