"""Hotspot profiles: where a trace's time is actually spent.

The per-phase table (:func:`repro.obs.snapshot.aggregate_spans`)
reports *inclusive* time — a parent span carries every child's
duration, so ``campaign.run`` always "wins" and the table answers
"what contains the time", not "what consumes it".  This module
computes **self time** — each span's duration minus its direct
children's — aggregates it per phase, and renders the top-N ranking
``repro-crowd trace --top`` prints.  A phase high in *this* table is a
genuine optimisation target, not a container.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Sequence

from repro.obs.spans import Span
from repro.utils.tables import format_table


@dataclasses.dataclass(frozen=True)
class HotspotStats:
    """Aggregated self-time of every span sharing one name.

    ``total_seconds`` is the familiar inclusive total;
    ``self_seconds`` excludes time attributed to direct children.
    ``share`` is this phase's fraction of the whole trace's self time
    (all shares sum to 1 over a well-nested trace).
    """

    name: str
    count: int
    total_seconds: float
    self_seconds: float
    share: float

    @property
    def mean_self_seconds(self) -> float:
        """Mean self time per span (0.0 when empty)."""
        return self.self_seconds / self.count if self.count else 0.0


def span_self_times(spans: Iterable[Span]) -> Dict[int, float]:
    """``span_id -> self seconds`` over the finished spans.

    Self time is the span's duration minus its direct children's
    durations, clamped at zero (clock skew between a parent's close
    and a child's can otherwise push a tiny negative).
    """
    finished = [span for span in spans if span.finished]
    child_totals: Dict[int, float] = {}
    for span in finished:
        if span.parent_id is not None:
            child_totals[span.parent_id] = (
                child_totals.get(span.parent_id, 0.0) + span.duration
            )
    return {
        span.span_id: max(
            span.duration - child_totals.get(span.span_id, 0.0), 0.0
        )
        for span in finished
    }


def aggregate_hotspots(spans: Iterable[Span]) -> List[HotspotStats]:
    """Per-phase self-time stats, sorted hottest-first.

    Ordering is ``(-self_seconds, name)`` — deterministic for the
    manual-clock traces the tests drive.
    """
    finished = [span for span in spans if span.finished]
    self_times = span_self_times(finished)
    per_name_self: Dict[str, float] = {}
    per_name_total: Dict[str, float] = {}
    per_name_count: Dict[str, int] = {}
    for span in finished:
        per_name_self[span.name] = (
            per_name_self.get(span.name, 0.0) + self_times[span.span_id]
        )
        per_name_total[span.name] = (
            per_name_total.get(span.name, 0.0) + span.duration
        )
        per_name_count[span.name] = per_name_count.get(span.name, 0) + 1
    trace_self = sum(per_name_self.values())
    stats = [
        HotspotStats(
            name=name,
            count=per_name_count[name],
            total_seconds=per_name_total[name],
            self_seconds=per_name_self[name],
            share=(
                per_name_self[name] / trace_self if trace_self > 0 else 0.0
            ),
        )
        for name in per_name_self
    ]
    stats.sort(key=lambda hotspot: (-hotspot.self_seconds, hotspot.name))
    return stats


def top_hotspots(
    spans: Iterable[Span], top: int
) -> List[HotspotStats]:
    """The ``top`` hottest phases by self time (all of them if fewer)."""
    if top < 1:
        raise ValueError(f"top must be >= 1, got {top}")
    return aggregate_hotspots(spans)[:top]


def render_hotspot_table(
    hotspots: Sequence[HotspotStats],
    title: Optional[str] = None,
) -> str:
    """The hotspot ranking as a table (self time, share, inclusive)."""
    rows = [
        [
            hotspot.name,
            hotspot.count,
            f"{hotspot.self_seconds * 1e3:.3f}",
            f"{hotspot.share:.1%}",
            f"{hotspot.mean_self_seconds * 1e3:.3f}",
            f"{hotspot.total_seconds * 1e3:.3f}",
        ]
        for hotspot in hotspots
    ]
    return format_table(
        ["phase", "spans", "self ms", "share", "mean self ms", "incl ms"],
        rows,
        title=title if title is not None else "Hotspots (self time)",
    )
