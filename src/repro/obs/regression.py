"""Benchmark regression gating against a committed baseline.

The perf-smoke CI job runs ``benchmarks/test_perf_scaling.py`` with
``--benchmark-json`` and then compares the fresh timings against the
baseline committed in the repository (``BENCH_0004.json``): a gated
benchmark whose mean time exceeds ``baseline * (1 + tolerance)`` fails
the build.  The same module records baselines, so the workflow is::

    # record (developer machine, after a perf-sensitive change):
    python -m pytest benchmarks/test_perf_scaling.py \
        --benchmark-json bench.json
    python -m repro.obs.regression record bench.json \
        --out BENCH_0004.json --note "warm-started matching"

    # check (CI):
    python -m repro.obs.regression check bench.json \
        --baseline BENCH_0004.json --tolerance 0.20 \
        --only "test_offline_vcg_scaling[80]"

Both the baseline file and the comparison keep *seconds*, not ratios,
so the numbers in the committed file double as the measured performance
record for the PR that produced them.
"""

from __future__ import annotations

import argparse
import dataclasses
import fnmatch
import json
import pathlib
from typing import AbstractSet, Dict, List, Mapping, Optional, Sequence

from repro.errors import ReproError
from repro.obs.console import Console

#: Format marker for the baseline file.
BASELINE_SCHEMA = "repro-bench/1"


class RegressionError(ReproError):
    """A malformed benchmark file or a failed regression check."""


class MissingBenchmarkError(RegressionError):
    """The baseline gates a benchmark the fresh run did not produce.

    Distinct from a generic :class:`RegressionError` so CI tooling can
    tell "the suite renamed/lost a benchmark" (fix the baseline) apart
    from "the timing file is malformed" (fix the run); ``benchmark``
    carries the offending name.
    """

    def __init__(self, benchmark: str, message: str) -> None:
        super().__init__(message)
        self.benchmark = benchmark


@dataclasses.dataclass(frozen=True)
class BenchStats:
    """One benchmark's timing statistics, in seconds."""

    mean_seconds: float
    min_seconds: float
    rounds: int

    def to_dict(self) -> Dict[str, object]:
        """Plain-dict form for JSON serialisation."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BenchStats":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                mean_seconds=float(data["mean_seconds"]),  # type: ignore[arg-type]
                min_seconds=float(data["min_seconds"]),  # type: ignore[arg-type]
                rounds=int(data["rounds"]),  # type: ignore[arg-type]
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise RegressionError(
                f"malformed benchmark stats entry: {dict(data)!r}"
            ) from exc


@dataclasses.dataclass(frozen=True)
class Comparison:
    """A gated benchmark's fresh timing against its baseline."""

    name: str
    baseline_seconds: float
    current_seconds: float
    tolerance: float

    @property
    def ratio(self) -> float:
        """current / baseline mean time (> 1 means slower)."""
        return self.current_seconds / self.baseline_seconds

    @property
    def regressed(self) -> bool:
        """Whether the slowdown exceeds the tolerance."""
        return self.current_seconds > self.baseline_seconds * (
            1.0 + self.tolerance
        )

    def describe(self) -> str:
        """One human-readable report line."""
        verdict = "REGRESSED" if self.regressed else "ok"
        return (
            f"{self.name}: {self.current_seconds * 1e3:.1f} ms vs "
            f"baseline {self.baseline_seconds * 1e3:.1f} ms "
            f"({self.ratio:.2f}x, tolerance {self.tolerance:.0%}) "
            f"[{verdict}]"
        )


def load_pytest_benchmark(path: pathlib.Path) -> Dict[str, BenchStats]:
    """Parse a ``pytest-benchmark --benchmark-json`` output file.

    Returns a mapping from the benchmark's test name (including the
    parametrisation suffix, e.g. ``test_offline_vcg_scaling[80]``) to
    its :class:`BenchStats`.
    """
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise RegressionError(
            f"cannot read benchmark results from {path}: {exc}"
        ) from exc
    benchmarks = data.get("benchmarks")
    if not isinstance(benchmarks, list) or not benchmarks:
        raise RegressionError(
            f"{path} has no 'benchmarks' entries; was pytest run with "
            f"--benchmark-json?"
        )
    stats: Dict[str, BenchStats] = {}
    for entry in benchmarks:
        name = entry.get("name")
        timing = entry.get("stats") or {}
        if not name or "mean" not in timing:
            raise RegressionError(
                f"{path}: malformed benchmark entry {entry.get('name')!r}"
            )
        stats[str(name)] = BenchStats(
            mean_seconds=float(timing["mean"]),
            min_seconds=float(timing["min"]),
            rounds=int(timing.get("rounds", 0)),
        )
    return stats


def load_baseline(path: pathlib.Path) -> Dict[str, BenchStats]:
    """Load a committed baseline file written by :func:`write_baseline`."""
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise RegressionError(
            f"cannot read baseline from {path}: {exc}"
        ) from exc
    if data.get("schema") != BASELINE_SCHEMA:
        raise RegressionError(
            f"{path} is not a {BASELINE_SCHEMA} baseline file "
            f"(schema={data.get('schema')!r})"
        )
    return {
        name: BenchStats.from_dict(entry)
        for name, entry in data.get("benchmarks", {}).items()
    }


def write_baseline(
    path: pathlib.Path,
    stats: Mapping[str, BenchStats],
    note: str = "",
    before: Optional[Mapping[str, float]] = None,
) -> None:
    """Write a baseline file.

    ``before`` optionally records the pre-change mean seconds per
    benchmark, preserving the measured speed-up alongside the gate.
    """
    payload: Dict[str, object] = {
        "schema": BASELINE_SCHEMA,
        "note": note,
        "benchmarks": {
            name: stats[name].to_dict() for name in sorted(stats)
        },
    }
    if before:
        payload["before_mean_seconds"] = {
            name: before[name] for name in sorted(before)
        }
    path.write_text(json.dumps(payload, indent=2) + "\n")


def select_benchmarks(
    baseline_names: "AbstractSet[str]",
    only: Optional[Sequence[str]] = None,
) -> List[str]:
    """Expand ``--only`` patterns against the baseline's benchmarks.

    Each pattern is an :mod:`fnmatch`-style glob (``test_vcg*``).  An
    *exact* baseline name always selects itself, even when it contains
    glob metacharacters — parametrised benchmark names like
    ``test_offline_vcg_scaling[80]`` would otherwise be read as a
    character class and never match literally, so pre-glob invocations
    keep working unchanged.  A pattern matching *nothing* raises — a
    silently empty selection would make the gate vacuously green.
    Selection order is sorted per pattern, first-pattern-wins on
    duplicates.
    """
    if only is None:
        return sorted(baseline_names)
    selected: List[str] = []
    seen = set()
    for pattern in only:
        if pattern in baseline_names:
            matches = [pattern]
        else:
            matches = sorted(
                name
                for name in baseline_names
                if fnmatch.fnmatchcase(name, pattern)
            )
        if not matches:
            raise RegressionError(
                f"--only pattern {pattern!r} matches no baseline "
                f"benchmark; known: {sorted(baseline_names)}"
            )
        for name in matches:
            if name not in seen:
                seen.add(name)
                selected.append(name)
    return selected


def compare(
    baseline: Mapping[str, BenchStats],
    current: Mapping[str, BenchStats],
    tolerance: float,
    only: Optional[Sequence[str]] = None,
) -> List[Comparison]:
    """Compare fresh timings against the baseline.

    ``only`` restricts the gate to the benchmarks matching the given
    glob patterns (see :func:`select_benchmarks`); by default every
    baseline benchmark is gated.  A gated benchmark missing from
    ``current`` raises :class:`MissingBenchmarkError` — a
    silently-skipped gate would read as a pass.
    """
    if tolerance < 0:
        raise RegressionError(
            f"tolerance must be >= 0, got {tolerance}"
        )
    names = select_benchmarks(set(baseline), only)
    comparisons = []
    for name in names:
        if name not in current:
            raise MissingBenchmarkError(
                benchmark=name,
                message=(
                    f"benchmark {name!r} is gated by the baseline but "
                    f"missing from the fresh results; did the benchmark "
                    f"suite change names? (fresh: {sorted(current)})"
                ),
            )
        comparisons.append(
            Comparison(
                name=name,
                baseline_seconds=baseline[name].mean_seconds,
                current_seconds=current[name].mean_seconds,
                tolerance=tolerance,
            )
        )
    return comparisons


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Command-line entry point (``python -m repro.obs.regression``)."""
    parser = argparse.ArgumentParser(
        prog="repro.obs.regression",
        description="record / check benchmark baselines",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    record = sub.add_parser(
        "record", help="write a baseline from pytest-benchmark JSON"
    )
    record.add_argument("results", type=pathlib.Path)
    record.add_argument("--out", type=pathlib.Path, required=True)
    record.add_argument("--note", default="")

    check = sub.add_parser(
        "check", help="gate fresh results against a committed baseline"
    )
    check.add_argument("results", type=pathlib.Path)
    check.add_argument("--baseline", type=pathlib.Path, required=True)
    check.add_argument("--tolerance", type=float, default=0.20)
    check.add_argument(
        "--only", action="append", default=None, metavar="PATTERN",
        help="gate only benchmarks matching this glob (repeatable)",
    )

    args = parser.parse_args(argv)
    console = Console()
    try:
        if args.command == "record":
            stats = load_pytest_benchmark(args.results)
            write_baseline(args.out, stats, note=args.note)
            console.out(
                f"baseline with {len(stats)} benchmarks -> {args.out}"
            )
            return 0
        comparisons = compare(
            load_baseline(args.baseline),
            load_pytest_benchmark(args.results),
            tolerance=args.tolerance,
            only=args.only,
        )
        for comparison in comparisons:
            console.out(comparison.describe())
        if any(c.regressed for c in comparisons):
            console.error("benchmark regression gate: FAILED")
            return 1
        console.out("benchmark regression gate: passed")
        return 0
    except RegressionError as exc:
        console.error(f"error: {exc}")
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via CLI smoke
    raise SystemExit(main())
