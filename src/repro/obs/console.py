"""The CLI output layer: one choke point instead of scattered prints.

Every ``repro-crowd`` command writes through a :class:`Console`, which
gives all commands three behaviours for free:

* **default** — byte-identical to the historical ``print`` output,
* ``--quiet`` — progress/confirmation chatter (:meth:`Console.note`)
  is suppressed; primary results (:meth:`Console.out`) still print,
* ``--json`` — human rendering is suppressed entirely and the
  command's structured payload (:meth:`Console.result`) is printed as
  one JSON document at exit.

Library code (mechanisms, matching, experiments) must not print at all
— lint rule ``REP007`` (``no-print``) enforces that; this module and
the CLI entry points carry the only suppressions.
"""

from __future__ import annotations

import json
import sys
from typing import Any, Dict, IO, Mapping, Optional


class Console:
    """Routes command output according to ``--quiet`` / ``--json``."""

    def __init__(
        self,
        quiet: bool = False,
        json_mode: bool = False,
        stream: Optional[IO[str]] = None,
        error_stream: Optional[IO[str]] = None,
    ) -> None:
        self.quiet = bool(quiet)
        self.json_mode = bool(json_mode)
        self._stream = stream if stream is not None else sys.stdout
        self._error_stream = (
            error_stream if error_stream is not None else sys.stderr
        )
        self._payload: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Human-readable channels
    # ------------------------------------------------------------------
    def out(self, text: str = "") -> None:
        """Primary output (tables, results); hidden only in JSON mode."""
        if not self.json_mode:
            print(text, file=self._stream)  # repro: noqa-REP007 -- the CLI output choke point

    def note(self, text: str = "") -> None:
        """Progress/confirmation chatter; hidden by --quiet and --json."""
        if not self.quiet and not self.json_mode:
            print(text, file=self._stream)  # repro: noqa-REP007 -- the CLI output choke point

    def error(self, text: str) -> None:
        """Error reporting; always printed, to stderr."""
        print(text, file=self._error_stream)  # repro: noqa-REP007 -- the CLI output choke point

    # ------------------------------------------------------------------
    # Structured channel
    # ------------------------------------------------------------------
    def result(self, payload: Mapping[str, Any]) -> None:
        """Merge structured results into the command's JSON payload."""
        self._payload.update(payload)

    @property
    def payload(self) -> Dict[str, Any]:
        """The structured payload accumulated so far."""
        return dict(self._payload)

    def finish(self) -> None:
        """Emit the JSON document (JSON mode only); call once per command."""
        if self.json_mode:
            print(  # repro: noqa-REP007 -- the CLI output choke point
                json.dumps(self._payload, indent=2, sort_keys=True),
                file=self._stream,
            )
