"""The run ledger: a durable per-machine history of instrumented runs.

The committed ``BENCH_*.json`` snapshots record the *gated* perf story
— one file per PR, curated.  The ledger records the *local* story:
every ``campaign`` / ``figures`` / ``trace`` / bench invocation appends
one structured :class:`RunRecord` (run id, git SHA, config digest,
wall time, key counters, snapshot/journal refs) to an append-only
``RUNS.jsonl`` file, so "has this command been getting slower on my
machine?" is a query over a file instead of an archaeology session.

Design points:

* **Append-only JSONL, fsync'd per append.**  One run = one line; a
  crashed process costs at most its own line, and
  :meth:`RunLedger.read` tolerates a torn tail (and any other corrupt
  line) by skipping it and counting it on ``ledger.skipped_lines`` —
  the ledger is an observability aid, never a gate that can wedge.
* **Identity is content-derived.**  ``run_id`` hashes the command,
  label, start stamp, and config digest, so two processes appending
  concurrently cannot collide silently, and a test driving the wall
  clock gets reproducible ids.
* **Clock discipline.**  Timestamps come from
  :func:`repro.obs.clock.wall_seconds` / ``perf_seconds`` — never from
  ``time`` directly — so the whole module freezes onto manual clocks
  under test (the same REP015 discipline the workers follow).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import subprocess
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.clock import perf_seconds, wall_seconds

#: Format marker carried on every ledger record.
LEDGER_SCHEMA = "repro-run-ledger/1"

#: Conventional ledger file name.
LEDGER_FILENAME = "RUNS.jsonl"


class LedgerError(ObservabilityError):
    """The run ledger was misused (unwritable path, bad record, ...)."""


def config_digest(config: Mapping[str, Any]) -> str:
    """A short stable digest of a JSON-friendly configuration mapping.

    Key order never matters (canonical separators + sorted keys), so
    two runs with the same effective configuration share a digest even
    if their argument dictionaries were built in different orders.
    """
    try:
        canonical = json.dumps(
            dict(config), sort_keys=True, separators=(",", ":"),
            default=str,
        )
    except TypeError as exc:  # pragma: no cover - default=str catches most
        raise LedgerError(f"configuration is not serialisable: {exc}") from exc
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:12]


def current_git_sha(cwd: Optional["os.PathLike[str]"] = None) -> Optional[str]:
    """The current git HEAD SHA, or ``None`` outside a repository.

    Best-effort by design: the ledger must keep working in exported
    tarballs, containers without git, and detached worktrees.
    """
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.fspath(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
            check=False,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    if completed.returncode != 0 or len(sha) != 40:
        return None
    return sha


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """One ledger line: what ran, when, how long, and what it produced.

    Attributes
    ----------
    run_id:
        Content-derived short identifier (see :func:`make_run_id`).
    command:
        The invocation family (``"campaign"``, ``"figures"``,
        ``"trace"``, ``"bench"``, ...).
    label:
        Free-form sub-label (figure name, mechanism, bench label, ...).
    started_at:
        Wall-clock epoch seconds at start.
    wall_seconds:
        Elapsed wall time of the run.
    git_sha:
        HEAD at run time, or ``None`` when unknown.
    config_digest:
        Digest of the effective configuration (:func:`config_digest`).
    counters:
        Key counters of the run (welfare totals, rounds, span counts —
        whatever the caller considers this command's vitals).
    artifacts:
        Name → path/reference of produced artifacts (perf snapshot,
        journal directory, trace file, heartbeat file, ...).
    """

    run_id: str
    command: str
    label: str
    started_at: float
    wall_seconds: float
    git_sha: Optional[str]
    config_digest: str
    counters: Dict[str, float] = dataclasses.field(default_factory=dict)
    artifacts: Dict[str, str] = dataclasses.field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly form (one ledger line)."""
        payload = dataclasses.asdict(self)
        payload["schema"] = LEDGER_SCHEMA
        payload["counters"] = {
            name: self.counters[name] for name in sorted(self.counters)
        }
        payload["artifacts"] = {
            name: self.artifacts[name] for name in sorted(self.artifacts)
        }
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunRecord":
        """Inverse of :meth:`to_dict` (schema-checked)."""
        if data.get("schema") != LEDGER_SCHEMA:
            raise LedgerError(
                f"not a {LEDGER_SCHEMA} record "
                f"(schema={data.get('schema')!r})"
            )
        try:
            return cls(
                run_id=str(data["run_id"]),
                command=str(data["command"]),
                label=str(data["label"]),
                started_at=float(data["started_at"]),
                wall_seconds=float(data["wall_seconds"]),
                git_sha=(
                    str(data["git_sha"])
                    if data.get("git_sha") is not None
                    else None
                ),
                config_digest=str(data["config_digest"]),
                counters={
                    str(k): float(v)
                    for k, v in dict(data.get("counters", {})).items()
                },
                artifacts={
                    str(k): str(v)
                    for k, v in dict(data.get("artifacts", {})).items()
                },
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise LedgerError(
                f"malformed ledger record: {dict(data)!r}"
            ) from exc


def make_run_id(
    command: str, label: str, started_at: float, digest: str
) -> str:
    """The content-derived run identifier (12 hex chars)."""
    material = f"{command}|{label}|{started_at!r}|{digest}"
    return hashlib.sha256(material.encode("utf-8")).hexdigest()[:12]


@dataclasses.dataclass(frozen=True)
class LedgerView:
    """The readable content of a ledger file.

    ``skipped_lines`` counts lines that were blank, corrupt, or of an
    unknown schema — reported, never fatal.
    """

    records: Tuple[RunRecord, ...]
    skipped_lines: int = 0

    def for_command(self, command: str) -> Tuple[RunRecord, ...]:
        """Records of one command family, in append order."""
        return tuple(r for r in self.records if r.command == command)


class RunLedger:
    """Append/read interface over one ``RUNS.jsonl`` file."""

    def __init__(self, path: "os.PathLike[str]") -> None:
        self._path = pathlib.Path(path)

    @property
    def path(self) -> pathlib.Path:
        """Where this ledger lives."""
        return self._path

    def append(self, record: RunRecord) -> None:
        """Durably append one record (creates parents on first write)."""
        self._path.parent.mkdir(parents=True, exist_ok=True)
        line = json.dumps(record.to_dict(), sort_keys=True) + "\n"
        try:
            with open(self._path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as exc:
            raise LedgerError(
                f"cannot append to run ledger {self._path}: {exc}"
            ) from exc
        obs.counter("ledger.appends")

    def read(self) -> LedgerView:
        """Every readable record, in file order; a missing file is empty."""
        try:
            text = self._path.read_text(encoding="utf-8")
        except FileNotFoundError:
            return LedgerView(records=())
        except OSError as exc:
            raise LedgerError(
                f"cannot read run ledger {self._path}: {exc}"
            ) from exc
        records: List[RunRecord] = []
        skipped = 0
        for line in text.splitlines():
            if not line.strip():
                continue
            try:
                records.append(RunRecord.from_dict(json.loads(line)))
            except (json.JSONDecodeError, LedgerError):
                skipped += 1
        if skipped:
            obs.counter("ledger.skipped_lines", skipped)
        return LedgerView(records=tuple(records), skipped_lines=skipped)


class LedgerSession:
    """Times one command and appends its :class:`RunRecord` on close.

    The CLI wraps each ledgered command in one session::

        session = LedgerSession.start("campaign", label=mechanism,
                                      config=config_dict,
                                      ledger=RunLedger(path))
        ...
        session.add_counters(rounds=50, welfare=total)
        session.add_artifact("journal_dir", str(journal_dir))
        record = session.finish()

    With ``ledger=None`` the session is a no-op recorder, so call sites
    need no conditionals.  ``git_sha`` defaults to the repository HEAD
    discovered from the working directory (best-effort).
    """

    def __init__(
        self,
        ledger: Optional[RunLedger],
        command: str,
        label: str,
        digest: str,
        git_sha: Optional[str],
        started_at: float,
        perf_start: float,
    ) -> None:
        self._ledger = ledger
        self._command = command
        self._label = label
        self._digest = digest
        self._git_sha = git_sha
        self._started_at = started_at
        self._perf_start = perf_start
        self._counters: Dict[str, float] = {}
        self._artifacts: Dict[str, str] = {}
        self._finished = False

    @classmethod
    def start(
        cls,
        command: str,
        label: str,
        config: Mapping[str, Any],
        ledger: Optional[RunLedger],
        git_sha: Optional[str] = None,
    ) -> "LedgerSession":
        """Open a session stamped *now* (wall + perf clocks)."""
        return cls(
            ledger=ledger,
            command=command,
            label=label,
            digest=config_digest(config),
            git_sha=git_sha if git_sha is not None else current_git_sha(),
            started_at=wall_seconds(),
            perf_start=perf_seconds(),
        )

    @property
    def enabled(self) -> bool:
        """Whether this session will actually append anywhere."""
        return self._ledger is not None

    def add_counters(self, **counters: float) -> None:
        """Merge key counters into the pending record."""
        for name, value in counters.items():
            self._counters[name] = float(value)

    def add_artifact(self, name: str, reference: str) -> None:
        """Attach one produced-artifact reference."""
        self._artifacts[name] = str(reference)

    def finish(self) -> Optional[RunRecord]:
        """Build the record and append it (once); no-op when disabled."""
        if self._finished:
            raise LedgerError("ledger session already finished")
        self._finished = True
        record = RunRecord(
            run_id=make_run_id(
                self._command, self._label, self._started_at, self._digest
            ),
            command=self._command,
            label=self._label,
            started_at=self._started_at,
            wall_seconds=perf_seconds() - self._perf_start,
            git_sha=self._git_sha,
            config_digest=self._digest,
            counters=dict(self._counters),
            artifacts=dict(self._artifacts),
        )
        if self._ledger is not None:
            self._ledger.append(record)
        return record if self._ledger is not None else None
