"""Live campaign telemetry: heartbeats for long-running drivers.

A 50-round journaled campaign or a city-scale sweep is silent for
minutes at a time; the only progress signal is the shell cursor.  A
:class:`Heartbeat` gives such drivers a cheap pulse: the driver calls
:meth:`Heartbeat.beat` once per completed unit (round, repetition,
sweep point), and every ``every``-th completion emits one structured
record — progress, units/second, ETA, and a snapshot of the watched
telemetry counters (journal fsync latency, reassignments, retries) —
to a JSONL file and/or the CLI console.

Two invariants shape the design:

* **Heartbeats are observers, not participants.**  Emission reads the
  ambient metrics registry and the perf clock but never touches RNG
  streams, outcomes, or platform state, so a run with heartbeats is
  bit-identical (outcome-wise) to one without — the
  ``check_trace_transparency`` contract extends to live telemetry.
* **Worker pulses merge deterministically.**  Process-pool workers
  cannot share one file handle, so each appends to its own sidecar
  file (:func:`worker_heartbeat_path`); the parent merges them with
  :func:`merge_heartbeats`, ordering records by
  ``(shard, unit_index, seq)`` — stable unit identity, never pid or
  arrival time — so the merged file's record order is reproducible
  across worker counts and schedules even though the latency *values*
  inside the records are wall-clock facts.  Unsharded runners omit the
  ``shard`` key and sort as shard 0, preserving their historical
  ``(unit_index, seq)`` order; sharded campaigns reuse round indices
  per shard, so without the shard component the interleaved records
  of two shards would shuffle by arrival.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from typing import Any, Dict, List, Optional, Tuple

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.clock import perf_seconds
from repro.obs.console import Console

#: Format marker carried on every heartbeat record.
HEARTBEAT_SCHEMA = "repro-heartbeat/1"

#: Counters snapshotted into each heartbeat (when a tracer is active
#: and the counter is nonzero).  Chosen for "is it stuck or working?"
#: value: journal durability traffic, platform churn, sweep resilience.
WATCHED_COUNTERS = (
    "campaign.shard.rounds",
    "journal.appends",
    "journal.rotations",
    "online.stream.events",
    "platform.reassignments",
    "sweep.retries",
    "sweep.checkpoint.hits",
)

#: Histogram whose summary rides along (journal fsync latency).
FSYNC_HISTOGRAM = "journal.fsync.seconds"


class HeartbeatError(ObservabilityError):
    """A heartbeat was configured or driven incorrectly."""


@dataclasses.dataclass(frozen=True)
class HeartbeatConfig:
    """Where and how often a :class:`Heartbeat` pulses.

    Attributes
    ----------
    path:
        JSONL file appended to on each emission (``None`` disables the
        file channel).
    every:
        Emit on every ``every``-th completed unit (>= 1).  The final
        unit always emits, so a finished run is never missing its last
        pulse.
    label:
        What a "unit" is, for readers (``"round"``, ``"repetition"``,
        ``"point"``).
    console:
        Optional CLI console; emissions go through
        :meth:`~repro.obs.console.Console.note`, so ``--quiet`` and
        ``--json`` silence them like any other progress chatter.
    """

    path: Optional[pathlib.Path] = None
    every: int = 10
    label: str = "round"
    console: Optional[Console] = None


def _append_jsonl(path: pathlib.Path, record: Dict[str, Any]) -> None:
    path.parent.mkdir(parents=True, exist_ok=True)
    try:
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record, sort_keys=True) + "\n")
    except OSError as exc:
        raise HeartbeatError(
            f"cannot append heartbeat to {path}: {exc}"
        ) from exc


def _metrics_snapshot() -> Dict[str, Any]:
    """Watched counters + fsync latency from the ambient tracer.

    Empty when no tracer is active — the heartbeat still reports
    progress, just without telemetry vitals.
    """
    tracer = obs.current_tracer()
    if tracer is None:
        return {}
    snapshot: Dict[str, Any] = {}
    counters = tracer.metrics.counters
    for name in WATCHED_COUNTERS:
        value = counters.get(name, 0.0)
        if value:
            snapshot[name] = value
    histogram = tracer.metrics.histograms.get(FSYNC_HISTOGRAM)
    if histogram is not None and histogram.count:
        snapshot[FSYNC_HISTOGRAM] = {
            "count": histogram.count,
            "mean": histogram.mean,
            "max": histogram.max,
        }
    return snapshot


class Heartbeat:
    """Periodic progress pulse over a run of ``total`` units.

    Drivers call :meth:`beat` after each completed unit; the heartbeat
    decides whether that completion emits.  With ``total=None`` the
    ETA is omitted but rate reporting still works.
    """

    def __init__(
        self, config: HeartbeatConfig, total: Optional[int] = None
    ) -> None:
        if config.every < 1:
            raise HeartbeatError(
                f"heartbeat interval must be >= 1 unit, got {config.every}"
            )
        if total is not None and total < 0:
            raise HeartbeatError(f"total units must be >= 0, got {total}")
        self._config = config
        self._total = total
        self._completed = 0
        self._seq = 0
        self._perf_start = perf_seconds()

    @property
    def emitted(self) -> int:
        """How many records this heartbeat has emitted."""
        return self._seq

    def beat(
        self, unit_index: int, **extra: Any
    ) -> Optional[Dict[str, Any]]:
        """Mark one unit complete; emit if it is this pulse's turn.

        ``unit_index`` is the unit's stable identity (round index,
        repetition seed position); ``extra`` rides along verbatim
        (e.g. ``welfare=...``).  Returns the emitted record, or
        ``None`` when this completion stayed silent.
        """
        self._completed += 1
        due = self._completed % self._config.every == 0
        final = self._total is not None and self._completed == self._total
        if not due and not final:
            return None
        record = self._build(unit_index, extra)
        if self._config.path is not None:
            _append_jsonl(self._config.path, record)
        if self._config.console is not None:
            self._config.console.note(self._render(record))
        obs.counter("heartbeat.emits")
        return record

    def _build(
        self, unit_index: int, extra: Dict[str, Any]
    ) -> Dict[str, Any]:
        elapsed = perf_seconds() - self._perf_start
        rate = self._completed / elapsed if elapsed > 0 else 0.0
        eta: Optional[float] = None
        if self._total is not None and rate > 0:
            eta = (self._total - self._completed) / rate
        record: Dict[str, Any] = {
            "schema": HEARTBEAT_SCHEMA,
            "label": self._config.label,
            "seq": self._seq,
            "unit_index": unit_index,
            "completed": self._completed,
            "total": self._total,
            "elapsed_seconds": elapsed,
            "units_per_second": rate,
            "eta_seconds": eta,
            "metrics": _metrics_snapshot(),
        }
        for key, value in extra.items():
            record[key] = value
        self._seq += 1
        return record

    def _render(self, record: Dict[str, Any]) -> str:
        label = self._config.label
        total = record["total"]
        progress = (
            f"{record['completed']}/{total}"
            if total is not None
            else f"{record['completed']}"
        )
        parts = [
            f"[heartbeat] {label} {progress}",
            f"{record['units_per_second']:.2f} {label}s/s",
        ]
        if record["eta_seconds"] is not None:
            parts.append(f"eta {record['eta_seconds']:.1f}s")
        metrics = record["metrics"]
        fsync = metrics.get(FSYNC_HISTOGRAM)
        if fsync:
            parts.append(f"fsync mean {fsync['mean'] * 1e3:.2f}ms")
        reassigned = metrics.get("platform.reassignments")
        if reassigned:
            parts.append(f"reassigned {reassigned:.0f}")
        events = metrics.get("online.stream.events")
        elapsed = record["elapsed_seconds"]
        if events and elapsed > 0:
            # Cumulative streaming-engine events over the run's wall
            # clock: the "is the engine still chewing?" vital for
            # city-scale campaigns.
            parts.append(f"stream {events / elapsed:.0f} ev/s")
        return " | ".join(parts)


# ----------------------------------------------------------------------
# Per-worker sidecar files (process-pool runners)
# ----------------------------------------------------------------------
def worker_heartbeat_path(
    base: "os.PathLike[str]", worker_id: int
) -> pathlib.Path:
    """The sidecar file a pool worker appends to.

    Keyed by the worker's pid purely to avoid write interleaving; the
    pid never survives into the merged ordering.
    """
    path = pathlib.Path(base)
    return path.with_name(f"{path.stem}.worker-{worker_id}{path.suffix}")


def append_worker_beat(
    base: "os.PathLike[str]",
    label: str,
    unit_index: int,
    elapsed_seconds: float,
    **extra: Any,
) -> None:
    """Record one completed unit from inside a pool worker.

    Each worker process appends to its own sidecar next to ``base``
    (derived from its pid), so no two processes share a file handle;
    :func:`merge_heartbeats` later folds the sidecars into ``base`` in
    deterministic order.
    """
    record: Dict[str, Any] = {
        "schema": HEARTBEAT_SCHEMA,
        "label": label,
        "seq": 0,
        "unit_index": unit_index,
        "elapsed_seconds": elapsed_seconds,
        "worker_pid": os.getpid(),
    }
    for key, value in extra.items():
        record[key] = value
    _append_jsonl(worker_heartbeat_path(base, os.getpid()), record)


def merge_heartbeats(base: "os.PathLike[str]") -> int:
    """Fold every worker sidecar into ``base``, deterministically.

    Records are ordered by ``(shard, unit_index, seq)`` — their stable
    unit identity — never by pid, arrival, or timestamp, so the merged
    file's record sequence is identical across worker counts and
    schedules (the REP013 unordered-reduction discipline, applied to
    telemetry).  Records without a ``shard`` key (unsharded runners)
    sort as shard 0; sharded campaigns reuse unit indices across
    shards, so the shard component is what keeps interleaved shard
    progress from reordering.  Sidecars are deleted after a successful
    merge.  Unparseable sidecar lines are skipped (heartbeats are lossy
    by charter); returns the number of records merged.
    """
    base_path = pathlib.Path(base)
    pattern = f"{base_path.stem}.worker-*{base_path.suffix}"
    worker_files = sorted(base_path.parent.glob(pattern))
    records: List[Dict[str, Any]] = []
    for worker_file in worker_files:
        for line in worker_file.read_text(encoding="utf-8").splitlines():
            if not line.strip():
                continue
            try:
                parsed = json.loads(line)
            except json.JSONDecodeError:
                continue
            if (
                isinstance(parsed, dict)
                and parsed.get("schema") == HEARTBEAT_SCHEMA
            ):
                records.append(parsed)
    records.sort(
        key=lambda r: (
            int(r.get("shard", 0)),
            int(r.get("unit_index", 0)),
            int(r.get("seq", 0)),
        )
    )
    for record in records:
        _append_jsonl(base_path, record)
    for worker_file in worker_files:
        worker_file.unlink()
    if records:
        obs.counter("heartbeat.merged", len(records))
    return len(records)


def read_heartbeats(
    path: "os.PathLike[str]",
) -> Tuple[Dict[str, Any], ...]:
    """Every heartbeat record in ``path``, in file order.

    Missing file → empty; unparseable or foreign-schema lines are
    skipped (same lossy charter as the merge).
    """
    try:
        text = pathlib.Path(path).read_text(encoding="utf-8")
    except FileNotFoundError:
        return ()
    records: List[Dict[str, Any]] = []
    for line in text.splitlines():
        if not line.strip():
            continue
        try:
            parsed = json.loads(line)
        except json.JSONDecodeError:
            continue
        if (
            isinstance(parsed, dict)
            and parsed.get("schema") == HEARTBEAT_SCHEMA
        ):
            records.append(parsed)
    return tuple(records)
