"""Nested timing spans and the tracer that produces them.

A :class:`Span` is one timed region of work — a Hungarian solve, a
platform slot, a sweep point — with a name from the taxonomy documented
in ``docs/ARCHITECTURE.md``, free-form attributes, and start/end
readings from the tracer's injectable clock.  Spans nest: entering a
span while another is open makes it a child, so a traced run yields a
tree (rendered by :func:`repro.obs.snapshot.render_span_tree`).

The tracer itself is *ambient*: instrumented library code never holds a
tracer reference.  It calls the module-level helpers in
:mod:`repro.obs` (``span`` / ``counter`` / ``observe`` / ...), which
look up the active tracer in a :mod:`contextvars` context variable and
fall back to shared no-op objects when none is installed.  This keeps
``Mechanism.run`` a pure function of its inputs — tracing changes no
signatures and no behaviour, a guarantee enforced by
:func:`repro.analysis.sanitizer.check_trace_transparency`.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ObservabilityError
from repro.obs.clock import Clock, MonotonicClock
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import InMemorySink, TraceSink


@dataclasses.dataclass
class Span:
    """One timed region of a traced run.

    Attributes
    ----------
    name:
        Dotted taxonomy name (e.g. ``"platform.slot"``).
    span_id / parent_id:
        Per-tracer sequential identity; ``parent_id`` is ``None`` for
        roots.
    depth:
        Nesting depth at entry (roots are 0).
    start / end:
        Clock readings; ``end`` is ``None`` while the span is open.
    attributes:
        Free-form JSON-friendly annotations set by instrumented code.
    """

    name: str
    span_id: int
    parent_id: Optional[int]
    depth: int
    start: float
    end: Optional[float] = None
    attributes: Dict[str, Any] = dataclasses.field(default_factory=dict)

    @property
    def finished(self) -> bool:
        """Whether the span has ended."""
        return self.end is not None

    @property
    def duration(self) -> float:
        """Elapsed seconds (raises while the span is still open)."""
        if self.end is None:
            raise ObservabilityError(
                f"span {self.name!r} (id {self.span_id}) is still open; "
                f"it has no duration yet"
            )
        return self.end - self.start

    def set_attribute(self, key: str, value: Any) -> None:
        """Attach one annotation (JSON-friendly values only)."""
        self.attributes[key] = value

    def to_dict(self) -> Dict[str, Any]:
        """JSON-friendly representation (one JSONL trace line)."""
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "start": self.start,
            "end": self.end,
            "duration": self.duration if self.finished else None,
            "attributes": dict(self.attributes),
        }


class _SpanHandle:
    """Context manager guarding one span's open/close lifecycle."""

    __slots__ = ("_tracer", "_name", "_attributes", "_span")

    def __init__(
        self, tracer: "Tracer", name: str, attributes: Dict[str, Any]
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._attributes = attributes
        self._span: Optional[Span] = None

    def __enter__(self) -> Span:
        self._span = self._tracer._open(self._name, self._attributes)
        return self._span

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        assert self._span is not None
        if exc_type is not None:
            self._span.attributes.setdefault("error", exc_type.__name__)
        self._tracer._close(self._span)
        return False


class Tracer:
    """Produces nested spans against an injectable clock.

    Parameters
    ----------
    clock:
        Time source (default: :class:`~repro.obs.clock.MonotonicClock`;
        tests inject :class:`~repro.obs.clock.ManualClock`).
    sink:
        Where finished spans and exported events are delivered
        (default: a fresh :class:`~repro.obs.sinks.InMemorySink`).
    metrics:
        The metrics registry instrumented code increments (default: a
        fresh :class:`~repro.obs.metrics.MetricsRegistry`).

    Finished spans are also retained on the tracer itself
    (:attr:`spans`), so summaries and snapshots never depend on the
    sink choice.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        sink: Optional[TraceSink] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        self.clock: Clock = clock if clock is not None else MonotonicClock()
        self.sink: TraceSink = sink if sink is not None else InMemorySink()
        self.metrics: MetricsRegistry = (
            metrics if metrics is not None else MetricsRegistry()
        )
        self._stack: List[Span] = []
        self._finished: List[Span] = []
        self._next_id = 0

    # ------------------------------------------------------------------
    # Span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: Any) -> _SpanHandle:
        """A context manager timing one region::

            with tracer.span("matching.solve", rows=n) as sp:
                ...
                sp.set_attribute("augmentations", count)
        """
        return _SpanHandle(self, name, attributes)

    def _open(self, name: str, attributes: Dict[str, Any]) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name=name,
            span_id=self._next_id,
            parent_id=None if parent is None else parent.span_id,
            depth=len(self._stack),
            start=self.clock.now(),
            attributes=attributes,
        )
        self._next_id += 1
        self._stack.append(span)
        return span

    def _close(self, span: Span) -> None:
        if not self._stack or self._stack[-1] is not span:
            raise ObservabilityError(
                f"span {span.name!r} (id {span.span_id}) closed out of "
                f"order; spans must finish innermost-first"
            )
        self._stack.pop()
        span.end = self.clock.now()
        self._finished.append(span)
        # Every phase gets a latency histogram for free: quantiles over
        # e.g. per-slot decision latency come from "platform.slot.seconds".
        self.metrics.observe(span.name + ".seconds", span.end - span.start)
        self.sink.record_span(span)

    # ------------------------------------------------------------------
    # Event export
    # ------------------------------------------------------------------
    def record_event(self, event: Any) -> None:
        """Export one platform event: count it and hand it to the sink."""
        self.metrics.increment(f"platform.events.{type(event).__name__}")
        self.sink.record_event(event)

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def spans(self) -> Tuple[Span, ...]:
        """Finished spans, in completion order."""
        return tuple(self._finished)

    @property
    def open_depth(self) -> int:
        """How many spans are currently open."""
        return len(self._stack)

    def roots(self) -> Tuple[Span, ...]:
        """Finished root spans, in completion order."""
        return tuple(span for span in self._finished if span.parent_id is None)

    def children_of(self, span: Span) -> Tuple[Span, ...]:
        """Finished direct children of ``span``, in completion order."""
        return tuple(
            candidate
            for candidate in self._finished
            if candidate.parent_id == span.span_id
        )
