"""Ambient tracer activation and the no-op fast path.

Instrumented library code calls the module-level helpers here (usually
via ``from repro import obs; obs.span(...)``).  Each helper reads the
active tracer from a :mod:`contextvars` context variable:

* **No tracer installed** (the default): every helper returns a shared
  no-op object or does nothing.  The cost is one context-variable read —
  tens of nanoseconds — so permanently instrumented hot paths stay
  within the documented <5 % overhead budget.  Instrumentation inside
  innermost loops additionally keeps *local* Python counters and
  reports them once per call, so the disabled cost there is zero.
* **Tracer installed** (via :class:`activate`): helpers delegate to the
  tracer's spans, metrics registry, and sink.

Activation is a context manager, and the context variable (rather than
a module global) means concurrently running simulations — threads,
``asyncio`` tasks — each see their own tracer.
"""

from __future__ import annotations

import contextvars
from typing import Any, Optional

from repro.obs.spans import Tracer

_ACTIVE: "contextvars.ContextVar[Optional[Tracer]]" = contextvars.ContextVar(
    "repro_obs_tracer", default=None
)


class _NullSpan:
    """Shared do-nothing stand-in for a span when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        return False

    def set_attribute(self, key: str, value: Any) -> None:
        """Dropped; there is no trace to annotate."""


_NULL_SPAN = _NullSpan()


class activate:
    """Install ``tracer`` as the ambient tracer for a ``with`` block::

        tracer = Tracer(clock=ManualClock(tick=1.0))
        with obs.activate(tracer):
            mechanism.run(bids, schedule)   # instrumented internally
        tree = tracer.spans

    Activations nest; the previous tracer is restored on exit.
    """

    def __init__(self, tracer: Tracer) -> None:
        self._tracer = tracer
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Tracer:
        self._token = _ACTIVE.set(self._tracer)
        return self._tracer

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        assert self._token is not None
        _ACTIVE.reset(self._token)
        return False


def current_tracer() -> Optional[Tracer]:
    """The ambient tracer, or ``None`` when tracing is disabled."""
    return _ACTIVE.get()


def tracing_enabled() -> bool:
    """Whether a tracer is currently installed."""
    return _ACTIVE.get() is not None


def span(name: str, **attributes: Any):
    """Open a timing span on the ambient tracer (no-op when disabled)."""
    tracer = _ACTIVE.get()
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attributes)


def counter(name: str, amount: float = 1.0) -> None:
    """Increment a counter on the ambient metrics registry."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.metrics.increment(name, amount)


def gauge(name: str, value: float) -> None:
    """Set a gauge on the ambient metrics registry."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.metrics.set_gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record a histogram observation on the ambient metrics registry."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.metrics.observe(name, value)


def record_event(event: Any) -> None:
    """Export a platform event through the ambient tracer."""
    tracer = _ACTIVE.get()
    if tracer is not None:
        tracer.record_event(event)
