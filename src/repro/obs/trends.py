"""Bench-trend observatory: time series over the ``BENCH_*`` history.

The pairwise regression gate (:mod:`repro.obs.regression`) compares one
fresh run against one committed baseline with a 20 % tolerance — which
a slow leak can live under forever: five consecutive PRs each 10 %
slower never trip it, yet the series is 60 % worse end to end.  This
module reads the *whole* committed ``BENCH_0004…N`` sequence (plus,
optionally, the local run ledger) and renders a markdown dashboard of
per-benchmark time series — sparkline, net change, least-squares slope
— flagging exactly that sustained multi-PR creep.

Tolerance is the design center: the series is ragged by nature.  Files
come and go (``BENCH_0006`` measures the flow analyzer, not the
mechanisms), benchmarks appear and disappear between files (gaps), and
schema details differ (``before_mean_seconds``, ``budget`` blocks).
Every readable ``(file, benchmark, mean_seconds)`` triple contributes a
point; everything else is skipped and *reported*, never fatal.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError
from repro.obs.ledger import LedgerView, RunLedger

#: Series verdicts.
VERDICT_DRIFTING = "drifting"    # sustained slowdown over the series
VERDICT_IMPROVING = "improving"  # sustained speedup
VERDICT_STABLE = "stable"        # within the drift threshold
VERDICT_SHORT = "short"          # too few points to call (< 3)

#: Relative per-step slope above which a series is called drifting.
DEFAULT_DRIFT_THRESHOLD = 0.05

_SPARK_BLOCKS = "▁▂▃▄▅▆▇█"


class TrendError(ObservabilityError):
    """The trend observatory was pointed at something unusable."""


@dataclasses.dataclass(frozen=True)
class TrendPoint:
    """One observation of one benchmark in one source file."""

    source: str
    mean_seconds: float


@dataclasses.dataclass(frozen=True)
class TrendSeries:
    """One benchmark's observations across the source sequence."""

    name: str
    points: Tuple[TrendPoint, ...]

    @property
    def values(self) -> Tuple[float, ...]:
        return tuple(point.mean_seconds for point in self.points)

    @property
    def first(self) -> float:
        return self.points[0].mean_seconds

    @property
    def last(self) -> float:
        return self.points[-1].mean_seconds

    @property
    def net_change(self) -> float:
        """last/first − 1 (0.0 for single-point series)."""
        if len(self.points) < 2 or self.first == 0:
            return 0.0
        return self.last / self.first - 1.0

    def slope_per_step(self) -> float:
        """Least-squares slope per step, relative to the series mean.

        ``0.10`` means the fitted line climbs ten percent of the mean
        value per source file — the "sustained creep" signal a pairwise
        gate cannot see.  Series shorter than 2 points have no slope.
        """
        values = self.values
        n = len(values)
        if n < 2:
            return 0.0
        mean_value = sum(values) / n
        if mean_value == 0:
            return 0.0
        mean_index = (n - 1) / 2.0
        covariance = sum(
            (i - mean_index) * (v - mean_value)
            for i, v in enumerate(values)
        )
        variance = sum((i - mean_index) ** 2 for i in range(n))
        return (covariance / variance) / mean_value

    def verdict(self, threshold: float = DEFAULT_DRIFT_THRESHOLD) -> str:
        """Classify the series against the drift ``threshold``."""
        if len(self.points) < 3:
            return VERDICT_SHORT
        slope = self.slope_per_step()
        if slope > threshold and self.last > self.first:
            return VERDICT_DRIFTING
        if slope < -threshold and self.last < self.first:
            return VERDICT_IMPROVING
        return VERDICT_STABLE


def sparkline(values: Sequence[float]) -> str:
    """A unicode block sparkline of ``values`` (empty string when empty)."""
    if not values:
        return ""
    low = min(values)
    high = max(values)
    if high == low:
        return _SPARK_BLOCKS[3] * len(values)
    span = high - low
    top = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[int(round((v - low) / span * top))] for v in values
    )


# ----------------------------------------------------------------------
# Loading
# ----------------------------------------------------------------------
def discover_bench_files(directory: "pathlib.Path") -> List[pathlib.Path]:
    """The ``BENCH_*.json`` files under ``directory``, in name order."""
    root = pathlib.Path(directory)
    if not root.is_dir():
        raise TrendError(f"bench directory {root} does not exist")
    return sorted(root.glob("BENCH_*.json"))


def read_bench_means(path: pathlib.Path) -> Optional[Dict[str, float]]:
    """``benchmark name -> mean seconds`` from one BENCH file.

    Understands both committed formats — regression baselines
    (``repro-bench/1``) and perf snapshots (``repro-perf-snapshot/v1``,
    whose per-phase means are the comparable series) — and shrugs at
    anything else: returns ``None`` for an unreadable or unknown file
    (the caller reports it as skipped).  Malformed *entries* inside a
    readable file are skipped individually, so one bad row cannot hide
    a whole file's history.
    """
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(data, Mapping):
        return None
    schema = data.get("schema")
    means: Dict[str, float] = {}
    if schema == "repro-bench/1":
        benchmarks = data.get("benchmarks")
        if not isinstance(benchmarks, Mapping):
            return None
        for name, entry in benchmarks.items():
            try:
                means[str(name)] = float(entry["mean_seconds"])
            except (KeyError, TypeError, ValueError):
                continue
        return means
    if schema == "repro-perf-snapshot/v1":
        phases = data.get("phases")
        if not isinstance(phases, list):
            return None
        for entry in phases:
            try:
                means[str(entry["name"])] = float(entry["mean_seconds"])
            except (KeyError, TypeError, ValueError):
                continue
        return means
    return None


@dataclasses.dataclass(frozen=True)
class TrendReport:
    """Everything the dashboard renders.

    ``series`` maps benchmark name → :class:`TrendSeries` over the
    bench files; ``run_series`` holds the ledger's per-command wall
    times; ``sources`` and ``skipped`` name the files that did and did
    not contribute.
    """

    series: Dict[str, TrendSeries]
    run_series: Dict[str, TrendSeries]
    sources: Tuple[str, ...]
    skipped: Tuple[str, ...]
    threshold: float = DEFAULT_DRIFT_THRESHOLD

    def verdicts(self) -> Dict[str, str]:
        """``series name -> verdict`` over every series (bench + runs)."""
        combined = {**self.series, **self.run_series}
        return {
            name: combined[name].verdict(self.threshold)
            for name in sorted(combined)
        }

    def drifting(self) -> List[str]:
        """Names of series flagged as drifting, sorted."""
        return [
            name
            for name, verdict in sorted(self.verdicts().items())
            if verdict == VERDICT_DRIFTING
        ]


def collect_trends(
    bench_dir: "pathlib.Path",
    ledger: Optional[RunLedger] = None,
    threshold: float = DEFAULT_DRIFT_THRESHOLD,
) -> TrendReport:
    """Build the full trend report for one bench directory (+ ledger)."""
    if threshold <= 0:
        raise TrendError(f"drift threshold must be > 0, got {threshold}")
    files = discover_bench_files(bench_dir)
    observations: Dict[str, List[TrendPoint]] = {}
    sources: List[str] = []
    skipped: List[str] = []
    for path in files:
        means = read_bench_means(path)
        if means is None:
            skipped.append(path.name)
            continue
        source = path.stem
        sources.append(source)
        for name in sorted(means):
            observations.setdefault(name, []).append(
                TrendPoint(source=source, mean_seconds=means[name])
            )
    series = {
        name: TrendSeries(name=name, points=tuple(points))
        for name, points in observations.items()
    }
    run_series = (
        ledger_run_series(ledger.read()) if ledger is not None else {}
    )
    return TrendReport(
        series=series,
        run_series=run_series,
        sources=tuple(sources),
        skipped=tuple(skipped),
        threshold=threshold,
    )


def ledger_run_series(view: LedgerView) -> Dict[str, TrendSeries]:
    """Per-``(command, label)`` wall-time series from ledger records.

    Records keep their append order (the ledger is append-only, so that
    *is* chronological order on one machine); each distinct
    ``command/label`` pair becomes one ``run:`` series.
    """
    observations: Dict[str, List[TrendPoint]] = {}
    for record in view.records:
        name = f"run:{record.command}:{record.label}"
        observations.setdefault(name, []).append(
            TrendPoint(
                source=record.run_id, mean_seconds=record.wall_seconds
            )
        )
    return {
        name: TrendSeries(name=name, points=tuple(points))
        for name, points in observations.items()
    }


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def _format_seconds(seconds: float) -> str:
    """Adaptive human duration (µs/ms/s)."""
    if seconds == 0:
        return "0 s"
    magnitude = abs(seconds)
    if magnitude < 1e-3:
        return f"{seconds * 1e6:.1f} µs"
    if magnitude < 1.0:
        return f"{seconds * 1e3:.1f} ms"
    return f"{seconds:.2f} s"


def _series_row(series: TrendSeries, threshold: float) -> str:
    verdict = series.verdict(threshold)
    marker = {
        VERDICT_DRIFTING: "**DRIFTING**",
        VERDICT_IMPROVING: "improving",
        VERDICT_STABLE: "stable",
        VERDICT_SHORT: "–",
    }[verdict]
    return (
        f"| `{series.name}` | {len(series.points)} "
        f"| {_format_seconds(series.first)} "
        f"| {_format_seconds(series.last)} "
        f"| {series.net_change:+.1%} "
        f"| {series.slope_per_step():+.1%}/step "
        f"| `{sparkline(series.values)}` | {marker} |"
    )


_TABLE_HEADER = (
    "| series | runs | first | last | net | slope | trend | verdict |\n"
    "| --- | ---: | ---: | ---: | ---: | ---: | --- | --- |"
)


def render_trend_dashboard(report: TrendReport) -> str:
    """The markdown dashboard (deterministic for fixed inputs).

    Contains no timestamps or host names, for the same reason perf
    snapshots don't: CI regenerates it on every PR, and a content-equal
    history must diff clean.
    """
    lines: List[str] = []
    lines.append("# Bench trend dashboard")
    lines.append("")
    lines.append(
        f"Sources: {len(report.sources)} bench file(s)"
        + (
            " — " + ", ".join(f"`{s}`" for s in report.sources)
            if report.sources
            else ""
        )
    )
    if report.skipped:
        lines.append(
            "Skipped (unreadable or unknown schema): "
            + ", ".join(f"`{s}`" for s in report.skipped)
        )
    lines.append(
        f"Drift rule: ≥ 3 points and fitted slope > "
        f"{report.threshold:.0%} of the series mean per step."
    )
    lines.append("")

    drifting = report.drifting()
    lines.append("## Drift alerts")
    lines.append("")
    if drifting:
        for name in drifting:
            series = {**report.series, **report.run_series}[name]
            lines.append(
                f"- `{name}`: {series.slope_per_step():+.1%}/step over "
                f"{len(series.points)} runs "
                f"({_format_seconds(series.first)} → "
                f"{_format_seconds(series.last)}, "
                f"{series.net_change:+.1%} net) — sustained creep the "
                f"pairwise gate cannot see."
            )
    else:
        lines.append("- none")
    lines.append("")

    lines.append("## Benchmarks")
    lines.append("")
    if report.series:
        lines.append(_TABLE_HEADER)
        for name in sorted(report.series):
            lines.append(_series_row(report.series[name], report.threshold))
    else:
        lines.append("(no benchmark series found)")
    lines.append("")

    if report.run_series:
        lines.append("## Ledgered runs (this machine)")
        lines.append("")
        lines.append(_TABLE_HEADER)
        for name in sorted(report.run_series):
            lines.append(
                _series_row(report.run_series[name], report.threshold)
            )
        lines.append("")
    return "\n".join(lines)
