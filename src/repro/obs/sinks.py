"""Trace sinks: where finished spans and exported events go.

A sink receives two record kinds from the :class:`~repro.obs.Tracer`:

* **spans** — finished :class:`~repro.obs.spans.Span` objects,
* **events** — :class:`~repro.auction.events.AuctionEvent` instances
  exported from a platform run (serialised via their ``to_dict``).

Three sinks ship:

* :class:`NullSink` — drops everything; the default wherever telemetry
  is wired but nobody asked for a trace.
* :class:`InMemorySink` — collects records in lists; what tests and the
  perf-snapshot reporter consume.
* :class:`JsonlSink` — appends one JSON object per record to a file;
  the export format of ``repro-crowd trace`` (reload with
  :func:`read_jsonl`).

:class:`TeeSink` fans records out to several sinks (e.g. in-memory for
the summary tree *and* JSONL for the artifact).
"""

from __future__ import annotations

import json
import os
import pathlib
from typing import TYPE_CHECKING, Any, Dict, List, Tuple

from repro.errors import ObservabilityError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.obs.spans import Span


class TraceSink:
    """Base sink: ignores everything (also serves as the null object)."""

    def record_span(self, span: "Span") -> None:
        """Receive one finished span."""

    def record_event(self, event: Any) -> None:
        """Receive one exported platform event."""

    def close(self) -> None:
        """Flush and release resources (idempotent)."""


#: Alias making call sites read as intent, not inheritance accident.
NullSink = TraceSink


class InMemorySink(TraceSink):
    """Collects spans and events in memory, in arrival order."""

    def __init__(self) -> None:
        self._spans: List["Span"] = []
        self._events: List[Any] = []

    @property
    def spans(self) -> Tuple["Span", ...]:
        """Finished spans, in completion order."""
        return tuple(self._spans)

    @property
    def events(self) -> Tuple[Any, ...]:
        """Exported events, in emission order."""
        return tuple(self._events)

    def record_span(self, span: "Span") -> None:
        self._spans.append(span)

    def record_event(self, event: Any) -> None:
        self._events.append(event)


class JsonlSink(TraceSink):
    """Writes each record as one JSON line to ``path``.

    Span lines carry ``{"record": "span", ...span.to_dict()}``; event
    lines carry ``{"record": "event", "event": event.to_dict()}``.  The
    file is created (parents included) on construction and truncated —
    one sink is one trace.
    """

    def __init__(self, path: "os.PathLike[str]") -> None:
        self._path = pathlib.Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = self._path.open("w", encoding="utf-8")
        self._closed = False

    @property
    def path(self) -> pathlib.Path:
        """Where this sink writes."""
        return self._path

    def _write(self, payload: Dict[str, Any]) -> None:
        if self._closed:
            raise ObservabilityError(
                f"trace sink {self._path} is closed; cannot record"
            )
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")

    def record_span(self, span: "Span") -> None:
        record = {"record": "span"}
        record.update(span.to_dict())
        self._write(record)

    def record_event(self, event: Any) -> None:
        self._write({"record": "event", "event": event.to_dict()})

    def close(self) -> None:
        if not self._closed:
            self._handle.close()
            self._closed = True

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class TeeSink(TraceSink):
    """Fans every record out to several child sinks, in order.

    A failing child never starves its siblings: every fan-out drives
    *all* children, collecting whatever they raise, and re-raises one
    :class:`~repro.errors.ObservabilityError` naming each failure.  A
    tee over (in-memory, JSONL) therefore keeps the in-memory summary
    intact even when the JSONL artifact hits a full disk — and
    ``close()`` releases every closable child no matter which one
    raised first.
    """

    def __init__(self, *sinks: TraceSink) -> None:
        self._sinks = tuple(sinks)

    def _fan_out(self, method: str, *args: Any) -> None:
        failures: List[str] = []
        for sink in self._sinks:
            try:
                getattr(sink, method)(*args)
            except Exception as exc:
                failures.append(
                    f"{type(sink).__name__}.{method}: "
                    f"{type(exc).__name__}: {exc}"
                )
        if failures:
            raise ObservabilityError(
                f"{len(failures)} of {len(self._sinks)} tee'd sink(s) "
                f"failed (every child was still driven): "
                + "; ".join(failures)
            )

    def record_span(self, span: "Span") -> None:
        self._fan_out("record_span", span)

    def record_event(self, event: Any) -> None:
        self._fan_out("record_event", event)

    def close(self) -> None:
        self._fan_out("close")


def read_jsonl(path: "os.PathLike[str]") -> List[Dict[str, Any]]:
    """Load every record of a :class:`JsonlSink` trace file.

    Returns the parsed JSON objects in file order; blank lines are
    skipped.  Raises :class:`~repro.errors.ObservabilityError` on a line
    that is not valid JSON (a truncated or corrupted trace).
    """
    records: List[Dict[str, Any]] = []
    text = pathlib.Path(path).read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise ObservabilityError(
                f"{path}:{lineno}: trace line is not valid JSON: {exc}"
            ) from exc
    return records
