"""Telemetry for the auction stack: spans, metrics, export, snapshots.

The package has two faces:

* **Instrumentation API** (what library code imports)::

      from repro import obs

      def hot_path(...):
          with obs.span("matching.solve", rows=n) as sp:
              ...
              sp.set_attribute("augmentations", count)
          obs.counter("greedy.candidate_evals", evaluated)

  With no tracer installed every helper is a near-zero-cost no-op, so
  instrumentation is always-on in the source without a perf budget
  conversation per call site.

* **Collection API** (what drivers, tests, and the CLI use)::

      tracer = Tracer(clock=ManualClock(tick=1.0), sink=JsonlSink(path))
      with obs.activate(tracer):
          run_whatever()
      print(render_phase_table(aggregate_spans(tracer.spans)))

See ``docs/ARCHITECTURE.md`` ("Observability") for the span taxonomy
and metric names.
"""

from repro.obs.clock import (
    Clock,
    ManualClock,
    MonotonicClock,
    WallClock,
    perf_seconds,
    set_perf_clock,
    set_wall_clock,
    wall_seconds,
)
from repro.obs.console import Console
from repro.obs.context import (
    activate,
    counter,
    current_tracer,
    gauge,
    observe,
    record_event,
    span,
    tracing_enabled,
)
from repro.obs.ledger import (
    LEDGER_FILENAME,
    LEDGER_SCHEMA,
    LedgerError,
    LedgerSession,
    LedgerView,
    RunLedger,
    RunRecord,
    config_digest,
    current_git_sha,
    make_run_id,
)
from repro.obs.live import (
    HEARTBEAT_SCHEMA,
    Heartbeat,
    HeartbeatConfig,
    HeartbeatError,
    append_worker_beat,
    merge_heartbeats,
    read_heartbeats,
    worker_heartbeat_path,
)
from repro.obs.metrics import (
    MODE_BOUNDED,
    MODE_EXACT,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.report import (
    HotspotStats,
    aggregate_hotspots,
    render_hotspot_table,
    span_self_times,
    top_hotspots,
)
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    NullSink,
    TeeSink,
    TraceSink,
    read_jsonl,
)
from repro.obs.snapshot import (
    SNAPSHOT_SCHEMA,
    PhaseStats,
    aggregate_spans,
    build_snapshot,
    load_snapshot,
    render_phase_table,
    render_span_tree,
    snapshot_path,
    write_snapshot,
)
from repro.obs.spans import Span, Tracer
from repro.obs.trends import (
    DEFAULT_DRIFT_THRESHOLD,
    TrendError,
    TrendPoint,
    TrendReport,
    TrendSeries,
    collect_trends,
    render_trend_dashboard,
    sparkline,
)

__all__ = [
    "DEFAULT_DRIFT_THRESHOLD",
    "HEARTBEAT_SCHEMA",
    "LEDGER_FILENAME",
    "LEDGER_SCHEMA",
    "MODE_BOUNDED",
    "MODE_EXACT",
    "SNAPSHOT_SCHEMA",
    "Clock",
    "Console",
    "Counter",
    "Gauge",
    "Heartbeat",
    "HeartbeatConfig",
    "HeartbeatError",
    "Histogram",
    "HotspotStats",
    "InMemorySink",
    "JsonlSink",
    "LedgerError",
    "LedgerSession",
    "LedgerView",
    "ManualClock",
    "MetricsRegistry",
    "MonotonicClock",
    "NullSink",
    "PhaseStats",
    "RunLedger",
    "RunRecord",
    "Span",
    "TeeSink",
    "TraceSink",
    "Tracer",
    "TrendError",
    "TrendPoint",
    "TrendReport",
    "TrendSeries",
    "WallClock",
    "activate",
    "aggregate_hotspots",
    "aggregate_spans",
    "append_worker_beat",
    "build_snapshot",
    "collect_trends",
    "config_digest",
    "counter",
    "current_git_sha",
    "current_tracer",
    "gauge",
    "load_snapshot",
    "make_run_id",
    "merge_heartbeats",
    "observe",
    "perf_seconds",
    "read_heartbeats",
    "read_jsonl",
    "record_event",
    "render_hotspot_table",
    "render_phase_table",
    "render_span_tree",
    "render_trend_dashboard",
    "set_perf_clock",
    "set_wall_clock",
    "snapshot_path",
    "span",
    "span_self_times",
    "sparkline",
    "top_hotspots",
    "tracing_enabled",
    "wall_seconds",
    "write_snapshot",
]
