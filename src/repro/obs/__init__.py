"""Telemetry for the auction stack: spans, metrics, export, snapshots.

The package has two faces:

* **Instrumentation API** (what library code imports)::

      from repro import obs

      def hot_path(...):
          with obs.span("matching.solve", rows=n) as sp:
              ...
              sp.set_attribute("augmentations", count)
          obs.counter("greedy.candidate_evals", evaluated)

  With no tracer installed every helper is a near-zero-cost no-op, so
  instrumentation is always-on in the source without a perf budget
  conversation per call site.

* **Collection API** (what drivers, tests, and the CLI use)::

      tracer = Tracer(clock=ManualClock(tick=1.0), sink=JsonlSink(path))
      with obs.activate(tracer):
          run_whatever()
      print(render_phase_table(aggregate_spans(tracer.spans)))

See ``docs/ARCHITECTURE.md`` ("Observability") for the span taxonomy
and metric names.
"""

from repro.obs.clock import Clock, ManualClock, MonotonicClock
from repro.obs.console import Console
from repro.obs.context import (
    activate,
    counter,
    current_tracer,
    gauge,
    observe,
    record_event,
    span,
    tracing_enabled,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sinks import (
    InMemorySink,
    JsonlSink,
    NullSink,
    TeeSink,
    TraceSink,
    read_jsonl,
)
from repro.obs.snapshot import (
    SNAPSHOT_SCHEMA,
    PhaseStats,
    aggregate_spans,
    build_snapshot,
    load_snapshot,
    render_phase_table,
    render_span_tree,
    snapshot_path,
    write_snapshot,
)
from repro.obs.spans import Span, Tracer

__all__ = [
    "SNAPSHOT_SCHEMA",
    "Clock",
    "Console",
    "Counter",
    "Gauge",
    "Histogram",
    "InMemorySink",
    "JsonlSink",
    "ManualClock",
    "MetricsRegistry",
    "MonotonicClock",
    "NullSink",
    "PhaseStats",
    "Span",
    "TeeSink",
    "TraceSink",
    "Tracer",
    "activate",
    "aggregate_spans",
    "build_snapshot",
    "counter",
    "current_tracer",
    "gauge",
    "load_snapshot",
    "observe",
    "read_jsonl",
    "record_event",
    "render_phase_table",
    "render_span_tree",
    "snapshot_path",
    "span",
    "tracing_enabled",
    "write_snapshot",
]
