"""Perf snapshots: aggregate a trace into a machine-readable report.

A *snapshot* condenses one traced run (or bench session) into per-phase
timing statistics — one row per span name — plus the final counter and
histogram state.  Snapshots serialise to the repo's ``BENCH_*.json``
convention (:func:`write_snapshot` / :func:`snapshot_path`), which the
CI perf-smoke job uploads as an artifact, and render to the per-phase
table and span tree ``repro-crowd trace`` prints.

Snapshots deliberately contain no wall-clock timestamps or host
metadata beyond what the caller passes in ``meta`` — two runs of the
same workload on the same machine produce structurally identical
documents, which keeps them diffable.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.obs.spans import Span, Tracer
from repro.utils.tables import format_table

#: Schema tag embedded in every snapshot document.
SNAPSHOT_SCHEMA = "repro-perf-snapshot/v1"


@dataclasses.dataclass(frozen=True)
class PhaseStats:
    """Aggregated timings of every span sharing one name."""

    name: str
    count: int
    total_seconds: float
    mean_seconds: float
    min_seconds: float
    max_seconds: float

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


def aggregate_spans(spans: Iterable[Span]) -> List[PhaseStats]:
    """Per-phase stats over finished spans, sorted by total time desc."""
    durations: Dict[str, List[float]] = {}
    for span in spans:
        if span.finished:
            durations.setdefault(span.name, []).append(span.duration)
    stats = [
        PhaseStats(
            name=name,
            count=len(values),
            total_seconds=sum(values),
            mean_seconds=sum(values) / len(values),
            min_seconds=min(values),
            max_seconds=max(values),
        )
        for name, values in durations.items()
    ]
    stats.sort(key=lambda phase: (-phase.total_seconds, phase.name))
    return stats


def build_snapshot(
    tracer: Tracer,
    label: str,
    meta: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """The snapshot document for one traced run.

    ``label`` names the workload measured (it also names the
    ``BENCH_<label>.json`` file); ``meta`` is caller-provided context
    (scenario sizes, mechanism names, ...).
    """
    return {
        "schema": SNAPSHOT_SCHEMA,
        "label": label,
        "meta": dict(meta or {}),
        "phases": [phase.to_dict() for phase in aggregate_spans(tracer.spans)],
        "metrics": tracer.metrics.to_dict(),
        "span_count": len(tracer.spans),
    }


def snapshot_path(directory: "os.PathLike[str]", label: str) -> pathlib.Path:
    """The conventional ``BENCH_<label>.json`` location under ``directory``."""
    safe = "".join(
        ch if ch.isalnum() or ch in "-_" else "_" for ch in label
    )
    return pathlib.Path(directory) / f"BENCH_{safe}.json"


def write_snapshot(
    path: "os.PathLike[str]", snapshot: Mapping[str, Any]
) -> pathlib.Path:
    """Write a snapshot document as stable, indented JSON."""
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(snapshot, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


def load_snapshot(path: "os.PathLike[str]") -> Dict[str, Any]:
    """Read a snapshot document back (no validation beyond JSON)."""
    return json.loads(pathlib.Path(path).read_text(encoding="utf-8"))


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------
def render_phase_table(
    phases: Sequence[PhaseStats], title: str = "Per-phase timings"
) -> str:
    """The per-phase timing table (milliseconds, human-readable)."""
    rows = [
        [
            phase.name,
            phase.count,
            f"{phase.total_seconds * 1e3:.3f}",
            f"{phase.mean_seconds * 1e3:.3f}",
            f"{phase.max_seconds * 1e3:.3f}",
        ]
        for phase in phases
    ]
    return format_table(
        ["phase", "spans", "total ms", "mean ms", "max ms"],
        rows,
        title=title,
    )


def render_span_tree(
    spans: Sequence[Span], max_spans: Optional[int] = None
) -> str:
    """An indented tree of a trace's spans with durations and attributes.

    Children print under their parent in start order.  ``max_spans``
    truncates large traces (a trailing line reports how many were
    elided).
    """
    finished = [span for span in spans if span.finished]
    by_parent: Dict[Optional[int], List[Span]] = {}
    for span in finished:
        by_parent.setdefault(span.parent_id, []).append(span)
    for children in by_parent.values():
        children.sort(key=lambda span: (span.start, span.span_id))

    lines: List[str] = []
    elided = 0

    def walk(parent_id: Optional[int], depth: int) -> None:
        nonlocal elided
        for span in by_parent.get(parent_id, []):
            if max_spans is not None and len(lines) >= max_spans:
                elided += 1 + _count_descendants(span)
                continue
            attrs = ", ".join(
                f"{key}={value}" for key, value in span.attributes.items()
            )
            suffix = f"  [{attrs}]" if attrs else ""
            lines.append(
                f"{'  ' * depth}{span.name}  "
                f"{span.duration * 1e3:.3f} ms{suffix}"
            )
            walk(span.span_id, depth + 1)

    def _count_descendants(span: Span) -> int:
        total = 0
        for child in by_parent.get(span.span_id, []):
            total += 1 + _count_descendants(child)
        return total

    walk(None, 0)
    if elided:
        lines.append(f"... ({elided} more span(s) elided)")
    return "\n".join(lines) if lines else "(no spans recorded)"
