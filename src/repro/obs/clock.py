"""Injectable time sources for the telemetry layer.

Spans measure wall time through a :class:`Clock` rather than calling
:func:`time.perf_counter` directly, so that tests can drive a
:class:`ManualClock` and assert on *exact* span durations — traces in
the test suite are fully deterministic, the same way the simulation
layer injects seeded RNG streams instead of global randomness.
"""

from __future__ import annotations

import abc
import time


class Clock(abc.ABC):
    """A monotonic time source, in seconds."""

    @abc.abstractmethod
    def now(self) -> float:
        """The current monotonic time."""


class MonotonicClock(Clock):
    """The production clock: :func:`time.perf_counter`."""

    def now(self) -> float:
        return time.perf_counter()


class ManualClock(Clock):
    """A deterministic clock advanced explicitly (or per ``now()`` call).

    Parameters
    ----------
    start:
        Initial reading.
    tick:
        Amount the clock auto-advances *after* every ``now()`` call.
        With ``tick=1.0`` the n-th reading is ``start + (n-1)``, giving
        every span a predictable, distinct duration without the test
        having to interleave :meth:`advance` calls with the code under
        trace.
    """

    def __init__(self, start: float = 0.0, tick: float = 0.0) -> None:
        self._time = float(start)
        self._tick = float(tick)

    def now(self) -> float:
        reading = self._time
        self._time += self._tick
        return reading

    def advance(self, seconds: float) -> None:
        """Move the clock forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError(f"cannot move a monotonic clock back ({seconds})")
        self._time += float(seconds)


class WallClock(Clock):
    """The production wall clock: :func:`time.time` (epoch seconds).

    Not monotonic in the strict sense (NTP can step it), but the run
    ledger wants calendar time — *when* a run happened on this machine —
    which the perf clock deliberately cannot provide.
    """

    def now(self) -> float:
        return time.time()


# The process-wide perf clock behind :func:`perf_seconds`.  Worker and
# replay-critical code reads elapsed time through this accessor instead
# of calling ``time.perf_counter`` directly (enforced statically by
# REP015), so a replay harness can freeze the whole process onto a
# ManualClock with one call.
_PERF_CLOCK: Clock = MonotonicClock()


def perf_seconds() -> float:
    """Read the process-wide perf clock (monotonic seconds)."""
    return _PERF_CLOCK.now()


def set_perf_clock(clock: Clock) -> Clock:
    """Replace the process-wide perf clock; returns the previous one."""
    global _PERF_CLOCK
    previous = _PERF_CLOCK
    _PERF_CLOCK = clock
    return previous


# The process-wide wall clock behind :func:`wall_seconds`.  The run
# ledger stamps records through this accessor (never ``time.time``
# directly), so ledger tests can pin exact timestamps and run ids by
# installing a ManualClock.
_WALL_CLOCK: Clock = WallClock()


def wall_seconds() -> float:
    """Read the process-wide wall clock (epoch seconds)."""
    return _WALL_CLOCK.now()


def set_wall_clock(clock: Clock) -> Clock:
    """Replace the process-wide wall clock; returns the previous one."""
    global _WALL_CLOCK
    previous = _WALL_CLOCK
    _WALL_CLOCK = clock
    return previous
