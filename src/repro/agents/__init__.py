"""Bidding strategies: truthful agents and strategic misreporters.

Mechanisms see bids, not private profiles; a *strategy* is the function
that turns a private :class:`~repro.model.SmartphoneProfile` into the bid
its phone actually submits.  Truthfulness of a mechanism means no strategy
in this package (nor any other feasible one) ever beats
:class:`~repro.agents.truthful.TruthfulStrategy`; the auditors in
:mod:`repro.metrics.properties` and the best-response search in
:mod:`repro.agents.best_response` test exactly that.
"""

from repro.agents.base import BiddingStrategy
from repro.agents.best_response import (
    BestResponseResult,
    best_response_search,
    candidate_deviations,
)
from repro.agents.misreport import (
    CombinedMisreportStrategy,
    CostAdditiveStrategy,
    CostScalingStrategy,
    DelayedArrivalStrategy,
    EarlyDepartureStrategy,
    RandomMisreportStrategy,
)
from repro.agents.truthful import TruthfulStrategy

__all__ = [
    "BiddingStrategy",
    "TruthfulStrategy",
    "CostScalingStrategy",
    "CostAdditiveStrategy",
    "DelayedArrivalStrategy",
    "EarlyDepartureStrategy",
    "CombinedMisreportStrategy",
    "RandomMisreportStrategy",
    "best_response_search",
    "candidate_deviations",
    "BestResponseResult",
]
