"""The truthful strategy: report the private type verbatim."""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.base import BiddingStrategy
from repro.model.bid import Bid
from repro.model.smartphone import SmartphoneProfile


class TruthfulStrategy(BiddingStrategy):
    """Submit ``(a_i, d_i, c_i)`` exactly.

    Under a truthful mechanism this is a dominant strategy (Definition 4);
    every other strategy in :mod:`repro.agents` exists to test that claim.
    """

    name = "truthful"

    def _propose(
        self,
        profile: SmartphoneProfile,
        rng: Optional[np.random.Generator],
    ) -> Optional[Bid]:
        return profile.truthful_bid()
