"""Misreporting strategies within the feasible deviation region.

Section III-B constrains strategic behaviour to three dimensions: claim a
higher or lower cost, delay the claimed arrival, or advance the claimed
departure.  Each strategy here deviates along one (or all) of those axes;
every produced bid is validated against the profile, so a strategy can
never accidentally claim infeasible availability.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.agents.base import BiddingStrategy
from repro.errors import ValidationError
from repro.model.bid import Bid
from repro.model.smartphone import SmartphoneProfile
from repro.utils.validation import check_non_negative, check_positive


class CostScalingStrategy(BiddingStrategy):
    """Claim ``factor * c_i`` instead of the real cost.

    ``factor > 1`` models cost inflation (the classic overcharging
    deviation); ``factor < 1`` models undercutting.
    """

    name = "cost-scaling"

    def __init__(self, factor: float) -> None:
        check_positive("factor", factor)
        self._factor = float(factor)

    @property
    def factor(self) -> float:
        """The multiplicative deviation applied to the real cost."""
        return self._factor

    def _propose(
        self,
        profile: SmartphoneProfile,
        rng: Optional[np.random.Generator],
    ) -> Optional[Bid]:
        truthful = profile.truthful_bid()
        return truthful.with_cost(profile.cost * self._factor)


class CostAdditiveStrategy(BiddingStrategy):
    """Claim ``c_i + delta`` (clamped at zero) instead of the real cost."""

    name = "cost-additive"

    def __init__(self, delta: float) -> None:
        if not isinstance(delta, (int, float)) or isinstance(delta, bool):
            raise ValidationError(
                f"delta must be a number, got {type(delta).__name__}"
            )
        self._delta = float(delta)

    @property
    def delta(self) -> float:
        """The additive deviation applied to the real cost."""
        return self._delta

    def _propose(
        self,
        profile: SmartphoneProfile,
        rng: Optional[np.random.Generator],
    ) -> Optional[Bid]:
        truthful = profile.truthful_bid()
        return truthful.with_cost(max(0.0, profile.cost + self._delta))


class DelayedArrivalStrategy(BiddingStrategy):
    """Report the arrival ``delay`` slots late (Fig. 5's deviation).

    If the delay would push the claimed arrival past the real departure,
    the phone abstains (there is no feasible window left to claim).
    """

    name = "delayed-arrival"

    def __init__(self, delay: int) -> None:
        if not isinstance(delay, int) or isinstance(delay, bool):
            raise ValidationError(
                f"delay must be an int, got {type(delay).__name__}"
            )
        check_non_negative("delay", delay)
        self._delay = delay

    @property
    def delay(self) -> int:
        """Slots by which the claimed arrival is postponed."""
        return self._delay

    def _propose(
        self,
        profile: SmartphoneProfile,
        rng: Optional[np.random.Generator],
    ) -> Optional[Bid]:
        claimed_arrival = profile.arrival + self._delay
        if claimed_arrival > profile.departure:
            return None
        truthful = profile.truthful_bid()
        return truthful.with_window(claimed_arrival, profile.departure)


class EarlyDepartureStrategy(BiddingStrategy):
    """Report the departure ``advance`` slots early.

    Abstains when the advance would empty the claimed window.
    """

    name = "early-departure"

    def __init__(self, advance: int) -> None:
        if not isinstance(advance, int) or isinstance(advance, bool):
            raise ValidationError(
                f"advance must be an int, got {type(advance).__name__}"
            )
        check_non_negative("advance", advance)
        self._advance = advance

    @property
    def advance(self) -> int:
        """Slots by which the claimed departure is advanced."""
        return self._advance

    def _propose(
        self,
        profile: SmartphoneProfile,
        rng: Optional[np.random.Generator],
    ) -> Optional[Bid]:
        claimed_departure = profile.departure - self._advance
        if claimed_departure < profile.arrival:
            return None
        truthful = profile.truthful_bid()
        return truthful.with_window(profile.arrival, claimed_departure)


class CombinedMisreportStrategy(BiddingStrategy):
    """Deviate on all three dimensions at once."""

    name = "combined-misreport"

    def __init__(
        self,
        cost_factor: float = 1.0,
        arrival_delay: int = 0,
        departure_advance: int = 0,
    ) -> None:
        check_positive("cost_factor", cost_factor)
        check_non_negative("arrival_delay", arrival_delay)
        check_non_negative("departure_advance", departure_advance)
        self._cost_factor = float(cost_factor)
        self._arrival_delay = int(arrival_delay)
        self._departure_advance = int(departure_advance)

    def _propose(
        self,
        profile: SmartphoneProfile,
        rng: Optional[np.random.Generator],
    ) -> Optional[Bid]:
        arrival = profile.arrival + self._arrival_delay
        departure = profile.departure - self._departure_advance
        if arrival > departure:
            return None
        return Bid(
            phone_id=profile.phone_id,
            arrival=arrival,
            departure=departure,
            cost=profile.cost * self._cost_factor,
        )


class RandomMisreportStrategy(BiddingStrategy):
    """A uniformly random feasible deviation, for fuzz-style audits.

    Draws a cost factor in ``[0.5, 2.0]``, a random feasible arrival delay
    and departure advance.  Requires an RNG; the auditors pass one derived
    from the experiment's master seed.
    """

    name = "random-misreport"

    def _propose(
        self,
        profile: SmartphoneProfile,
        rng: Optional[np.random.Generator],
    ) -> Optional[Bid]:
        if rng is None:
            raise ValidationError(
                "RandomMisreportStrategy requires an rng; pass one to "
                "make_bid"
            )
        window = profile.departure - profile.arrival
        delay = int(rng.integers(0, window + 1))
        advance = int(rng.integers(0, window - delay + 1))
        factor = float(rng.uniform(0.5, 2.0))
        return Bid(
            phone_id=profile.phone_id,
            arrival=profile.arrival + delay,
            departure=profile.departure - advance,
            cost=profile.cost * factor,
        )
