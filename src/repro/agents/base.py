"""The bidding-strategy interface."""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.model.bid import Bid
from repro.model.smartphone import SmartphoneProfile


class BiddingStrategy(abc.ABC):
    """Maps a private profile to the bid the phone submits.

    Strategies must produce *feasible* claims — bids inside the profile's
    misreport region (``ã_i >= a_i``, ``d̃_i <= d_i``; Section III-B of
    the paper).  :meth:`make_bid` enforces this by validating through
    :meth:`~repro.model.SmartphoneProfile.check_claim`; subclasses
    implement :meth:`_propose` and get the validation for free.

    A strategy may also return ``None`` to abstain from the round
    entirely (the paper's model lets a phone simply not bid).
    """

    #: Registry-style name for reports.
    name: str = "abstract"

    def make_bid(
        self,
        profile: SmartphoneProfile,
        rng: Optional[np.random.Generator] = None,
    ) -> Optional[Bid]:
        """The validated bid for ``profile`` (or ``None`` to abstain)."""
        proposed = self._propose(profile, rng)
        if proposed is None:
            return None
        return profile.check_claim(proposed)

    @abc.abstractmethod
    def _propose(
        self,
        profile: SmartphoneProfile,
        rng: Optional[np.random.Generator],
    ) -> Optional[Bid]:
        """Subclass hook: build the (unvalidated) bid."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
