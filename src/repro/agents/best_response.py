"""Best-response search: the strongest practical test of truthfulness.

For one phone, enumerate a dense grid of feasible deviations (cost
thresholds taken from the other bids, every feasible claimed window),
re-run the mechanism against each, and return the deviation with the
highest *true* utility.  A mechanism is truthful exactly when this search
never finds a deviation strictly better than the truthful bid; against
the untruthful baselines the search routinely does (e.g. it rediscovers
the paper's Fig. 5 arrival-delay deviation against per-slot second-price).
"""

from __future__ import annotations

import dataclasses
import itertools
from typing import List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.mechanisms.base import Mechanism
from repro.model.bid import Bid
from repro.model.smartphone import SmartphoneProfile
from repro.model.task import TaskSchedule

#: Small cost perturbation used to probe just-below/just-above thresholds.
_EPSILON = 1e-6


@dataclasses.dataclass(frozen=True)
class BestResponseResult:
    """Outcome of a best-response search for one phone.

    Attributes
    ----------
    truthful_utility:
        True utility when bidding truthfully.
    best_utility:
        Highest true utility over all searched deviations (including the
        truthful bid itself).
    best_bid:
        A bid achieving ``best_utility``.
    profitable:
        Whether a deviation strictly beats truth-telling (beyond a 1e-9
        numerical tolerance).
    num_candidates:
        How many deviations were evaluated.
    """

    truthful_utility: float
    best_utility: float
    best_bid: Bid
    profitable: bool
    num_candidates: int

    @property
    def gain(self) -> float:
        """How much the best deviation improves on truth-telling."""
        return self.best_utility - self.truthful_utility


def candidate_deviations(
    profile: SmartphoneProfile,
    other_bids: Sequence[Bid],
    max_windows: Optional[int] = None,
) -> List[Bid]:
    """Feasible deviations worth probing for ``profile``.

    Candidate costs: the truthful cost, zero, every other bid's cost and
    small perturbations around it (allocation outcomes only change at
    those thresholds), and a few multiplicative factors.  Candidate
    windows: every feasible ``(arrival, departure)`` inside the real
    window, optionally capped at ``max_windows`` (widest windows first,
    since narrowing further only removes opportunities).
    """
    costs = {profile.cost, 0.0}
    for bid in other_bids:
        if bid.phone_id == profile.phone_id:
            continue
        costs.add(bid.cost)
        costs.add(max(0.0, bid.cost - _EPSILON))
        costs.add(bid.cost + _EPSILON)
    for factor in (0.5, 0.9, 1.1, 1.5, 2.0, 4.0):
        costs.add(profile.cost * factor)

    windows: List[Tuple[int, int]] = [
        (arrival, departure)
        for arrival, departure in itertools.product(
            range(profile.arrival, profile.departure + 1),
            range(profile.arrival, profile.departure + 1),
        )
        if arrival <= departure
    ]
    # Widest windows first; they dominate narrower ones under monotone
    # mechanisms, so capping keeps the most informative candidates.
    windows.sort(key=lambda w: (-(w[1] - w[0]), w[0]))
    if max_windows is not None:
        if max_windows < 1:
            raise ValidationError(
                f"max_windows must be >= 1, got {max_windows}"
            )
        windows = windows[:max_windows]

    return [
        Bid(
            phone_id=profile.phone_id,
            arrival=arrival,
            departure=departure,
            cost=cost,
        )
        for (arrival, departure), cost in itertools.product(
            windows, sorted(costs)
        )
    ]


def _true_utility(
    mechanism: Mechanism,
    profile: SmartphoneProfile,
    bid: Bid,
    other_bids: Sequence[Bid],
    schedule: TaskSchedule,
) -> float:
    outcome = mechanism.run(list(other_bids) + [bid], schedule)
    return profile.utility(
        payment=outcome.payment(profile.phone_id),
        allocated=outcome.is_winner(profile.phone_id),
    )


def best_response_search(
    mechanism: Mechanism,
    profile: SmartphoneProfile,
    other_bids: Sequence[Bid],
    schedule: TaskSchedule,
    max_windows: Optional[int] = None,
) -> BestResponseResult:
    """Search the deviation grid; return the best response found.

    ``other_bids`` are held fixed (the dominant-strategy notion quantifies
    over arbitrary opponent bids, so auditors call this under many
    opponent draws).
    """
    others = [b for b in other_bids if b.phone_id != profile.phone_id]
    truthful_bid = profile.truthful_bid()
    truthful_utility = _true_utility(
        mechanism, profile, truthful_bid, others, schedule
    )

    best_utility = truthful_utility
    best_bid = truthful_bid
    candidates = candidate_deviations(profile, others, max_windows)
    for candidate in candidates:
        utility = _true_utility(mechanism, profile, candidate, others, schedule)
        if utility > best_utility:
            best_utility = utility
            best_bid = candidate

    return BestResponseResult(
        truthful_utility=truthful_utility,
        best_utility=best_utility,
        best_bid=best_bid,
        profitable=best_utility > truthful_utility + 1e-9,
        num_candidates=len(candidates) + 1,
    )
