"""Utility landscapes: what a phone would earn under every lie.

For a fixed opponent profile, sweep one phone's claimed cost (or claimed
window) and record its *true* utility at each claim.  Under a truthful
mechanism the curve is flat at its maximum over the winning region and
(weakly) lower everywhere else — the visual signature of a dominant
strategy.  Under pay-as-bid or second-price-per-slot rules the curve
has a profitable bump away from the truthful claim.

Used by ``examples/strategic_agents.py`` and the test suite; handy for
debugging any new mechanism's incentives.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

from repro.errors import ValidationError
from repro.mechanisms.base import Mechanism
from repro.model.bid import Bid
from repro.model.smartphone import SmartphoneProfile
from repro.model.task import TaskSchedule


@dataclasses.dataclass(frozen=True)
class LandscapePoint:
    """One probed claim and the resulting true utility."""

    bid: Bid
    utility: float
    won: bool


@dataclasses.dataclass(frozen=True)
class UtilityLandscape:
    """A swept utility curve for one phone.

    Attributes
    ----------
    phone_id:
        The probed phone.
    truthful_utility:
        True utility at the truthful claim.
    points:
        The probed claims in sweep order.
    """

    phone_id: int
    truthful_utility: float
    points: Tuple[LandscapePoint, ...]

    @property
    def max_utility(self) -> float:
        """Best utility over all probed claims (and the truthful one)."""
        best = self.truthful_utility
        for point in self.points:
            if point.utility > best:
                best = point.utility
        return best

    @property
    def max_gain(self) -> float:
        """How much the best probed lie beats truth-telling (>= 0)."""
        return self.max_utility - self.truthful_utility

    @property
    def is_flat_at_truth(self) -> bool:
        """Whether no probed claim beats truth (1e-9 tolerance)."""
        return self.max_gain <= 1e-9


def _true_utility(
    mechanism: Mechanism,
    profile: SmartphoneProfile,
    claim: Bid,
    others: Sequence[Bid],
    schedule: TaskSchedule,
) -> Tuple[float, bool]:
    outcome = mechanism.run(list(others) + [claim], schedule)
    won = outcome.is_winner(profile.phone_id)
    utility = profile.utility(
        payment=outcome.payment(profile.phone_id), allocated=won
    )
    return utility, won


def cost_landscape(
    mechanism: Mechanism,
    profile: SmartphoneProfile,
    all_bids: Sequence[Bid],
    schedule: TaskSchedule,
    claimed_costs: Sequence[float],
) -> UtilityLandscape:
    """Sweep the claimed cost, window held truthful."""
    if not claimed_costs:
        raise ValidationError("claimed_costs must not be empty")
    others = [b for b in all_bids if b.phone_id != profile.phone_id]
    truthful_utility, _ = _true_utility(
        mechanism, profile, profile.truthful_bid(), others, schedule
    )
    points: List[LandscapePoint] = []
    for cost in claimed_costs:
        claim = profile.truthful_bid().with_cost(float(cost))
        utility, won = _true_utility(
            mechanism, profile, claim, others, schedule
        )
        points.append(LandscapePoint(bid=claim, utility=utility, won=won))
    return UtilityLandscape(
        phone_id=profile.phone_id,
        truthful_utility=truthful_utility,
        points=tuple(points),
    )


def arrival_landscape(
    mechanism: Mechanism,
    profile: SmartphoneProfile,
    all_bids: Sequence[Bid],
    schedule: TaskSchedule,
) -> UtilityLandscape:
    """Sweep the claimed arrival over every feasible delay (Fig. 5's
    deviation axis), cost and departure held truthful."""
    others = [b for b in all_bids if b.phone_id != profile.phone_id]
    truthful_utility, _ = _true_utility(
        mechanism, profile, profile.truthful_bid(), others, schedule
    )
    points: List[LandscapePoint] = []
    for arrival in range(profile.arrival, profile.departure + 1):
        claim = profile.truthful_bid().with_window(
            arrival, profile.departure
        )
        utility, won = _true_utility(
            mechanism, profile, claim, others, schedule
        )
        points.append(LandscapePoint(bid=claim, utility=utility, won=won))
    return UtilityLandscape(
        phone_id=profile.phone_id,
        truthful_utility=truthful_utility,
        points=tuple(points),
    )
