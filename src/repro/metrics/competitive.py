"""Empirical competitive ratio of the online mechanism (Theorem 6).

Theorem 6 claims the online greedy allocation is 1/2-competitive:
``ω_apx / ω_opt >= 1/2`` for every input, where ``ω_opt`` is the offline
optimum on the same bids.  The paper omits the proof; the ablation bench
validates the claim empirically with this function over thousands of
random instances.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.mechanisms.offline_vcg import OfflineVCGMechanism
from repro.mechanisms.online_greedy import OnlineGreedyMechanism
from repro.model.bid import Bid
from repro.model.task import TaskSchedule

_OFFLINE = OfflineVCGMechanism()


def empirical_competitive_ratio(
    bids: Sequence[Bid],
    schedule: TaskSchedule,
    online: Optional[OnlineGreedyMechanism] = None,
) -> Optional[float]:
    """``ω_online / ω_offline-optimal`` on claimed costs, or ``None``.

    ``None`` is returned when the offline optimum is zero (no profitable
    assignment exists at all), where the ratio is undefined.

    Both welfares are evaluated on claimed costs, exactly as the
    allocation algorithms see them; under truthful bids this equals the
    true-welfare ratio.  The default online mechanism enables the
    reserve price so that it never takes negative-welfare assignments the
    optimum refuses — the comparison the 1/2 bound is about (see
    DESIGN.md §7).
    """
    mechanism = online or OnlineGreedyMechanism(reserve_price=True)
    optimal = _OFFLINE.optimal_welfare(bids, schedule)
    if optimal <= 0.0:
        return None
    online_outcome = mechanism.run(bids, schedule)
    return online_outcome.claimed_welfare / optimal
