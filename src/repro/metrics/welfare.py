"""Social welfare (Definitions 2 and 3) evaluated on *real* costs.

An outcome knows the claimed costs it allocated against
(:attr:`~repro.model.AuctionOutcome.claimed_welfare`); the true welfare
needs the private profiles, which live in the scenario.  Under a truthful
mechanism with truthful agents the two coincide — a fact the integration
tests assert.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import SimulationError
from repro.model.outcome import AuctionOutcome
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type hints only; avoids a
    # metrics <-> simulation import cycle at runtime
    from repro.simulation.scenario import Scenario


def true_social_welfare(
    outcome: AuctionOutcome, scenario: "Scenario"
) -> float:
    """Definition 3: ``ω = Σ_{allocated τ} (ν − c_i)`` with real costs."""
    total = 0.0
    for task_id, phone_id in outcome.allocation.items():
        task = scenario.schedule.task(task_id)
        total += task.value - scenario.profile(phone_id).cost
    return total


def welfare_per_task(
    outcome: AuctionOutcome, scenario: "Scenario"
) -> Dict[int, float]:
    """Definition 2 per task: ``u(τ) = ν − c_i`` for each allocated task."""
    utilities: Dict[int, float] = {}
    for task_id, phone_id in outcome.allocation.items():
        task = scenario.schedule.task(task_id)
        utilities[task_id] = task.value - scenario.profile(phone_id).cost
    return utilities


def phone_utilities(
    outcome: AuctionOutcome, scenario: "Scenario"
) -> Dict[int, float]:
    """Definition 1 per phone: ``u_i = p_i − c_i·I(allocated)``.

    Covers every phone in the scenario; phones that submitted no bid (or
    lost) have utility equal to their payment, which is zero under all
    sane mechanisms.
    """
    utilities: Dict[int, float] = {}
    bid_phone_ids = outcome.bid_phone_ids
    # Hoisted lookups: per-phone outcome.payment()/is_winner() calls
    # re-validate the phone id each time, which dominates at 2·10⁴
    # phones per round.  payments omits losers, so .get matches
    # outcome.payment exactly for every phone that bid.
    payment_of = outcome.payments.get
    winner_set = set(outcome.winners)
    for profile in scenario.profiles:
        phone_id = profile.phone_id
        if phone_id in bid_phone_ids:
            payment = payment_of(phone_id, 0.0)
            allocated = phone_id in winner_set
        else:
            payment, allocated = 0.0, False
        utilities[phone_id] = profile.utility(payment, allocated)
    for phone_id in bid_phone_ids:
        if phone_id not in utilities:
            raise SimulationError(
                f"outcome contains a bid from phone {phone_id} that is "
                f"not in the scenario"
            )
    return utilities
