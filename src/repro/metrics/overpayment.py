"""Overpayment ratio (Definition 11).

The overpayment is the excess of total payments over the total *real*
costs of contributing (allocated) smartphones; the ratio normalises by
those real costs:

.. math::

    σ = \\frac{Σ_{i \\in winners} (p_i − c_i)}{Σ_{i \\in winners} c_i}

A ratio of zero means the platform pays exactly cost (no incentive
margin); the paper reports values around 0.7–1.0 for its workloads.
"""

from __future__ import annotations

from typing import Optional

from repro.model.outcome import AuctionOutcome
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type hints only; avoids a
    # metrics <-> simulation import cycle at runtime
    from repro.simulation.scenario import Scenario


def total_real_cost(outcome: AuctionOutcome, scenario: "Scenario") -> float:
    """Sum of real costs over allocated smartphones."""
    return sum(
        scenario.profile(phone_id).cost for phone_id in outcome.winners
    )


def total_overpayment(
    outcome: AuctionOutcome, scenario: "Scenario"
) -> float:
    """Total payments minus total real costs, over allocated phones.

    Payments to non-winners (possible only under pathological payment
    rules) are counted in full — they are pure overpayment.
    """
    winner_ids = set(outcome.winners)
    overpayment = 0.0
    for phone_id, payment in outcome.payments.items():
        real_cost = (
            scenario.profile(phone_id).cost if phone_id in winner_ids else 0.0
        )
        overpayment += payment - real_cost
    # Winners that somehow received no payment entry still incur cost.
    # Sorted: float addition is order-sensitive, and set hash order
    # would make the total differ in the last bit across processes.
    for phone_id in sorted(winner_ids):
        if phone_id not in outcome.payments:
            overpayment -= scenario.profile(phone_id).cost
    return overpayment


def overpayment_ratio(
    outcome: AuctionOutcome, scenario: "Scenario"
) -> Optional[float]:
    """Definition 11's ratio ``σ``; ``None`` when nothing was allocated.

    Returning ``None`` (rather than 0 or NaN) for an empty allocation
    forces callers to handle the degenerate case explicitly; the sweep
    aggregator skips such rounds.
    """
    denominator = total_real_cost(outcome, scenario)
    if denominator <= 0.0:
        return None
    return total_overpayment(outcome, scenario) / denominator
