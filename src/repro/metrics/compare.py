"""Paired statistical comparison of two mechanisms.

"Offline offers a larger social welfare than online" is a *paired*
claim: both mechanisms run on the same scenarios (same seeds), so the
right statistic is the per-scenario difference, not two independent
means.  :func:`paired_comparison` computes the difference series, its
mean and confidence interval, a paired t statistic, and the win/tie/loss
record — the standard evidence for mechanism-vs-mechanism claims.
"""

from __future__ import annotations

import dataclasses
import math
from typing import List, Optional, Sequence

from repro.errors import ValidationError
from repro.mechanisms.base import Mechanism
from repro.metrics.summary import Summary, summarize
from repro.simulation.engine import SimulationEngine
from repro.simulation.workload import WorkloadConfig

#: Two-sided 97.5% normal quantile (large-sample t approximation).
_Z_95 = 1.959963984540054


@dataclasses.dataclass(frozen=True)
class PairedComparison:
    """Result of comparing mechanism A against mechanism B, paired.

    Attributes
    ----------
    metric:
        Which metric was compared (``"welfare"`` or ``"total_payment"``).
    differences:
        Per-scenario ``A − B`` values, in seed order.
    diff:
        Summary of the differences (mean > 0 ⇒ A ahead on average).
    t_statistic:
        Paired t statistic of the mean difference (``None`` when the
        differences are constant or there is a single pair).
    wins, ties, losses:
        Scenario counts where A beat / tied / trailed B (1e-9 tolerance).
    """

    metric: str
    differences: Sequence[float]
    diff: Summary
    t_statistic: Optional[float]
    wins: int
    ties: int
    losses: int

    @property
    def significant_at_95(self) -> bool:
        """Whether the mean difference is nonzero at ~95% confidence."""
        if self.t_statistic is None:
            return False
        return abs(self.t_statistic) > _Z_95

    def describe(self, label_a: str = "A", label_b: str = "B") -> str:
        """One-line human-readable summary."""
        verdict = (
            "significant" if self.significant_at_95 else "not significant"
        )
        return (
            f"{label_a} − {label_b} ({self.metric}): "
            f"{self.diff.mean:+.3f} ± {self.diff.ci95:.3f} "
            f"(w/t/l {self.wins}/{self.ties}/{self.losses}, {verdict})"
        )


_METRICS = ("welfare", "total_payment", "tasks_served")


def paired_comparison(
    mechanism_a: Mechanism,
    mechanism_b: Mechanism,
    workload: WorkloadConfig,
    seeds: Sequence[int],
    metric: str = "welfare",
) -> PairedComparison:
    """Run both mechanisms on the same seeded scenarios and compare.

    ``metric`` is ``"welfare"`` (true social welfare),
    ``"total_payment"``, or ``"tasks_served"``.
    """
    if metric not in _METRICS:
        raise ValidationError(
            f"unknown metric {metric!r}; expected one of {_METRICS}"
        )
    if not seeds:
        raise ValidationError("seeds must not be empty")

    engine = SimulationEngine()
    differences: List[float] = []
    wins = ties = losses = 0
    for seed in seeds:
        scenario = workload.generate(seed=seed)
        result_a = engine.run(mechanism_a, scenario)
        result_b = engine.run(mechanism_b, scenario)
        if metric == "welfare":
            value_a, value_b = result_a.true_welfare, result_b.true_welfare
        elif metric == "total_payment":
            value_a, value_b = (
                result_a.total_payment,
                result_b.total_payment,
            )
        else:
            value_a, value_b = (
                float(result_a.tasks_served),
                float(result_b.tasks_served),
            )
        delta = value_a - value_b
        differences.append(delta)
        if delta > 1e-9:
            wins += 1
        elif delta < -1e-9:
            losses += 1
        else:
            ties += 1

    diff = summarize(differences)
    if diff.count > 1 and diff.std > 0.0:
        t_statistic = diff.mean / (diff.std / math.sqrt(diff.count))
    else:
        t_statistic = None
    return PairedComparison(
        metric=metric,
        differences=tuple(differences),
        diff=diff,
        t_statistic=t_statistic,
        wins=wins,
        ties=ties,
        losses=losses,
    )
