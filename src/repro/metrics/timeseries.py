"""Per-slot time series derived from an auction outcome.

The paper's evaluation reports round-level aggregates; operators of a
real platform also need the within-round picture: how welfare accrues
slot by slot, when cash actually leaves the platform (payments settle at
reported departures, not at allocation time), how deep the pool of
waiting phones is, and how long winners waited.  These functions compute
those series from an outcome + scenario pair.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List

from repro.model.outcome import AuctionOutcome
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type hints only; avoids a
    # metrics <-> simulation import cycle at runtime
    from repro.simulation.scenario import Scenario


def welfare_by_slot(
    outcome: AuctionOutcome, scenario: "Scenario"
) -> List[float]:
    """True welfare accrued in each slot (index 0 = slot 1).

    A task's welfare ``ν − c_i`` is booked in the slot the task was
    served (its arrival slot, since tasks complete within their slot).
    """
    series = [0.0] * scenario.num_slots
    for task_id, phone_id in outcome.allocation.items():
        task = scenario.schedule.task(task_id)
        series[task.slot - 1] += task.value - scenario.profile(phone_id).cost
    return series


def payments_by_slot(outcome: AuctionOutcome) -> List[float]:
    """Cash paid out by the platform in each slot.

    Under the online mechanism payments settle at reported departures,
    so this series lags :func:`welfare_by_slot` — the platform's
    float.
    """
    series = [0.0] * outcome.schedule.num_slots
    for phone_id, amount in outcome.payments.items():
        series[outcome.payment_slot(phone_id) - 1] += amount
    return series


def tasks_served_by_slot(outcome: AuctionOutcome) -> List[int]:
    """Number of tasks served in each slot."""
    series = [0] * outcome.schedule.num_slots
    for task_id in outcome.allocation:
        series[outcome.schedule.task(task_id).slot - 1] += 1
    return series


def tasks_unserved_by_slot(outcome: AuctionOutcome) -> List[int]:
    """Number of tasks that went unserved in each slot."""
    series = [0] * outcome.schedule.num_slots
    for task in outcome.unserved_tasks:
        series[task.slot - 1] += 1
    return series


def pool_occupancy(scenario: "Scenario") -> List[int]:
    """How many phones are (really) active in each slot.

    This is a property of the scenario, independent of any mechanism —
    the supply side of the per-slot market.
    """
    return [
        len(scenario.active_profiles(slot))
        for slot in range(1, scenario.num_slots + 1)
    ]


@dataclasses.dataclass(frozen=True)
class WaitingStats:
    """How long winners waited between arrival and allocation.

    Attributes
    ----------
    waits:
        ``phone_id -> slots waited`` (0 = allocated on arrival) for each
        winner.
    mean_wait:
        Average over winners; 0.0 when there are none.
    max_wait:
        Worst case; 0 when there are no winners.
    """

    waits: Dict[int, int]
    mean_wait: float
    max_wait: int


def winner_waiting_stats(
    outcome: AuctionOutcome, scenario: "Scenario"
) -> WaitingStats:
    """Waiting time of each winner: win slot minus real arrival slot."""
    waits: Dict[int, int] = {}
    for phone_id in outcome.winners:
        task = outcome.task_of(phone_id)
        profile = scenario.profile(phone_id)
        waits[phone_id] = task.slot - profile.arrival
    if waits:
        mean_wait = sum(waits.values()) / len(waits)
        max_wait = max(waits.values())
    else:
        mean_wait, max_wait = 0.0, 0
    return WaitingStats(waits=waits, mean_wait=mean_wait, max_wait=max_wait)


def cumulative(series: List[float]) -> List[float]:
    """Running total of a per-slot series (same length)."""
    total = 0.0
    out = []
    for value in series:
        total += value
        out.append(total)
    return out


def platform_float_by_slot(
    outcome: AuctionOutcome, scenario: "Scenario"
) -> List[float]:
    """Welfare booked minus cash settled, cumulatively per slot.

    Positive values mean the platform has received service it has not
    yet paid for (payments settle at departures).  Ends at the round's
    total overclaim of welfare over payments.
    """
    earned = cumulative(welfare_by_slot(outcome, scenario))
    paid = cumulative(payments_by_slot(outcome))
    return [e - p for e, p in zip(earned, paid)]
