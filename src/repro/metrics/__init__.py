"""Evaluation metrics and mechanism-property auditors.

Implements the paper's two reported metrics — social welfare
(Definition 3) and overpayment ratio (Definition 11) — plus the empirical
competitive ratio (Theorem 6) and randomized auditors for truthfulness
(Definition 4), individual rationality (Definition 5), and allocation
monotonicity (Definition 10).
"""

from repro.metrics.competitive import empirical_competitive_ratio
from repro.metrics.overpayment import (
    overpayment_ratio,
    total_overpayment,
    total_real_cost,
)
from repro.metrics.properties import (
    IRViolation,
    MonotonicityReport,
    TruthfulnessReport,
    TruthfulnessViolation,
    audit_individual_rationality,
    audit_monotonicity,
    audit_truthfulness,
)
from repro.metrics.compare import PairedComparison, paired_comparison
from repro.metrics.landscape import (
    LandscapePoint,
    UtilityLandscape,
    arrival_landscape,
    cost_landscape,
)
from repro.metrics.reliability import ReliabilityReport, reliability_report
from repro.metrics.summary import Summary, summarize
from repro.metrics.timeseries import (
    WaitingStats,
    cumulative,
    payments_by_slot,
    platform_float_by_slot,
    pool_occupancy,
    tasks_served_by_slot,
    tasks_unserved_by_slot,
    welfare_by_slot,
    winner_waiting_stats,
)
from repro.metrics.welfare import (
    phone_utilities,
    true_social_welfare,
    welfare_per_task,
)

__all__ = [
    "true_social_welfare",
    "welfare_per_task",
    "phone_utilities",
    "overpayment_ratio",
    "total_overpayment",
    "total_real_cost",
    "empirical_competitive_ratio",
    "audit_individual_rationality",
    "audit_truthfulness",
    "audit_monotonicity",
    "IRViolation",
    "TruthfulnessViolation",
    "TruthfulnessReport",
    "MonotonicityReport",
    "Summary",
    "summarize",
    "welfare_by_slot",
    "payments_by_slot",
    "tasks_served_by_slot",
    "tasks_unserved_by_slot",
    "pool_occupancy",
    "winner_waiting_stats",
    "WaitingStats",
    "cumulative",
    "platform_float_by_slot",
    "cost_landscape",
    "arrival_landscape",
    "UtilityLandscape",
    "LandscapePoint",
    "paired_comparison",
    "PairedComparison",
    "ReliabilityReport",
    "reliability_report",
]
