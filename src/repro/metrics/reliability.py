"""Reliability metrics for fault-injected runs.

The paper's metrics (welfare, overpayment) assume every winner delivers.
Under injected faults three more questions matter: how much of the
workload still completed, how much of the damage the recovery layer
repaired, and what the faults cost in welfare against the fault-free
paired run of the *same* scenario.  :func:`reliability_report` answers
all three from a faulty run, its fault bookkeeping, and (optionally) the
paired fault-free run.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from repro.simulation.engine import SimulationResult

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.faults.recovery import FaultReport


@dataclasses.dataclass(frozen=True)
class ReliabilityReport:
    """How a faulty run degraded, and how much recovery repaired.

    Attributes
    ----------
    tasks_total / tasks_delivered:
        Scheduled tasks and tasks whose final winner delivered.
    completion_rate:
        ``tasks_delivered / tasks_total`` (1.0 for an empty schedule).
    delivery_failures:
        Number of task-failure incidents (one task can fail repeatedly
        along a reassignment chain).
    tasks_recovered / tasks_abandoned:
        Failed tasks that were ultimately delivered by a replacement
        winner, and failed tasks that ended unserved.
    recovered_fraction:
        ``tasks_recovered / (tasks_recovered + tasks_abandoned)``;
        ``None`` when no task ever failed.
    phones_dropped / payments_withheld:
        Early departures, and winners whose payment was withheld.
    welfare_faulty / welfare_fault_free:
        True social welfare of the faulty run and of the paired
        fault-free run (``None`` when no paired run was supplied).
    welfare_degradation:
        ``(fault_free − faulty) / fault_free``; ``None`` without a
        paired run or when the fault-free welfare is not positive.
    """

    tasks_total: int
    tasks_delivered: int
    completion_rate: float
    delivery_failures: int
    tasks_recovered: int
    tasks_abandoned: int
    recovered_fraction: Optional[float]
    phones_dropped: int
    payments_withheld: int
    welfare_faulty: float
    welfare_fault_free: Optional[float]
    welfare_degradation: Optional[float]


def reliability_report(
    faulty: SimulationResult,
    report: "FaultReport",
    fault_free: Optional[SimulationResult] = None,
) -> ReliabilityReport:
    """Compute the reliability metrics of one fault-injected run.

    Parameters
    ----------
    faulty:
        The packaged result of the run with faults injected.
    report:
        The :class:`~repro.faults.recovery.FaultReport` of that run.
    fault_free:
        The paired fault-free run of the same scenario (same seeds, same
        bids); enables the welfare-degradation metric.
    """
    total = len(faulty.outcome.schedule)
    delivered = len(faulty.outcome.allocation)
    recovered = len(report.recovered_tasks)
    abandoned = len(report.abandoned_tasks)
    ever_failed = recovered + abandoned

    welfare_ff: Optional[float] = None
    degradation: Optional[float] = None
    if fault_free is not None:
        welfare_ff = fault_free.true_welfare
        if welfare_ff > 0:
            degradation = (welfare_ff - faulty.true_welfare) / welfare_ff

    return ReliabilityReport(
        tasks_total=total,
        tasks_delivered=delivered,
        completion_rate=1.0 if total == 0 else delivered / total,
        delivery_failures=len(report.failure_events),
        tasks_recovered=recovered,
        tasks_abandoned=abandoned,
        recovered_fraction=(
            recovered / ever_failed if ever_failed else None
        ),
        phones_dropped=len(report.dropped),
        payments_withheld=len(report.withheld),
        welfare_faulty=faulty.true_welfare,
        welfare_fault_free=welfare_ff,
        welfare_degradation=degradation,
    )
