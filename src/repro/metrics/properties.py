"""Randomized auditors for the mechanism-design properties.

The paper proves truthfulness (Theorems 1, 4), individual rationality
(Theorems 2, 5) and monotonicity (inside Theorem 4's proof).  These
auditors verify the same properties *empirically* on concrete instances:

* :func:`audit_individual_rationality` — every phone's true utility is
  non-negative under truthful bidding (Definition 5).
* :func:`audit_truthfulness` — sampled unilateral deviations never give a
  phone more true utility than truth-telling (Definition 4).
* :func:`audit_monotonicity` — if a claim wins, every stronger claim
  (lower cost, weaker-or-equal window requirement) also wins
  (Definition 10).

Audits return structured reports instead of raising, so tests can assert
emptiness against the paper's mechanisms and *non*-emptiness against the
untruthful baselines.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.agents.base import BiddingStrategy
from repro.agents.misreport import (
    CombinedMisreportStrategy,
    CostAdditiveStrategy,
    CostScalingStrategy,
    DelayedArrivalStrategy,
    EarlyDepartureStrategy,
    RandomMisreportStrategy,
)
from repro.mechanisms.base import Mechanism
from repro.metrics.welfare import phone_utilities
from repro.model.bid import Bid
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # imported for type hints only; avoids a
    # metrics <-> simulation import cycle at runtime
    from repro.simulation.scenario import Scenario

#: Numerical tolerance: a "profitable" deviation must beat truth by this.
_TOLERANCE = 1e-9


# ----------------------------------------------------------------------
# Individual rationality
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class IRViolation:
    """A phone whose true utility under truthful bidding is negative."""

    phone_id: int
    utility: float


def audit_individual_rationality(
    mechanism: Mechanism, scenario: "Scenario"
) -> List[IRViolation]:
    """Run truthfully; report every phone with negative true utility."""
    outcome = mechanism.run(scenario.truthful_bids(), scenario.schedule)
    utilities = phone_utilities(outcome, scenario)
    return [
        IRViolation(phone_id=pid, utility=utility)
        for pid, utility in sorted(utilities.items())
        if utility < -_TOLERANCE
    ]


# ----------------------------------------------------------------------
# Truthfulness
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class TruthfulnessViolation:
    """A unilateral deviation that strictly beat truth-telling."""

    phone_id: int
    strategy: str
    deviant_bid: Bid
    truthful_utility: float
    deviant_utility: float

    @property
    def gain(self) -> float:
        """How much the deviation improved on truth-telling."""
        return self.deviant_utility - self.truthful_utility


@dataclasses.dataclass(frozen=True)
class TruthfulnessReport:
    """Result of a truthfulness audit.

    Attributes
    ----------
    violations:
        Profitable deviations found (empty for a truthful mechanism).
    deviations_tested:
        Total number of (phone, deviation) pairs evaluated.
    """

    violations: Tuple[TruthfulnessViolation, ...]
    deviations_tested: int

    @property
    def passed(self) -> bool:
        """Whether no profitable deviation was found."""
        return not self.violations


def default_deviation_strategies() -> List[BiddingStrategy]:
    """The standard audit battery: one strategy per misreport dimension.

    Covers cost inflation/deflation (multiplicative and additive),
    arrival delays, early departures, combined misreports, and random
    feasible deviations.
    """
    return [
        CostScalingStrategy(1.5),
        CostScalingStrategy(3.0),
        CostScalingStrategy(0.5),
        CostAdditiveStrategy(5.0),
        CostAdditiveStrategy(-5.0),
        DelayedArrivalStrategy(1),
        DelayedArrivalStrategy(2),
        EarlyDepartureStrategy(1),
        EarlyDepartureStrategy(2),
        CombinedMisreportStrategy(
            cost_factor=1.5, arrival_delay=1, departure_advance=1
        ),
        RandomMisreportStrategy(),
        RandomMisreportStrategy(),
    ]


def audit_truthfulness(
    mechanism: Mechanism,
    scenario: "Scenario",
    rng: np.random.Generator,
    strategies: Optional[Sequence[BiddingStrategy]] = None,
    max_phones: Optional[int] = None,
) -> TruthfulnessReport:
    """Test unilateral deviations against truth-telling.

    All phones bid truthfully except one deviant; the deviant's *true*
    utility (payment minus real cost) is compared between its truthful
    and deviant bids.  ``max_phones`` samples a subset of phones for
    large scenarios.
    """
    battery = list(strategies) if strategies is not None else (
        default_deviation_strategies()
    )
    truthful_bids = scenario.truthful_bids()
    truthful_outcome = mechanism.run(truthful_bids, scenario.schedule)
    truthful_utils = phone_utilities(truthful_outcome, scenario)

    profiles = list(scenario.profiles)
    if max_phones is not None and max_phones < len(profiles):
        chosen = rng.choice(len(profiles), size=max_phones, replace=False)
        profiles = [profiles[int(i)] for i in chosen]

    violations: List[TruthfulnessViolation] = []
    tested = 0
    for profile in profiles:
        others = [
            bid for bid in truthful_bids if bid.phone_id != profile.phone_id
        ]
        for strategy in battery:
            deviant_bid = strategy.make_bid(profile, rng)
            if deviant_bid is None or deviant_bid == profile.truthful_bid():
                continue
            tested += 1
            outcome = mechanism.run(
                others + [deviant_bid], scenario.schedule
            )
            deviant_utility = scenario.profile(profile.phone_id).utility(
                payment=outcome.payment(profile.phone_id),
                allocated=outcome.is_winner(profile.phone_id),
            )
            if deviant_utility > truthful_utils[profile.phone_id] + _TOLERANCE:
                violations.append(
                    TruthfulnessViolation(
                        phone_id=profile.phone_id,
                        strategy=strategy.name,
                        deviant_bid=deviant_bid,
                        truthful_utility=truthful_utils[profile.phone_id],
                        deviant_utility=deviant_utility,
                    )
                )
    return TruthfulnessReport(
        violations=tuple(violations), deviations_tested=tested
    )


# ----------------------------------------------------------------------
# Monotonicity (Definition 10)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class MonotonicityReport:
    """Result of a monotonicity audit.

    Attributes
    ----------
    violations:
        ``(weaker_bid, stronger_bid)`` pairs where the weaker claim won
        but the stronger one lost.
    pairs_tested:
        Number of (winning weaker claim, stronger claim) pairs checked.
    """

    violations: Tuple[Tuple[Bid, Bid], ...]
    pairs_tested: int

    @property
    def passed(self) -> bool:
        """Whether no monotonicity violation was found."""
        return not self.violations


def _random_claim(
    profile, rng: np.random.Generator
) -> Bid:
    """A random feasible claim for ``profile``."""
    window = profile.departure - profile.arrival
    delay = int(rng.integers(0, window + 1))
    advance = int(rng.integers(0, window - delay + 1))
    cost = profile.cost * float(rng.uniform(0.5, 2.0))
    return Bid(
        phone_id=profile.phone_id,
        arrival=profile.arrival + delay,
        departure=profile.departure - advance,
        cost=cost,
    )


def _strengthen(bid: Bid, profile, rng: np.random.Generator) -> Bid:
    """A claim dominating ``bid``: earlier arrival, later departure,
    lower cost — staying feasible for ``profile``."""
    arrival = int(rng.integers(profile.arrival, bid.arrival + 1))
    departure = int(rng.integers(bid.departure, profile.departure + 1))
    cost = bid.cost * float(rng.uniform(0.3, 1.0))
    return Bid(
        phone_id=bid.phone_id,
        arrival=arrival,
        departure=departure,
        cost=cost,
    )


def audit_monotonicity(
    mechanism: Mechanism,
    scenario: "Scenario",
    rng: np.random.Generator,
    samples: int = 50,
) -> MonotonicityReport:
    """Definition 10: a winning claim must keep winning when strengthened.

    Samples random (phone, weaker claim) pairs; whenever the weaker claim
    wins, a random stronger claim of the same phone is checked to also
    win, holding everyone else's truthful bids fixed.
    """
    truthful_bids = scenario.truthful_bids()
    violations: List[Tuple[Bid, Bid]] = []
    tested = 0
    profiles = list(scenario.profiles)
    if not profiles:
        return MonotonicityReport(violations=(), pairs_tested=0)
    for _ in range(samples):
        profile = profiles[int(rng.integers(len(profiles)))]
        weaker = _random_claim(profile, rng)
        others = [
            bid for bid in truthful_bids if bid.phone_id != profile.phone_id
        ]
        weaker_outcome = mechanism.run(
            others + [weaker], scenario.schedule
        )
        if not weaker_outcome.is_winner(profile.phone_id):
            continue
        stronger = _strengthen(weaker, profile, rng)
        tested += 1
        stronger_outcome = mechanism.run(
            others + [stronger], scenario.schedule
        )
        if not stronger_outcome.is_winner(profile.phone_id):
            violations.append((weaker, stronger))
    return MonotonicityReport(
        violations=tuple(violations), pairs_tested=tested
    )
