"""Aggregation of repeated measurements: mean, spread, confidence.

Sweep points are measured over several seeded repetitions;
:func:`summarize` reduces the per-repetition values to a
:class:`Summary` with a normal-approximation 95% confidence interval.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Optional

from repro.errors import ValidationError

#: Two-sided 97.5% normal quantile, for 95% confidence intervals.
_Z_95 = 1.959963984540054


@dataclasses.dataclass(frozen=True)
class Summary:
    """Mean and dispersion of one measured quantity.

    Attributes
    ----------
    mean, std, minimum, maximum:
        The obvious sample statistics (``std`` is the sample standard
        deviation with Bessel's correction; zero for a single value).
    count:
        Number of values aggregated.
    ci95:
        Half-width of the normal-approximation 95% confidence interval
        of the mean.
    """

    mean: float
    std: float
    minimum: float
    maximum: float
    count: int
    ci95: float

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.ci95:.3f} (n={self.count})"


def summarize(values: Iterable[Optional[float]]) -> Summary:
    """Aggregate ``values``, skipping ``None`` entries.

    ``None`` entries represent undefined per-repetition measurements
    (e.g. the overpayment ratio of a round that allocated nothing) and
    are excluded rather than treated as zero.

    Raises
    ------
    ValidationError
        If no finite value remains.
    """
    kept = [float(v) for v in values if v is not None]
    for value in kept:
        if not math.isfinite(value):
            raise ValidationError(f"cannot summarize non-finite value {value!r}")
    if not kept:
        raise ValidationError("no values to summarize (all were None)")

    count = len(kept)
    mean = sum(kept) / count
    if count > 1:
        variance = sum((v - mean) ** 2 for v in kept) / (count - 1)
        std = math.sqrt(variance)
        ci95 = _Z_95 * std / math.sqrt(count)
    else:
        std = 0.0
        ci95 = 0.0
    return Summary(
        mean=mean,
        std=std,
        minimum=min(kept),
        maximum=max(kept),
        count=count,
        ci95=ci95,
    )
