"""The offline optimal truthful mechanism (Section IV of the paper).

Winning-bid determination reduces to maximum-weight bipartite matching on
the task x smartphone graph of Fig. 3 and is solved exactly with the
Hungarian algorithm in ``O((n + γ)^3)`` (Theorem 3).  Payments follow the
VCG rule, Eq. (7)/(8) of the paper:

.. math::

    p_i(B) = (ω^*(B) - (-b_i)) - ω^*(B_{-i}) = ω^*(B) + b_i - ω^*(B_{-i})

for winners — each phone is paid its claimed cost plus its marginal
contribution to everyone else's welfare — and zero for losers.  Theorem 1
(truthfulness in cost *and* active time, given the no-early-arrival /
no-late-departure constraints) and Theorem 2 (individual rationality)
follow the classic VCG arguments; the property auditors in
:mod:`repro.metrics.properties` verify both empirically.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.matching.graph import TaskAssignmentGraph
from repro.mechanisms.base import Mechanism
from repro.mechanisms.greedy_core import bid_index
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.round_config import RoundConfig
from repro.model.task import TaskSchedule


class OfflineVCGMechanism(Mechanism):
    """Optimal allocation + VCG payments for the offline case.

    The mechanism assumes full information about the round up front: all
    bids and the entire task schedule.  This is the paper's benchmark
    case; the online mechanism is evaluated against it (Theorem 6's
    1/2-competitive claim).

    Payments are delivered at each winner's reported departure slot, the
    same settlement convention the online mechanism uses, so overpayment
    and cash-flow metrics are comparable across the two.

    ``backend`` selects the matching engine (see
    :mod:`repro.matching.backend`); the default ``None`` defers to the
    session default, whose ``"auto"`` mode picks the dense solver for
    paper-scale rounds and the CSR sparse solver for city-scale ones.
    """

    name = "offline-vcg"
    is_truthful = True
    is_online = False

    def __init__(self, backend: Optional[str] = None) -> None:
        self._backend = backend

    @property
    def backend(self) -> Optional[str]:
        """The matching-backend override in force (``None`` = default)."""
        return self._backend

    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> AuctionOutcome:
        self._resolve_config(bids, schedule, config)

        graph = TaskAssignmentGraph(schedule, bids, backend=self._backend)
        allocation, optimal_welfare = graph.solve()

        # Memoised across runs on the same bid tuple (repeated payment
        # passes and counterfactual audits re-run identical bid vectors).
        bid_by_phone = bid_index(tuple(bids))
        payments: Dict[int, float] = {}
        payment_slots: Dict[int, int] = {}
        # Sorted so payment-dict insertion order (and therefore the
        # outcome's serialised bytes) never depends on set hash order.
        for phone_id in sorted(set(allocation.values())):
            welfare_without = graph.welfare_without_phone(phone_id)
            bid = bid_by_phone[phone_id]
            payments[phone_id] = (
                optimal_welfare + bid.cost - welfare_without
            )
            payment_slots[phone_id] = bid.departure

        return AuctionOutcome(
            bids=bids,
            schedule=schedule,
            allocation=allocation,
            payments=payments,
            payment_slots=payment_slots,
        )

    def optimal_welfare(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> float:
        """The optimum ``ω*(B)`` alone, without computing payments.

        Used by the competitive-ratio metric, which compares the online
        mechanism's welfare against this optimum on the same bids and
        would waste ``O(n)`` extra matching solves if it called
        :meth:`run`.
        """
        self._resolve_config(bids, schedule, config)
        _, welfare = TaskAssignmentGraph(
            schedule, bids, backend=self._backend
        ).solve()
        return welfare
