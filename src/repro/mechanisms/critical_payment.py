"""Critical-value payments for the online mechanism (Algorithm 2).

The paper pays each online winner ``i`` (who won in slot ``t'_i``) the
claimed cost of its *critical player*: re-run the greedy allocation with
``B_i`` removed and take the highest claimed cost among smartphones that
win in slots ``[t'_i, d̃_i]``, floored at ``b_i`` (Algorithm 2).  Payment
is delivered in the reported departure slot.

Two payment rules are provided:

* :func:`algorithm2_payment` — the paper's Algorithm 2, verbatim.
* :func:`exact_critical_payment` — the true critical value
  ``sup { b : i still wins when bidding b }`` computed by a monotone
  binary search over candidate thresholds.  The two agree whenever every
  task in the winner's window is served in the re-run; they differ in
  *under-supplied* windows, where Algorithm 2 falls back to paying the
  winner's own bid even though the winner would have won at any price —
  a known gap in the paper's analysis that breaks cost-truthfulness for
  uncontested winners (documented in DESIGN.md §7 and exercised by the
  test suite).  With a reserve price active, the exact rule pays the task
  value in that case, restoring truthfulness.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro import obs
from repro.errors import MechanismError
from repro.mechanisms.greedy_core import GreedyProber, run_greedy_allocation
from repro.model.bid import Bid
from repro.model.task import TaskSchedule

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mechanisms.streaming import StreamingGreedyEngine


def _check_prober(
    prober: GreedyProber,
    bids: Sequence[Bid],
    reserve_price: bool,
) -> None:
    """Reject a prober built for different bids or a different reserve.

    A mismatched prober would silently compute payments for the wrong
    auction, so the guard is strict equality on the full bid tuple.
    """
    if prober.reserve_price != reserve_price:  # repro: noqa-REP002 -- boolean flag, not a money value
        raise MechanismError(
            "prober reserve_price does not match the payment call"
        )
    if not prober.covers(bids):
        raise MechanismError(
            "prober was built for a different bid vector"
        )


def _check_engine(
    engine: "StreamingGreedyEngine",
    bids: Sequence[Bid],
    reserve_price: bool,
) -> None:
    """Reject a streaming engine built for a different auction.

    Same strictness as :func:`_check_prober`: a mismatched engine would
    silently price the wrong auction.
    """
    if engine.reserve_price != reserve_price:  # repro: noqa-REP002 -- boolean flag, not a money value
        raise MechanismError(
            "streaming engine reserve_price does not match the payment "
            "call"
        )
    if not engine.covers(bids):
        raise MechanismError(
            "streaming engine was built for a different bid vector"
        )


def algorithm2_payment(
    bids: Sequence[Bid],
    schedule: TaskSchedule,
    winner: Bid,
    win_slot: int,
    reserve_price: bool = False,
    prober: Optional[GreedyProber] = None,
    engine: Optional["StreamingGreedyEngine"] = None,
) -> float:
    """Algorithm 2 of the paper: pay the critical player's claimed cost.

    Re-runs the greedy allocation without ``winner`` up to the winner's
    reported departure and returns the maximum claimed cost among bids
    that win in slots ``[win_slot, winner.departure]``, floored at the
    winner's own claimed cost.  A :class:`~repro.mechanisms.greedy_core
    .GreedyProber` built for the same bids makes the re-run incremental
    (resumed from the winner's arrival slot) without changing the result.
    A :class:`~repro.mechanisms.streaming.StreamingGreedyEngine` goes
    further: when its displacement-cascade records apply, the payment is
    read off without any re-run at all; otherwise the engine's fallback
    prober takes over.  All three routes are bit-identical.
    """
    if not (winner.arrival <= win_slot <= winner.departure):
        raise MechanismError(
            f"win slot {win_slot} outside phone {winner.phone_id}'s "
            f"claimed window [{winner.arrival}, {winner.departure}]"
        )
    with obs.span(
        "payment.algorithm2", winner=winner.phone_id, win_slot=win_slot
    ):
        if engine is not None:
            _check_engine(engine, bids, reserve_price)
            recorded = engine.base_run.win_slots.get(winner.phone_id)
            if engine.supports_incremental_payments and recorded in (
                None,
                win_slot,
            ):
                return engine.algorithm2_payment(winner, win_slot)
            prober = engine.prober
        if prober is not None:
            _check_prober(prober, bids, reserve_price)
            rerun = prober.run_excluding(
                winner.phone_id, stop_after_slot=winner.departure
            )
        else:
            rerun = run_greedy_allocation(
                bids,
                schedule,
                exclude_phone=winner.phone_id,
                reserve_price=reserve_price,
                stop_after_slot=winner.departure,
            )
        payment = winner.cost
        for other in rerun.winners_between(win_slot, winner.departure):
            if other.cost > payment:
                payment = other.cost
        return payment


def _wins_with_cost(
    bids: Sequence[Bid],
    schedule: TaskSchedule,
    winner: Bid,
    candidate_cost: float,
    reserve_price: bool,
) -> bool:
    """Whether ``winner`` still wins after replacing its cost."""
    replaced = [
        bid.with_cost(candidate_cost) if bid.phone_id == winner.phone_id else bid
        for bid in bids
    ]
    rerun = run_greedy_allocation(
        replaced,
        schedule,
        reserve_price=reserve_price,
        stop_after_slot=winner.departure,
    )
    return winner.phone_id in rerun.win_slots


def exact_critical_payment(
    bids: Sequence[Bid],
    schedule: TaskSchedule,
    winner: Bid,
    reserve_price: bool = False,
    prober: Optional[GreedyProber] = None,
    engine: Optional["StreamingGreedyEngine"] = None,
) -> float:
    """The exact critical value of Definition 9, by binary search.

    Winning is monotone non-increasing in the claimed cost (Theorem 4's
    monotonicity argument, verified by the property tests), and the
    win/lose outcome can only change when the claimed cost crosses
    another bid's cost (or the task value, when a reserve is active).
    The supremum of winning costs is therefore attained at one of those
    thresholds, found here with ``O(log n)`` greedy re-runs — or, when
    a :class:`~repro.mechanisms.streaming.StreamingGreedyEngine` with
    applicable incremental records is supplied, read directly off its
    per-slot marginal thresholds with no re-run at all (bit-identical;
    see the streaming module's docstring for the argument).

    When the winner is uncontested — it would win at *any* price — the
    critical value is unbounded.  With ``reserve_price`` the task value
    caps it; without, we fall back to Algorithm 2's behaviour of paying
    the winner's own claimed cost (and the caller inherits the
    truthfulness caveat documented in the module docstring).
    """
    if engine is not None:
        _check_engine(engine, bids, reserve_price)
        if (
            engine.supports_incremental_payments
            and winner.phone_id in engine.base_run.win_slots
        ):
            with obs.span(
                "payment.exact", winner=winner.phone_id
            ) as fast_tel:
                fast_tel.set_attribute("probes", 0)
                return engine.exact_payment(winner)
        prober = engine.prober
    if prober is not None:
        _check_prober(prober, bids, reserve_price)
    with obs.span("payment.exact", winner=winner.phone_id) as tel:
        probes = 0

        def probe(candidate_cost: float) -> bool:
            nonlocal probes
            probes += 1
            if prober is not None:
                rerun = prober.run_with_cost(
                    winner,
                    candidate_cost,
                    stop_after_slot=winner.departure,
                )
                return winner.phone_id in rerun.win_slots
            return _wins_with_cost(
                bids, schedule, winner, candidate_cost, reserve_price
            )

        try:
            if prober is not None:
                thresholds: List[float] = prober.exact_thresholds(winner)
            else:
                thresholds = sorted(
                    {
                        bid.cost
                        for bid in bids
                        if bid.phone_id != winner.phone_id
                    }
                    | (
                        {task.value for task in schedule}
                        if reserve_price
                        else set()
                    )
                )
                thresholds = [t for t in thresholds if t > 0.0]

            if not thresholds:
                return winner.cost

            # Probe strictly above the largest threshold: uncontested?
            above_all = thresholds[-1] + 1.0
            if probe(above_all):
                return winner.cost if not reserve_price else max(
                    thresholds[-1], winner.cost
                )

            # Probe region k is (thresholds[k-1], thresholds[k]); its
            # representative is a midpoint.  Winning is monotone over
            # regions, so binary-search the last winning region; the
            # critical value is that region's right endpoint.
            def representative(region: int) -> float:
                upper = thresholds[region]
                lower = 0.0 if region == 0 else thresholds[region - 1]
                return (lower + upper) / 2.0

            low, high = 0, len(thresholds) - 1
            # Invariant: the winner wins somewhere at or below region
            # `high + 1`'s lower edge; it won with its submitted bid, so
            # the region containing its own cost wins.
            best: Optional[int] = None
            while low <= high:
                mid = (low + high) // 2
                if probe(representative(mid)):
                    best = mid
                    low = mid + 1
                else:
                    high = mid - 1
            if best is None:
                # The winner won with its submitted bid yet loses in every
                # probe region; its own cost must sit exactly on a
                # threshold where the tie-break favours it.  The critical
                # value is its own cost.
                return winner.cost
            return max(thresholds[best], winner.cost)
        finally:
            tel.set_attribute("probes", probes)
            obs.counter("payment.exact.probes", probes)
