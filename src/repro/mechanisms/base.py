"""The common mechanism interface.

A mechanism is a *pure function* of its inputs: given the submitted bids
and the task schedule it returns an :class:`~repro.model.AuctionOutcome`.
Purity matters beyond tidiness — the truthfulness and monotonicity
auditors in :mod:`repro.metrics.properties` re-run mechanisms against
counterfactual bids, which is only meaningful when a run has no hidden
state.
"""

from __future__ import annotations

import abc
from typing import Optional, Sequence

from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.round_config import RoundConfig
from repro.model.task import TaskSchedule


class Mechanism(abc.ABC):
    """Abstract base class of every auction mechanism in this package."""

    #: Registry name; subclasses override.
    name: str = "abstract"

    #: Whether the mechanism is designed to be dominant-strategy truthful.
    #: Baselines that are known to be manipulable set this to ``False``;
    #: the property auditors use it to decide whether a detected profitable
    #: deviation is a bug or the expected behaviour.
    is_truthful: bool = False

    #: Whether the mechanism only uses information available at the
    #: current slot (online) or sees the whole round up front (offline).
    is_online: bool = False

    @abc.abstractmethod
    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> AuctionOutcome:
        """Run one auction round.

        Parameters
        ----------
        bids:
            The claimed bids, at most one per phone.
        schedule:
            The round's task arrivals.
        config:
            Round configuration; defaults to a config matching the
            schedule's horizon.

        Returns
        -------
        AuctionOutcome
            Allocation, payments, and payment slots.
        """

    def _resolve_config(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig],
    ) -> RoundConfig:
        """Validate inputs and return the effective round config."""
        effective = config or RoundConfig.for_schedule(schedule)
        effective.validate_schedule(schedule)
        effective.validate_bids(bids)
        return effective

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
