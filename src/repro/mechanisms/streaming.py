"""Event-driven streaming engine for the online mechanism.

The batch path (:mod:`repro.mechanisms.greedy_core`) answers each
payment question by *re-running* Algorithm 1 — resumed from a snapshot,
but still a walk per probe.  At city scale (10⁵–10⁶ phones) the probes
dominate the round.  This module replaces them with bookkeeping done
*during* a single allocation pass:

Event model
-----------
The round is consumed as one merged stream of events in slot order:

* **arrival** — the bid enters the pool.  Arrivals are pre-bucketed
  with numpy (one ``argsort`` over the arrival column plus a
  ``searchsorted`` per-slot boundary table), so the per-slot arrival
  scan costs O(arrivals in slot), never O(n).
* **expiry** — a bid whose departure has passed is discarded lazily
  when it surfaces at the top of the pool.
* **selection** — a task pops the cheapest active unallocated bid.

The pool is a single binary heap keyed by
:func:`~repro.mechanisms.greedy_core.bid_sort_key`; every event is
O(log n), and each bid is pushed and popped at most once, so a full
round costs O((n + γ) log n) with *no* per-probe re-walks.

Heap invariants
---------------
Entries are ``(cost, arrival, phone_id, index)`` tuples.  The first
three fields are exactly ``bid_sort_key`` — a *strict total order*,
since ``phone_id`` is unique — so the pop sequence is a function of the
entry multiset alone, independent of internal heap layout.  That is
what makes the streaming pass bit-identical to ``_walk_slots``: both
pop the same totally-ordered multiset in the same order.

Incremental critical thresholds
-------------------------------
Removing winner ``i`` from the greedy run (Algorithm 2's re-run)
perturbs it only along a *displacement cascade*: at ``i``'s win slot
the remaining winners shift up by one and the slot's recorded
**runner-up** is additionally selected; if that runner-up was itself a
base winner at a later slot, the same displacement repeats there, and
so on until a runner-up is ``None`` (the slot gains an unserved task)
or the runner-up never wins in the base run.  Runner-ups depend only on
the base run, so they are recorded once per slot during the single
pass, and every winner's Algorithm-2 payment reduces to a range-max of
per-slot winner costs over the winner's window plus the runner-up
costs along its cascade — O(cascade length), typically O(1).

The exact critical value (Definition 9) falls out of the same records:
per slot, the marginal threshold below which an extra bid would be
selected is the last winner's cost (fully served slot) or the open
threshold — ``+inf`` without a reserve price, the task value with one —
and the supremum over the winner's window, adjusted along the cascade,
*is* the critical value the batch binary search converges to
(Theorems 4–7 justify monotonicity; see ARCHITECTURE.md for the
argument).  With a reserve price and *heterogeneous* task values the
within-slot shift can change reserve outcomes, so the engine declares
incremental payments unsupported and payments fall back to the
snapshot prober — results stay bit-identical either way.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro import obs
from repro.errors import MechanismError
from repro.mechanisms.greedy_core import GreedyProber, GreedyRun, SlotOutcome
from repro.model.bid import Bid
from repro.model.task import TaskSchedule
from repro.obs.clock import perf_seconds

#: A pool entry: ``(cost, arrival, phone_id, index)``.  The first three
#: fields are ``bid_sort_key`` verbatim; the trailing index reaches the
#: bid's departure and object in O(1) and never participates in
#: comparisons (the prefix is already a strict total order).
_Entry = Tuple[float, int, int, int]

_INF = float("inf")
_NEG_INF = float("-inf")


class _RangeMax:
    """O(1) range-max over a fixed float array (sparse table).

    Built in O(n log n); ``query(lo, hi)`` (inclusive bounds) overlaps
    two power-of-two blocks — max is idempotent, so the overlap is
    harmless.  Values are plain Python floats and the query returns one
    of them unchanged (no arithmetic), preserving bit-identity.
    """

    def __init__(self, values: Sequence[float]) -> None:
        self._tables: List[List[float]] = [list(values)]
        size = len(values)
        span = 1
        while span * 2 <= size:
            prev = self._tables[-1]
            self._tables.append(
                [
                    prev[i] if prev[i] >= prev[i + span] else prev[i + span]
                    for i in range(size - 2 * span + 1)
                ]
            )
            span *= 2

    def query(self, lo: int, hi: int) -> float:
        """Max of ``values[lo..hi]`` (inclusive); requires ``lo <= hi``."""
        length = hi - lo + 1
        level = length.bit_length() - 1
        table = self._tables[level]
        left = table[lo]
        right = table[hi - (1 << level) + 1]
        return left if left >= right else right


class StreamingGreedyEngine:
    """One-pass Algorithm 1 with per-slot payment state (see module doc).

    The constructor runs the allocation; :attr:`base_run` is
    bit-identical to :func:`~repro.mechanisms.greedy_core
    .run_greedy_allocation` on the same inputs.  When
    :attr:`supports_incremental_payments` is true,
    :meth:`algorithm2_payment` and :meth:`exact_payment` answer each
    winner's payment from the recorded state without any re-walk;
    otherwise :attr:`prober` supplies the snapshot-resume fallback.
    """

    def __init__(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        reserve_price: bool = False,
    ) -> None:
        self._source = bids
        self._bids: Tuple[Bid, ...] = tuple(bids)
        self._schedule = schedule
        self._reserve_price = bool(reserve_price)
        self._num_slots = schedule.num_slots
        self._bid_by_phone = {bid.phone_id: bid for bid in self._bids}
        self._prober: Optional[GreedyProber] = None
        self._cascade_steps = 0
        uniform = schedule.uniform_value
        self._supports_incremental = (
            not self._reserve_price or uniform is not None
        )
        #: Threshold at which an under-supplied slot stops admitting an
        #: extra bid: unbounded without a reserve, the (uniform) task
        #: value with one.  Only consulted on the incremental path,
        #: where a reserve price implies homogeneous values.
        self._open_threshold = (
            uniform if self._reserve_price and uniform is not None else _INF
        )
        started = perf_seconds()
        self._base_run = self._stream()
        elapsed = perf_seconds() - started
        rate = self._events / elapsed if elapsed > 0 else 0.0
        obs.counter("online.stream.events", self._events)
        obs.gauge("online.stream.events_per_second", rate)
        #: Per-slot range-max structures, built lazily on first payment
        #: (a pure allocation never pays for them).
        self._cost_rmq: Optional[_RangeMax] = None
        self._theta_rmq: Optional[_RangeMax] = None

    # ------------------------------------------------------------------
    # The single event-driven pass
    # ------------------------------------------------------------------
    def _stream(self) -> GreedyRun:
        bids = self._bids
        count = len(bids)
        num_slots = self._num_slots
        reserve = self._reserve_price

        # Pre-bucket arrivals with numpy: one stable argsort over the
        # arrival column, then a searchsorted boundary table, so slot
        # ``s`` reads ``order[bounds[s-1]:bounds[s]]`` — the same
        # interval trick ``matching/graph.py`` uses for window masks.
        arrival = np.fromiter(
            (bid.arrival for bid in bids), dtype=np.int64, count=count
        )
        order = np.argsort(arrival, kind="stable")
        bounds = np.searchsorted(
            arrival[order], np.arange(1, num_slots + 2)
        ).tolist()
        order_list: List[int] = order.tolist()
        # Plain Python lists for the hot loop: scalar indexing into
        # numpy arrays allocates a boxed scalar per access, which
        # dominates at 10⁶ bids.  ``tolist`` round-trips exactly.
        cost: List[float] = [bid.cost for bid in bids]
        arr: List[int] = arrival.tolist()
        dep: List[int] = [bid.departure for bid in bids]
        pid: List[int] = [bid.phone_id for bid in bids]

        pool: List[_Entry] = []
        allocation: Dict[int, int] = {}
        win_slots: Dict[int, int] = {}
        slot_outcomes: List[SlotOutcome] = []
        # Per-slot payment state, 1-indexed (entry 0 is padding).
        last_cost: List[float] = [_NEG_INF] * (num_slots + 1)
        theta: List[float] = [_NEG_INF] * (num_slots + 1)
        runner_up: Dict[int, Optional[_Entry]] = {}
        open_threshold = self._open_threshold
        events = 0
        candidate_evals = 0
        heappush = heapq.heappush
        heappop = heapq.heappop

        with obs.span(
            "greedy.allocation.streaming",
            bids=count,
            slots=num_slots,
        ) as tel:
            for slot in range(1, num_slots + 1):
                lo = bounds[slot - 1]
                hi = bounds[slot]
                for position in range(lo, hi):
                    index = order_list[position]
                    heappush(
                        pool,
                        (cost[index], arr[index], pid[index], index),
                    )
                events += hi - lo

                tasks = self._schedule.tasks_in_slot(slot)
                if not tasks:
                    continue

                winners: List[_Entry] = []
                unserved = 0
                for task in tasks:
                    chosen: Optional[_Entry] = None
                    task_value = task.value
                    while pool:
                        candidate_evals += 1
                        top = pool[0]
                        if dep[top[3]] < slot:  # expiry event
                            heappop(pool)
                            events += 1
                            continue
                        if reserve and top[0] > task_value:
                            break
                        chosen = heappop(pool)
                        events += 1
                        break
                    if chosen is None:
                        unserved += 1
                        continue
                    allocation[task.task_id] = chosen[2]
                    win_slots[chosen[2]] = slot
                    winners.append(chosen)

                if winners:
                    # Winners pop in increasing sort order, so the last
                    # one carries the slot's maximum winning cost.
                    last_cost[slot] = winners[-1][0]
                if unserved:
                    # An extra bid cheap enough (and under the reserve,
                    # when active) would have been selected here no
                    # matter what: the slot's marginal threshold is
                    # open, and removing a winner frees no one.
                    theta[slot] = open_threshold
                    runner_up[slot] = None
                else:
                    theta[slot] = winners[-1][0]
                    # Peek (never pop) the first still-valid candidate
                    # after the slot's winners: the bid that inherits a
                    # selection if one winner is removed.
                    successor: Optional[_Entry] = None
                    last_value = tasks[-1].value
                    while pool:
                        top = pool[0]
                        if dep[top[3]] < slot:
                            heappop(pool)
                            events += 1
                            continue
                        if reserve and top[0] > last_value:
                            break
                        successor = top
                        break
                    runner_up[slot] = successor
                slot_outcomes.append(
                    SlotOutcome(
                        slot=slot,
                        winners=tuple(bids[e[3]] for e in winners),
                        unserved=unserved,
                    )
                )
            tel.set_attribute("events", events)
            tel.set_attribute("candidate_evals", candidate_evals)
            tel.set_attribute("winners", len(win_slots))
            tel.set_attribute(
                "unserved",
                sum(outcome.unserved for outcome in slot_outcomes),
            )
            obs.counter("greedy.candidate_evals", candidate_evals)

        self._events = events
        self._last_cost = last_cost
        self._theta = theta
        self._runner_up = runner_up
        return GreedyRun(
            allocation=allocation,
            win_slots=win_slots,
            slots=tuple(slot_outcomes),
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def bids(self) -> Tuple[Bid, ...]:
        """The bid tuple the engine was built for."""
        return self._bids

    def covers(self, bids: Sequence[Bid]) -> bool:
        """Whether the engine was built for exactly ``bids``.

        Identity first (O(1) for the same sequence a mechanism run
        threads through every payment call), elementwise comparison as
        the fallback — same contract as ``GreedyProber.covers``.
        """
        return (
            bids is self._source
            or bids is self._bids
            or tuple(bids) == self._bids
        )

    @property
    def schedule(self) -> TaskSchedule:
        """The task schedule the engine was built for."""
        return self._schedule

    @property
    def reserve_price(self) -> bool:
        """Whether the walk refuses negative-welfare assignments."""
        return self._reserve_price

    @property
    def bid_by_phone(self) -> Dict[int, Bid]:
        """``phone_id -> bid`` index over the engine's bids (read-only)."""
        return self._bid_by_phone

    @property
    def base_run(self) -> GreedyRun:
        """The allocation (bit-identical to the batch path)."""
        return self._base_run

    @property
    def events(self) -> int:
        """Arrival + expiry + selection events consumed by the pass."""
        return self._events

    @property
    def cascade_steps(self) -> int:
        """Displacement-cascade hops walked by payments so far."""
        return self._cascade_steps

    @property
    def supports_incremental_payments(self) -> bool:
        """Whether payments can skip the prober (see module doc)."""
        return self._supports_incremental

    @property
    def prober(self) -> GreedyProber:
        """Snapshot-resume fallback, built on first use.

        Only payments that the incremental records cannot answer — a
        reserve price over heterogeneous task values — reach it.
        """
        if self._prober is None:
            self._prober = GreedyProber(
                self._bids,
                self._schedule,
                reserve_price=self._reserve_price,
            )
        return self._prober

    # ------------------------------------------------------------------
    # Incremental payments
    # ------------------------------------------------------------------
    def _require_incremental(self) -> None:
        if not self._supports_incremental:
            raise MechanismError(
                "incremental payments are unsupported with a reserve "
                "price over heterogeneous task values; use the prober "
                "fallback"
            )

    def algorithm2_payment(self, winner: Bid, win_slot: int) -> float:
        """Algorithm-2 payment for ``winner``, from the recorded state.

        Valid when ``winner`` won slot ``win_slot`` in the base run (the
        standard call) or never won at all (the re-run without it is the
        base run itself); :mod:`repro.mechanisms.critical_payment`
        routes anything else to the prober.
        """
        self._require_incremental()
        recorded = self._base_run.win_slots.get(winner.phone_id)
        if recorded is not None and recorded != win_slot:
            raise MechanismError(
                f"phone {winner.phone_id} won slot {recorded}, not "
                f"{win_slot}; the cascade records only answer the "
                "recorded win slot"
            )
        departure = min(winner.departure, self._num_slots)
        payment = winner.cost
        if win_slot <= departure:
            if self._cost_rmq is None:
                self._cost_rmq = _RangeMax(self._last_cost)
            best = self._cost_rmq.query(win_slot, departure)
            if best > payment:
                payment = best
        if recorded is None:
            return payment
        slot = win_slot
        steps = 0
        while True:
            successor = self._runner_up[slot]
            if successor is None:
                # The slot gains an unserved task instead of a new
                # winner; the re-run converges back onto the base run.
                break
            steps += 1
            if successor[0] > payment:
                payment = successor[0]
            next_slot = self._base_run.win_slots.get(successor[2])
            if next_slot is None or next_slot > departure:
                break
            slot = next_slot
        self._cascade_steps += steps
        return payment

    def exact_payment(self, winner: Bid) -> float:
        """The exact critical value for a base-run winner.

        Supremum of the per-slot marginal thresholds over the winner's
        window, with the cascade's runner-up costs (which can only
        raise a slot's marginal) folded in; ``+inf`` means the winner
        is uncontested and Algorithm 2's own-bid fallback applies —
        exactly the value the batch binary search converges to.
        """
        self._require_incremental()
        win_slot = self._base_run.win_slots.get(winner.phone_id)
        if win_slot is None:
            raise MechanismError(
                f"phone {winner.phone_id} is not a winner of the base "
                "run; the exact fast path only prices winners"
            )
        departure = min(winner.departure, self._num_slots)
        if self._theta_rmq is None:
            self._theta_rmq = _RangeMax(self._theta)
        threshold = self._theta_rmq.query(winner.arrival, departure)
        slot = win_slot
        steps = 0
        while True:
            successor = self._runner_up[slot]
            if successor is None:
                # The cascade ends in a newly unserved task: within the
                # window the winner's slot became open.
                if self._open_threshold > threshold:
                    threshold = self._open_threshold
                break
            steps += 1
            if successor[0] > threshold:
                threshold = successor[0]
            next_slot = self._base_run.win_slots.get(successor[2])
            if next_slot is None or next_slot > departure:
                break
            slot = next_slot
        self._cascade_steps += steps
        if threshold == _INF:
            return winner.cost
        return threshold if threshold > winner.cost else winner.cost
