"""Auction mechanisms: the paper's two contributions plus baselines.

* :class:`~repro.mechanisms.offline_vcg.OfflineVCGMechanism` — Section IV:
  optimal winning-bid determination by maximum-weight bipartite matching +
  VCG payments.
* :class:`~repro.mechanisms.online_greedy.OnlineGreedyMechanism` —
  Section V: per-slot greedy allocation (Algorithm 1) + critical-value
  payments (Algorithm 2).
* :mod:`repro.mechanisms.baselines` — comparison mechanisms, including the
  untruthful per-slot second-price rule the paper dissects in Fig. 5.
"""

from repro.mechanisms.base import Mechanism
from repro.mechanisms.greedy_core import (
    GreedyProber,
    GreedyRun,
    bid_index,
    run_greedy_allocation,
)
from repro.mechanisms.offline_vcg import OfflineVCGMechanism
from repro.mechanisms.online_greedy import OnlineGreedyMechanism
from repro.mechanisms.registry import (
    available_mechanisms,
    create_mechanism,
    register_mechanism,
)
from repro.mechanisms.streaming import StreamingGreedyEngine

__all__ = [
    "Mechanism",
    "OfflineVCGMechanism",
    "OnlineGreedyMechanism",
    "GreedyProber",
    "GreedyRun",
    "StreamingGreedyEngine",
    "bid_index",
    "run_greedy_allocation",
    "available_mechanisms",
    "create_mechanism",
    "register_mechanism",
]
