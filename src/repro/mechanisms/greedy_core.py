"""The slot-by-slot greedy allocation shared by the online mechanisms.

This module implements Algorithm 1 of the paper ("Winning Bids
Determination") as a reusable primitive: walk the slots in order,
maintain the pool of active, not-yet-allocated bids, and hand each newly
arriving task to the cheapest bid in the pool.  Both the online mechanism
itself and its payment scheme (Algorithm 2 re-runs the allocation with one
bid removed) are built on this function, as is the second-price baseline.

Tie-breaking
------------
The paper sorts bids "by claimed cost in non-decreasing order" without
specifying ties.  We break ties deterministically by ``(cost, arrival,
phone_id)``: earlier-arriving phones first, then lower phone id.  The same
rule is used everywhere (allocation, payment re-runs, baselines) so that
the mechanism is a deterministic function of its inputs — a requirement
for the critical-value payment analysis to be meaningful.
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.model.bid import Bid
from repro.model.task import TaskSchedule

#: Sort key implementing the documented deterministic tie-break.
def bid_sort_key(bid: Bid) -> Tuple[float, int, int]:
    """Greedy selection order: cheapest first, ties by arrival then id."""
    return (bid.cost, bid.arrival, bid.phone_id)


@dataclasses.dataclass(frozen=True)
class SlotOutcome:
    """What happened in one slot of a greedy run.

    Attributes
    ----------
    slot:
        The 1-based slot index.
    winners:
        Winning bids in selection order (cheapest first).
    unserved:
        Number of tasks of this slot left unserved (pool exhausted, or —
        when a reserve price is active — every pooled bid priced above
        the task value).
    """

    slot: int
    winners: Tuple[Bid, ...]
    unserved: int


@dataclasses.dataclass(frozen=True)
class GreedyRun:
    """Full record of a greedy allocation run.

    Attributes
    ----------
    allocation:
        ``task_id -> phone_id`` winning assignments.
    win_slots:
        ``phone_id -> slot`` in which each winner was selected.
    slots:
        Per-slot outcomes in slot order (only slots with tasks appear).
    """

    allocation: Dict[int, int]
    win_slots: Dict[int, int]
    slots: Tuple[SlotOutcome, ...]

    @property
    def total_unserved(self) -> int:
        """Total number of tasks that went unserved."""
        return sum(outcome.unserved for outcome in self.slots)

    def winners_between(self, first_slot: int, last_slot: int) -> List[Bid]:
        """All winning bids selected in slots ``[first_slot, last_slot]``."""
        collected: List[Bid] = []
        for outcome in self.slots:
            if first_slot <= outcome.slot <= last_slot:
                collected.extend(outcome.winners)
        return collected


def run_greedy_allocation(
    bids: Sequence[Bid],
    schedule: TaskSchedule,
    exclude_phone: Optional[int] = None,
    reserve_price: bool = False,
    stop_after_slot: Optional[int] = None,
) -> GreedyRun:
    """Run Algorithm 1 and return the full allocation record.

    Parameters
    ----------
    bids:
        Claimed bids (at most one per phone; validated upstream).
    schedule:
        The round's task arrivals.
    exclude_phone:
        If given, that phone's bid is ignored — the ``B − B_i`` re-run the
        payment scheme (Algorithm 2) needs.
    reserve_price:
        When ``True``, a bid is only allocated a task whose value is at
        least the claimed cost (no negative-welfare assignments).  The
        paper's algorithm has no reserve (its "revealing equivalence" step
        assumes allocating every task is always worthwhile); the flag is
        an explicit, documented deviation used by welfare-comparison
        benches.  Skipped bids stay in the pool.
    stop_after_slot:
        Stop the walk after this slot (used by payment re-runs that only
        need slots up to a departure).

    Notes
    -----
    The pool is a heap ordered by :func:`bid_sort_key`; each slot we push
    the arrivals and lazily pop departed bids, so a run costs
    ``O((n + γ) log n)`` overall.
    """
    last_slot = schedule.num_slots if stop_after_slot is None else min(
        stop_after_slot, schedule.num_slots
    )

    arrivals_by_slot: Dict[int, List[Bid]] = {}
    for bid in bids:
        if exclude_phone is not None and bid.phone_id == exclude_phone:
            continue
        arrivals_by_slot.setdefault(bid.arrival, []).append(bid)

    pool: List[Tuple[Tuple[float, int, int], Bid]] = []
    allocation: Dict[int, int] = {}
    win_slots: Dict[int, int] = {}
    slot_outcomes: List[SlotOutcome] = []

    # Candidate evaluations are counted in a local int and reported once
    # at the end: the inner loop must stay telemetry-free so a disabled
    # tracer costs nothing on the hot path.
    candidate_evals = 0
    with obs.span(
        "greedy.allocation",
        bids=len(bids),
        slots=last_slot,
        excluded=exclude_phone,
    ) as tel:
        for slot in range(1, last_slot + 1):
            for bid in arrivals_by_slot.get(slot, ()):  # newly active bids
                heapq.heappush(pool, (bid_sort_key(bid), bid))

            tasks = schedule.tasks_in_slot(slot)
            if not tasks:
                continue

            winners: List[Bid] = []
            unserved = 0
            for task in tasks:
                chosen: Optional[Bid] = None
                while pool:
                    candidate_evals += 1
                    _, candidate = pool[0]
                    if candidate.departure < slot:  # departed; discard lazily
                        heapq.heappop(pool)
                        continue
                    if reserve_price and candidate.cost > task.value:
                        # The cheapest pooled bid is already above the
                        # task's value; with the pool sorted by cost, no
                        # pooled bid can serve this task profitably.
                        break
                    chosen = heapq.heappop(pool)[1]
                    break
                if chosen is None:
                    unserved += 1
                    continue
                allocation[task.task_id] = chosen.phone_id
                win_slots[chosen.phone_id] = slot
                winners.append(chosen)
            slot_outcomes.append(
                SlotOutcome(
                    slot=slot, winners=tuple(winners), unserved=unserved
                )
            )
        tel.set_attribute("candidate_evals", candidate_evals)
        tel.set_attribute("winners", len(win_slots))
        tel.set_attribute(
            "unserved", sum(outcome.unserved for outcome in slot_outcomes)
        )
        obs.counter("greedy.candidate_evals", candidate_evals)

    return GreedyRun(
        allocation=allocation,
        win_slots=win_slots,
        slots=tuple(slot_outcomes),
    )
