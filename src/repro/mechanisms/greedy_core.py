"""The slot-by-slot greedy allocation shared by the online mechanisms.

This module implements Algorithm 1 of the paper ("Winning Bids
Determination") as a reusable primitive: walk the slots in order,
maintain the pool of active, not-yet-allocated bids, and hand each newly
arriving task to the cheapest bid in the pool.  Both the online mechanism
itself and its payment scheme (Algorithm 2 re-runs the allocation with one
bid removed) are built on this function, as is the second-price baseline.

Tie-breaking
------------
The paper sorts bids "by claimed cost in non-decreasing order" without
specifying ties.  We break ties deterministically by ``(cost, arrival,
phone_id)``: earlier-arriving phones first, then lower phone id.  The same
rule is used everywhere (allocation, payment re-runs, baselines) so that
the mechanism is a deterministic function of its inputs — a requirement
for the critical-value payment analysis to be meaningful.
"""

from __future__ import annotations

import bisect
import collections
import dataclasses
import functools
import heapq
import itertools
from typing import (
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

import numpy as np

from repro import obs
from repro.model.bid import Bid
from repro.model.task import TaskSchedule

#: Sort key implementing the documented deterministic tie-break.
def bid_sort_key(bid: Bid) -> Tuple[float, int, int]:
    """Greedy selection order: cheapest first, ties by arrival then id."""
    return (bid.cost, bid.arrival, bid.phone_id)


@functools.lru_cache(maxsize=8)
def bid_index(bids: Tuple[Bid, ...]) -> Dict[int, Bid]:
    """``phone_id -> bid`` for a bid tuple, memoised across payment passes.

    Every winner's payment pass used to rebuild this identical dict;
    bids are frozen (hashable), so the tuple itself is the cache key.
    Callers must treat the returned dict as read-only.

    The cache is deliberately tiny: each entry pins the full bid tuple
    of one round, which at city scale is tens of megabytes, and a long
    campaign cycles through a fresh tuple per round — a large cache
    would pin dead rounds for the process lifetime while the hit
    pattern only ever needs the rounds currently in flight.
    """
    return {bid.phone_id: bid for bid in bids}


@dataclasses.dataclass(frozen=True)
class SlotOutcome:
    """What happened in one slot of a greedy run.

    Attributes
    ----------
    slot:
        The 1-based slot index.
    winners:
        Winning bids in selection order (cheapest first).
    unserved:
        Number of tasks of this slot left unserved (pool exhausted, or —
        when a reserve price is active — every pooled bid priced above
        the task value).
    """

    slot: int
    winners: Tuple[Bid, ...]
    unserved: int


@dataclasses.dataclass(frozen=True)
class GreedyRun:
    """Full record of a greedy allocation run.

    Attributes
    ----------
    allocation:
        ``task_id -> phone_id`` winning assignments.
    win_slots:
        ``phone_id -> slot`` in which each winner was selected.
    slots:
        Per-slot outcomes in slot order (only slots with tasks appear).
    """

    allocation: Dict[int, int]
    win_slots: Dict[int, int]
    slots: Tuple[SlotOutcome, ...]

    @property
    def total_unserved(self) -> int:
        """Total number of tasks that went unserved."""
        return sum(outcome.unserved for outcome in self.slots)

    def winners_between(self, first_slot: int, last_slot: int) -> List[Bid]:
        """All winning bids selected in slots ``[first_slot, last_slot]``."""
        collected: List[Bid] = []
        for outcome in self.slots:
            if first_slot <= outcome.slot <= last_slot:
                collected.extend(outcome.winners)
        return collected


def _walk_slots(
    schedule: TaskSchedule,
    arrivals_by_slot: Mapping[int, Sequence[Bid]],
    pool: List[Tuple[Tuple[float, int, int], Bid]],
    allocation: Dict[int, int],
    win_slots: Dict[int, int],
    slot_outcomes: List[SlotOutcome],
    first_slot: int,
    last_slot: int,
    reserve_price: bool,
    on_slot_start: Optional[Callable[[int], None]] = None,
) -> int:
    """Advance Algorithm 1 over slots ``[first_slot, last_slot]`` in place.

    The single authoritative implementation of the slot walk: both a cold
    :func:`run_greedy_allocation` and a :class:`GreedyProber` resume drive
    this loop, so their behaviour — tie-breaks, lazy departure pops,
    reserve-price skips — is identical by construction.  ``pool`` /
    ``allocation`` / ``win_slots`` / ``slot_outcomes`` are mutated;
    ``on_slot_start`` (if given) fires before each slot's arrivals are
    pushed, which is where the prober snapshots resumable state.  Returns
    the number of candidate evaluations performed.
    """
    candidate_evals = 0
    for slot in range(first_slot, last_slot + 1):
        if on_slot_start is not None:
            on_slot_start(slot)
        for bid in arrivals_by_slot.get(slot, ()):  # newly active bids
            heapq.heappush(pool, (bid_sort_key(bid), bid))

        tasks = schedule.tasks_in_slot(slot)
        if not tasks:
            continue

        winners: List[Bid] = []
        unserved = 0
        for task in tasks:
            chosen: Optional[Bid] = None
            while pool:
                candidate_evals += 1
                _, candidate = pool[0]
                if candidate.departure < slot:  # departed; discard lazily
                    heapq.heappop(pool)
                    continue
                if reserve_price and candidate.cost > task.value:
                    # The cheapest pooled bid is already above the
                    # task's value; with the pool sorted by cost, no
                    # pooled bid can serve this task profitably.
                    break
                chosen = heapq.heappop(pool)[1]
                break
            if chosen is None:
                unserved += 1
                continue
            allocation[task.task_id] = chosen.phone_id
            win_slots[chosen.phone_id] = slot
            winners.append(chosen)
        slot_outcomes.append(
            SlotOutcome(slot=slot, winners=tuple(winners), unserved=unserved)
        )
    return candidate_evals


def run_greedy_allocation(
    bids: Sequence[Bid],
    schedule: TaskSchedule,
    exclude_phone: Optional[int] = None,
    reserve_price: bool = False,
    stop_after_slot: Optional[int] = None,
) -> GreedyRun:
    """Run Algorithm 1 and return the full allocation record.

    Parameters
    ----------
    bids:
        Claimed bids (at most one per phone; validated upstream).
    schedule:
        The round's task arrivals.
    exclude_phone:
        If given, that phone's bid is ignored — the ``B − B_i`` re-run the
        payment scheme (Algorithm 2) needs.
    reserve_price:
        When ``True``, a bid is only allocated a task whose value is at
        least the claimed cost (no negative-welfare assignments).  The
        paper's algorithm has no reserve (its "revealing equivalence" step
        assumes allocating every task is always worthwhile); the flag is
        an explicit, documented deviation used by welfare-comparison
        benches.  Skipped bids stay in the pool.
    stop_after_slot:
        Stop the walk after this slot (used by payment re-runs that only
        need slots up to a departure).

    Notes
    -----
    The pool is a heap ordered by :func:`bid_sort_key`; each slot we push
    the arrivals and lazily pop departed bids, so a run costs
    ``O((n + γ) log n)`` overall.
    """
    last_slot = schedule.num_slots if stop_after_slot is None else min(
        stop_after_slot, schedule.num_slots
    )

    arrivals_by_slot: Dict[int, List[Bid]] = {}
    for bid in bids:
        if exclude_phone is not None and bid.phone_id == exclude_phone:
            continue
        arrivals_by_slot.setdefault(bid.arrival, []).append(bid)

    pool: List[Tuple[Tuple[float, int, int], Bid]] = []
    allocation: Dict[int, int] = {}
    win_slots: Dict[int, int] = {}
    slot_outcomes: List[SlotOutcome] = []

    # Candidate evaluations are counted in a local int and reported once
    # at the end: the inner loop must stay telemetry-free so a disabled
    # tracer costs nothing on the hot path.
    with obs.span(
        "greedy.allocation",
        bids=len(bids),
        slots=last_slot,
        excluded=exclude_phone,
    ) as tel:
        candidate_evals = _walk_slots(
            schedule,
            arrivals_by_slot,
            pool,
            allocation,
            win_slots,
            slot_outcomes,
            1,
            last_slot,
            reserve_price,
        )
        tel.set_attribute("candidate_evals", candidate_evals)
        tel.set_attribute("winners", len(win_slots))
        tel.set_attribute(
            "unserved", sum(outcome.unserved for outcome in slot_outcomes)
        )
        obs.counter("greedy.candidate_evals", candidate_evals)

    return GreedyRun(
        allocation=allocation,
        win_slots=win_slots,
        slots=tuple(slot_outcomes),
    )


class GreedyProber:
    """Incremental Algorithm-1 re-run engine shared by payment probes.

    Payments re-run the greedy allocation hundreds of times per round:
    Algorithm 2 once per winner with that winner excluded, and the exact
    critical-value rule ``O(log n)`` more times per winner with the
    winner's cost replaced.  Every one of those perturbations first takes
    effect in the perturbed bid's *arrival* slot — before it, the walk
    state (heap contents, allocation, win slots, tie-breaks) is exactly
    the base run's, because the perturbed bid has not entered the pool.

    The prober therefore runs the base allocation once and answers
    probes by reconstructing the arrival slot's walk state *virtually*
    and walking only the remaining slots.  Snapshots are never
    materialised: per slot the prober keeps two integers (how many
    selections and slot outcomes precede it), and the pool at any slot
    is rebuilt on demand from a numpy interval mask — ``arrived before
    the slot, departs at or after it, not yet selected`` — followed by
    one ``heapify``.  Heap layout may differ from the incremental
    build, but pop order is a function of the entry multiset alone
    (``bid_sort_key`` is a strict total order), so results are
    bit-identical to cold re-runs (verified by the property suites);
    peak memory drops from O(bids × slots) under the old full-copy
    snapshots to O(bids + slots).  Slots skipped by a resume are
    recorded on the ``payment.probe.slots_skipped`` counter.

    The prober never mutates bids or schedule; it holds its own private
    copies of the walk state, so a single instance can serve every
    payment pass of a mechanism run.
    """

    def __init__(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        reserve_price: bool = False,
    ) -> None:
        self._source = bids
        self._bids: Tuple[Bid, ...] = tuple(bids)
        self._schedule = schedule
        self._reserve_price = bool(reserve_price)
        self._num_slots = schedule.num_slots
        arrivals: Dict[int, List[Bid]] = {}
        for bid in self._bids:
            arrivals.setdefault(bid.arrival, []).append(bid)
        self._arrivals_by_slot = arrivals
        # Built directly (not via the memoised ``bid_index``): probes
        # call this per winner, and re-hashing a long bid tuple on every
        # cache lookup would cost more than the dict it saves.
        self._bid_by_phone = {bid.phone_id: bid for bid in self._bids}
        # Virtual-snapshot state: per-slot prefix counts (index ``s`` =
        # state at the start of slot ``s``; ``num_slots + 1`` = final)
        # plus the window columns the pool mask is computed from.
        self._selection_prefix = [0] * (self._num_slots + 2)
        self._outcome_prefix = [0] * (self._num_slots + 2)
        count = len(self._bids)
        self._arrival_col = np.fromiter(
            (bid.arrival for bid in self._bids),
            dtype=np.int64,
            count=count,
        )
        self._departure_col = np.fromiter(
            (bid.departure for bid in self._bids),
            dtype=np.int64,
            count=count,
        )
        self._thresholds: Optional[List[float]] = None
        self._cost_counts: Optional[Dict[float, int]] = None
        self._task_values: Optional[frozenset] = None
        self._base_run = self._run_base()
        # Slot each bid was selected in; the sentinel (one past the
        # final-state index) means "never selected", so the pool mask
        # ``won_slot >= s`` reads "still unallocated at slot s".
        sentinel = self._num_slots + 2
        win_slots = self._base_run.win_slots
        self._won_slot_col = np.fromiter(
            (win_slots.get(bid.phone_id, sentinel) for bid in self._bids),
            dtype=np.int64,
            count=count,
        )

    @property
    def bids(self) -> Tuple[Bid, ...]:
        """The bid tuple the prober was built for."""
        return self._bids

    def covers(self, bids: Sequence[Bid]) -> bool:
        """Whether the prober was built for exactly ``bids``.

        Identity first: a mechanism run hands the *same* sequence to
        every payment call, so the common case is O(1) rather than an
        O(n) tuple comparison per winner (which dominated city-scale
        rounds).  Separately-constructed sequences still get the full
        elementwise check.
        """
        return (
            bids is self._source
            or bids is self._bids
            or tuple(bids) == self._bids
        )

    @property
    def reserve_price(self) -> bool:
        """Whether the walks refuse negative-welfare assignments."""
        return self._reserve_price

    @property
    def bid_by_phone(self) -> Dict[int, Bid]:
        """``phone_id -> bid`` index over the prober's bids (read-only)."""
        return self._bid_by_phone

    @property
    def base_run(self) -> GreedyRun:
        """The unperturbed allocation (identical to a cold full run)."""
        return self._base_run

    def _run_base(self) -> GreedyRun:
        pool: List[Tuple[Tuple[float, int, int], Bid]] = []
        allocation: Dict[int, int] = {}
        win_slots: Dict[int, int] = {}
        slot_outcomes: List[SlotOutcome] = []
        selection_prefix = self._selection_prefix
        outcome_prefix = self._outcome_prefix

        def note(slot: int) -> None:
            selection_prefix[slot] = len(win_slots)
            outcome_prefix[slot] = len(slot_outcomes)

        with obs.span(
            "greedy.allocation",
            bids=len(self._bids),
            slots=self._num_slots,
            excluded=None,
        ) as tel:
            candidate_evals = _walk_slots(
                self._schedule,
                self._arrivals_by_slot,
                pool,
                allocation,
                win_slots,
                slot_outcomes,
                1,
                self._num_slots,
                self._reserve_price,
                on_slot_start=note,
            )
            # Final state, keyed one past the horizon: probes whose
            # perturbed bid arrives after their stop slot resolve to a
            # truncated base run without walking anything.
            selection_prefix[self._num_slots + 1] = len(win_slots)
            outcome_prefix[self._num_slots + 1] = len(slot_outcomes)
            tel.set_attribute("candidate_evals", candidate_evals)
            tel.set_attribute("winners", len(win_slots))
            tel.set_attribute(
                "unserved",
                sum(outcome.unserved for outcome in slot_outcomes),
            )
            obs.counter("greedy.candidate_evals", candidate_evals)

        return GreedyRun(
            allocation=allocation,
            win_slots=win_slots,
            slots=tuple(slot_outcomes),
        )

    def _prefix_dicts(
        self, selections: int
    ) -> Tuple[Dict[int, int], Dict[int, int]]:
        """The allocation / win-slot dicts after ``selections`` picks.

        Both base dicts gain exactly one entry per selection, in
        selection order, so an ``islice`` of each reproduces the
        as-of-slot copy the old full snapshots materialised — including
        insertion order, which pickled outcomes are sensitive to.
        """
        allocation = dict(
            itertools.islice(
                self._base_run.allocation.items(), selections
            )
        )
        win_slots = dict(
            itertools.islice(self._base_run.win_slots.items(), selections)
        )
        return allocation, win_slots

    def _pool_at(
        self, slot: int
    ) -> List[Tuple[Tuple[float, int, int], Bid]]:
        """Rebuild the pool heap as of the start of ``slot``.

        One vectorised interval mask — arrived strictly before the
        slot, not departed, not yet selected — then a heapify.  Lazily
        expired entries the incremental heap would still carry are
        dropped eagerly here; they could never win, so the walk is
        unaffected (only the count of lazy expiry pops changes).
        """
        mask = (
            (self._arrival_col < slot)
            & (self._departure_col >= slot)
            & (self._won_slot_col >= slot)
        )
        bids = self._bids
        pool = [
            (bid_sort_key(bids[index]), bids[index])
            for index in np.nonzero(mask)[0].tolist()
        ]
        heapq.heapify(pool)
        return pool

    def _resume(
        self,
        start_slot: int,
        arrivals_at_start: Sequence[Bid],
        last_slot: int,
        excluded: Optional[int],
    ) -> GreedyRun:
        start = max(1, start_slot)
        if start > last_slot:
            # The perturbation never takes effect inside the probed
            # window; the answer is the base run truncated to it.
            through = min(last_slot, self._num_slots) + 1
            allocation, win_slots = self._prefix_dicts(
                self._selection_prefix[through]
            )
            obs.counter(
                "payment.probe.slots_skipped", max(last_slot, 0)
            )
            return GreedyRun(
                allocation=allocation,
                win_slots=win_slots,
                slots=self._base_run.slots[
                    : self._outcome_prefix[through]
                ],
            )

        pool = self._pool_at(start)
        allocation, win_slots = self._prefix_dicts(
            self._selection_prefix[start]
        )
        slot_outcomes = list(
            self._base_run.slots[: self._outcome_prefix[start]]
        )
        arrivals: Dict[int, Sequence[Bid]] = dict(self._arrivals_by_slot)
        arrivals[start] = list(arrivals_at_start)

        with obs.span(
            "greedy.allocation.resume",
            bids=len(self._bids),
            start_slot=start,
            slots=last_slot,
            excluded=excluded,
        ) as tel:
            candidate_evals = _walk_slots(
                self._schedule,
                arrivals,
                pool,
                allocation,
                win_slots,
                slot_outcomes,
                start,
                last_slot,
                self._reserve_price,
            )
            tel.set_attribute("candidate_evals", candidate_evals)
            obs.counter("greedy.candidate_evals", candidate_evals)
        obs.counter("payment.probe.slots_skipped", start - 1)

        return GreedyRun(
            allocation=allocation,
            win_slots=win_slots,
            slots=tuple(slot_outcomes),
        )

    def run_excluding(
        self, phone_id: int, stop_after_slot: Optional[int] = None
    ) -> GreedyRun:
        """The allocation without ``phone_id`` — Algorithm 2's re-run.

        Equivalent to ``run_greedy_allocation(bids, schedule,
        exclude_phone=phone_id, stop_after_slot=...)`` on the prober's
        bids, but resumed from the excluded bid's arrival slot.
        """
        last = (
            self._num_slots
            if stop_after_slot is None
            else min(stop_after_slot, self._num_slots)
        )
        excluded_bid = self._bid_by_phone.get(phone_id)
        if excluded_bid is None:
            # Nothing to exclude: identical to the (truncated) base run.
            return self._resume(
                1, self._arrivals_by_slot.get(1, ()), last, phone_id
            )
        start = excluded_bid.arrival
        arrivals_at_start = [
            bid
            for bid in self._arrivals_by_slot.get(start, ())
            if bid.phone_id != phone_id
        ]
        return self._resume(start, arrivals_at_start, last, phone_id)

    def run_with_cost(
        self,
        winner: Bid,
        candidate_cost: float,
        stop_after_slot: Optional[int] = None,
    ) -> GreedyRun:
        """The allocation with ``winner``'s cost replaced — a value probe.

        Equivalent to a cold run on the bid list with ``winner``'s bid
        swapped for ``winner.with_cost(candidate_cost)``, resumed from
        the winner's arrival slot.
        """
        last = (
            self._num_slots
            if stop_after_slot is None
            else min(stop_after_slot, self._num_slots)
        )
        start = winner.arrival
        arrivals_at_start = [
            bid.with_cost(candidate_cost)
            if bid.phone_id == winner.phone_id
            else bid
            for bid in self._arrivals_by_slot.get(start, ())
        ]
        return self._resume(start, arrivals_at_start, last, None)

    def exact_thresholds(self, winner: Bid) -> List[float]:
        """Sorted candidate critical values for ``winner``'s binary search.

        The union of the *other* bids' claimed costs (plus the task
        values, when the reserve price is active), positive entries only
        — exactly what :func:`repro.mechanisms.critical_payment
        .exact_critical_payment` builds cold, but the shared sorted index
        is constructed once per prober and reused by every winner.
        """
        if self._thresholds is None:
            self._cost_counts = dict(
                collections.Counter(bid.cost for bid in self._bids)
            )
            self._task_values = frozenset(
                task.value for task in self._schedule
            ) if self._reserve_price else frozenset()
            union = set(self._cost_counts) | set(self._task_values)
            self._thresholds = [t for t in sorted(union) if t > 0.0]
        assert self._cost_counts is not None
        assert self._task_values is not None
        thresholds = self._thresholds
        # Drop the winner's own cost unless another bid (or a task
        # value) also sits on it — mirroring the cold set difference.
        if (
            winner.cost > 0.0
            and self._cost_counts.get(winner.cost, 0) == 1
            and winner.cost not in self._task_values
        ):
            # A unique positive bid cost is guaranteed present in the
            # sorted union, so the bisect lands exactly on it.
            index = bisect.bisect_left(thresholds, winner.cost)
            thresholds = thresholds[:index] + thresholds[index + 1:]
        return thresholds
