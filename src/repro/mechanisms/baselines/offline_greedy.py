"""Offline greedy allocation with VCG-style payments (ablation baseline).

Section V-A of the paper notes that "the VCG-style payment scheme is no
longer truthful when the allocation of sensing tasks is not optimal".
This baseline makes that statement testable: it allocates offline but
*greedily* (globally cheapest bid first, earliest feasible task) instead
of optimally, then applies the VCG payment formula on top of the
suboptimal welfare values.  The ablation bench and the truthfulness
auditor demonstrate profitable deviations against it, while the same
auditor finds none against :class:`~repro.mechanisms.OfflineVCGMechanism`.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Set, Tuple

from repro.mechanisms.base import Mechanism
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.round_config import RoundConfig
from repro.model.task import TaskSchedule


def _greedy_offline_allocation(
    bids: Sequence[Bid],
    schedule: TaskSchedule,
    exclude_phone: Optional[int] = None,
) -> Tuple[Dict[int, int], float]:
    """Globally cheapest-first offline allocation; returns claimed welfare.

    Bids are taken cheapest first (ties by arrival then id) and each is
    given the earliest still-unserved task inside its claimed window with
    positive claimed gain.
    """
    ordered = sorted(
        (bid for bid in bids if bid.phone_id != exclude_phone),
        key=lambda b: (b.cost, b.arrival, b.phone_id),
    )
    taken_tasks: Set[int] = set()
    allocation: Dict[int, int] = {}
    welfare = 0.0
    for bid in ordered:
        for task in schedule:
            if task.task_id in taken_tasks:
                continue
            if task.slot < bid.arrival:
                continue
            if task.slot > bid.departure:
                break  # tasks are slot-ordered; none later can fit
            if task.value - bid.cost <= 0.0:
                continue
            taken_tasks.add(task.task_id)
            allocation[task.task_id] = bid.phone_id
            welfare += task.value - bid.cost
            break
    return allocation, welfare


class OfflineGreedyMechanism(Mechanism):
    """Suboptimal offline allocation + (misapplied) VCG payments."""

    name = "offline-greedy-vcg"
    is_truthful = False  # VCG payments over a non-optimal allocation
    is_online = False

    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> AuctionOutcome:
        self._resolve_config(bids, schedule, config)

        allocation, welfare = _greedy_offline_allocation(bids, schedule)
        bid_by_phone = {bid.phone_id: bid for bid in bids}

        payments: Dict[int, float] = {}
        payment_slots: Dict[int, int] = {}
        # Sorted so payment-dict insertion order (and therefore the
        # outcome's serialised bytes) never depends on set hash order.
        for phone_id in sorted(set(allocation.values())):
            _, welfare_without = _greedy_offline_allocation(
                bids, schedule, exclude_phone=phone_id
            )
            bid = bid_by_phone[phone_id]
            # VCG formula applied to greedy welfare values: this is the
            # construction the paper warns against, kept deliberately.
            payments[phone_id] = max(
                bid.cost, welfare + bid.cost - welfare_without
            )
            payment_slots[phone_id] = bid.departure

        return AuctionOutcome(
            bids=bids,
            schedule=schedule,
            allocation=allocation,
            payments=payments,
            payment_slots=payment_slots,
        )
