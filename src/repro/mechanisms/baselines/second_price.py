"""Per-slot second-price payments — the untruthful strawman of Fig. 5.

Section V-C of the paper explains why the classic second-price idea fails
in the dynamic setting: allocate each slot greedily, pay each winner the
first *losing* claimed cost of the same slot.  Payments are settled
immediately in the winning slot.  A phone can then profit by delaying its
reported arrival into a slot whose second price is higher (Fig. 5:
Smartphone 1 is paid 4 when truthful but 8 after delaying its arrival by
two slots), so the rule is not time-truthful.  We implement it to
reproduce that counterexample and as a baseline in the benches.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Sequence, Tuple

from repro.mechanisms.base import Mechanism
from repro.mechanisms.greedy_core import bid_sort_key
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.round_config import RoundConfig
from repro.model.task import TaskSchedule


class SecondPriceSlotMechanism(Mechanism):
    """Greedy per-slot allocation + per-slot second-price payments.

    Winners of slot ``t`` are the ``r_t`` cheapest active unallocated
    bids (identical to Algorithm 1); every winner of the slot is paid the
    claimed cost of the cheapest *losing* bid still in the slot's pool.
    If the pool empties exactly (no losing bid remains), winners are paid
    their own claimed cost.
    """

    name = "second-price-slot"
    is_truthful = False  # the Fig. 5 counterexample
    is_online = True

    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> AuctionOutcome:
        self._resolve_config(bids, schedule, config)

        arrivals_by_slot: Dict[int, List[Bid]] = {}
        for bid in bids:
            arrivals_by_slot.setdefault(bid.arrival, []).append(bid)

        pool: List[Tuple[Tuple[float, int, int], Bid]] = []
        allocation: Dict[int, int] = {}
        payments: Dict[int, float] = {}
        payment_slots: Dict[int, int] = {}

        for slot in range(1, schedule.num_slots + 1):
            for bid in arrivals_by_slot.get(slot, ()):
                heapq.heappush(pool, (bid_sort_key(bid), bid))

            tasks = schedule.tasks_in_slot(slot)
            if not tasks:
                continue

            slot_winners: List[Bid] = []
            for task in tasks:
                chosen: Optional[Bid] = None
                while pool:
                    _, candidate = pool[0]
                    if candidate.departure < slot:
                        heapq.heappop(pool)
                        continue
                    chosen = heapq.heappop(pool)[1]
                    break
                if chosen is None:
                    continue
                allocation[task.task_id] = chosen.phone_id
                slot_winners.append(chosen)

            # The slot's "second price": cheapest bid left in the pool.
            second_price: Optional[float] = None
            while pool:
                _, candidate = pool[0]
                if candidate.departure < slot:
                    heapq.heappop(pool)
                    continue
                second_price = candidate.cost
                break

            for winner in slot_winners:
                payments[winner.phone_id] = (
                    second_price if second_price is not None else winner.cost
                )
                payment_slots[winner.phone_id] = slot  # settled immediately

        return AuctionOutcome(
            bids=bids,
            schedule=schedule,
            allocation=allocation,
            payments=payments,
            payment_slots=payment_slots,
        )
