"""Baseline mechanisms the paper's designs are compared against.

* :class:`~repro.mechanisms.baselines.second_price.SecondPriceSlotMechanism`
  — per-slot second-price payments; the paper's Fig. 5 counterexample
  shows it is *not* time-truthful.
* :class:`~repro.mechanisms.baselines.fixed_price.FixedPriceMechanism` —
  a posted price; truthful but welfare-blunt.
* :class:`~repro.mechanisms.baselines.random_alloc.RandomAllocationMechanism`
  — pay-as-bid random allocation; neither truthful nor efficient.
* :class:`~repro.mechanisms.baselines.fifo.FifoMechanism` — first-come
  first-served, pay-as-bid.
* :class:`~repro.mechanisms.baselines.offline_greedy.OfflineGreedyMechanism`
  — the offline allocation done greedily instead of optimally, with
  VCG-style payments on top; demonstrates why VCG payments require an
  optimal allocation (ablation).
"""

from repro.mechanisms.baselines.fifo import FifoMechanism
from repro.mechanisms.baselines.fixed_price import FixedPriceMechanism
from repro.mechanisms.baselines.offline_greedy import OfflineGreedyMechanism
from repro.mechanisms.baselines.random_alloc import RandomAllocationMechanism
from repro.mechanisms.baselines.second_price import SecondPriceSlotMechanism

__all__ = [
    "SecondPriceSlotMechanism",
    "FixedPriceMechanism",
    "RandomAllocationMechanism",
    "FifoMechanism",
    "OfflineGreedyMechanism",
]
