"""Random allocation, pay-as-bid baseline.

Each slot's tasks are assigned to uniformly random active, unallocated
phones, each paid its own claimed cost immediately.  Pay-as-bid is the
canonical *untruthful* payment rule (a phone's payment rises with its
claim, so inflating the claim is profitable whenever it keeps winning);
the baseline exists to anchor the welfare and truthfulness comparisons.

The mechanism takes an explicit seed so a run remains a deterministic
function of ``(inputs, seed)`` — required by the property auditors, which
re-run mechanisms against counterfactual bids.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.mechanisms.base import Mechanism
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.round_config import RoundConfig
from repro.model.task import TaskSchedule
from repro.utils.rng import spawn_rng


class RandomAllocationMechanism(Mechanism):
    """Uniform random per-slot allocation, pay-as-bid."""

    name = "random-alloc"
    is_truthful = False  # pay-as-bid
    is_online = True

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    @property
    def seed(self) -> int:
        """The seed that makes runs deterministic."""
        return self._seed

    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> AuctionOutcome:
        self._resolve_config(bids, schedule, config)
        rng = spawn_rng(self._seed, "random-alloc")

        arrivals_by_slot: Dict[int, List[Bid]] = {}
        for bid in bids:
            arrivals_by_slot.setdefault(bid.arrival, []).append(bid)

        active: Dict[int, Bid] = {}
        allocation: Dict[int, int] = {}
        payments: Dict[int, float] = {}
        payment_slots: Dict[int, int] = {}

        for slot in range(1, schedule.num_slots + 1):
            for bid in arrivals_by_slot.get(slot, ()):
                active[bid.phone_id] = bid
            departed = [
                pid for pid, bid in active.items() if bid.departure < slot
            ]
            for pid in departed:
                del active[pid]

            for task in schedule.tasks_in_slot(slot):
                if not active:
                    break
                candidates = sorted(active)  # sorted ids: stable draws
                pick = candidates[int(rng.integers(len(candidates)))]
                chosen = active.pop(pick)
                allocation[task.task_id] = chosen.phone_id
                payments[chosen.phone_id] = chosen.cost
                payment_slots[chosen.phone_id] = slot

        return AuctionOutcome(
            bids=bids,
            schedule=schedule,
            allocation=allocation,
            payments=payments,
            payment_slots=payment_slots,
        )
