"""First-come-first-served, pay-as-bid baseline.

Each slot's tasks go to the longest-waiting active, unallocated phones
(ties by phone id), each paid its own claimed cost immediately.  FCFS is
how many deployed crowdsourcing platforms naively dispatch work; the
benches show how much welfare it leaves on the table relative to
cost-aware allocation, and pay-as-bid makes it untruthful.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.mechanisms.base import Mechanism
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.round_config import RoundConfig
from repro.model.task import TaskSchedule


class FifoMechanism(Mechanism):
    """Earliest-arrival-first per-slot allocation, pay-as-bid."""

    name = "fifo"
    is_truthful = False  # pay-as-bid
    is_online = True

    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> AuctionOutcome:
        self._resolve_config(bids, schedule, config)

        arrivals_by_slot: Dict[int, List[Bid]] = {}
        for bid in bids:
            arrivals_by_slot.setdefault(bid.arrival, []).append(bid)

        active: Dict[int, Bid] = {}
        allocation: Dict[int, int] = {}
        payments: Dict[int, float] = {}
        payment_slots: Dict[int, int] = {}

        for slot in range(1, schedule.num_slots + 1):
            for bid in arrivals_by_slot.get(slot, ()):
                active[bid.phone_id] = bid
            for pid in [p for p, b in active.items() if b.departure < slot]:
                del active[pid]

            for task in schedule.tasks_in_slot(slot):
                if not active:
                    break
                chosen_id = min(
                    active, key=lambda pid: (active[pid].arrival, pid)
                )
                chosen = active.pop(chosen_id)
                allocation[task.task_id] = chosen.phone_id
                payments[chosen.phone_id] = chosen.cost
                payment_slots[chosen.phone_id] = slot

        return AuctionOutcome(
            bids=bids,
            schedule=schedule,
            allocation=allocation,
            payments=payments,
            payment_slots=payment_slots,
        )
