"""Posted fixed-price baseline.

The platform posts a price ``P``; in each slot, tasks go to active,
unallocated phones whose claimed cost is at most ``P``, and every winner
is paid exactly ``P`` immediately.

Rationing among eligible phones is **by arrival order** (ties by phone
id), not by claimed cost: under posted prices a bid must only matter
through the eligibility test ``b_i <= P``.  Cheapest-first rationing
would reward undercutting (claiming a lower cost raises the chance of
winning at the same price ``P``), silently breaking truthfulness in
rationed markets — exactly the kind of subtlety the paper's Fig. 5
dissects for second-price payments.  With arrival-order rationing the
mechanism is truthful: misreporting cost either leaves the outcome
unchanged or makes the phone win at a price below its real cost, and
window misreports only shrink its opportunities.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.mechanisms.base import Mechanism
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.round_config import RoundConfig
from repro.model.task import TaskSchedule
from repro.utils.validation import check_non_negative


class FixedPriceMechanism(Mechanism):
    """Serve tasks with eligible phones in arrival order, at a posted price.

    Parameters
    ----------
    price:
        The posted per-task price ``P >= 0``.
    """

    name = "fixed-price"
    is_truthful = True
    is_online = True

    def __init__(self, price: float) -> None:
        check_non_negative("price", price)
        self._price = float(price)

    @property
    def price(self) -> float:
        """The posted per-task price."""
        return self._price

    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> AuctionOutcome:
        self._resolve_config(bids, schedule, config)

        arrivals_by_slot: Dict[int, List[Bid]] = {}
        for bid in bids:
            arrivals_by_slot.setdefault(bid.arrival, []).append(bid)

        active: Dict[int, Bid] = {}
        allocation: Dict[int, int] = {}
        payments: Dict[int, float] = {}
        payment_slots: Dict[int, int] = {}

        for slot in range(1, schedule.num_slots + 1):
            for bid in arrivals_by_slot.get(slot, ()):
                active[bid.phone_id] = bid
            for pid in [p for p, b in active.items() if b.departure < slot]:
                del active[pid]

            for task in schedule.tasks_in_slot(slot):
                eligible = [
                    b for b in active.values() if b.cost <= self._price
                ]
                if not eligible:
                    continue
                chosen = min(
                    eligible, key=lambda b: (b.arrival, b.phone_id)
                )
                del active[chosen.phone_id]
                allocation[task.task_id] = chosen.phone_id
                payments[chosen.phone_id] = self._price
                payment_slots[chosen.phone_id] = slot

        return AuctionOutcome(
            bids=bids,
            schedule=schedule,
            allocation=allocation,
            payments=payments,
            payment_slots=payment_slots,
        )
