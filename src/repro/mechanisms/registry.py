"""Name-based mechanism registry.

Experiment configurations refer to mechanisms by name (strings serialise
cleanly into sweep configs and traces); this registry maps those names to
factories.  All built-in mechanisms register at import time; downstream
users can add their own with :func:`register_mechanism`.

Two guarantees beyond plain lookup:

* **Name coherence** — the first time a factory's product is
  constructed, its ``name`` attribute must match the key it was
  registered under; a mis-keyed registration raises
  :class:`~repro.errors.ExperimentError` naming both sides instead of
  silently serving a mechanism whose reports and audits carry the wrong
  identity.
* **Optional outcome sanitization** — with
  :func:`set_sanitize_outcomes` (or ``sanitize=True`` per call), every
  product is wrapped in
  :class:`repro.analysis.sanitizer.SanitizedMechanism`, so each ``run``
  is checked against the paper's feasibility / IR / welfare-accounting
  invariants.  The test suite switches this on globally.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.errors import ExperimentError
from repro.mechanisms.base import Mechanism

_FACTORIES: Dict[str, Callable[..., Mechanism]] = {}

#: Registration keys whose product has already passed name validation.
_NAME_CHECKED: set = set()

#: Process-wide default for wrapping products in the outcome sanitizer.
_SANITIZE_OUTCOMES = False


def register_mechanism(
    name: str, factory: Callable[..., Mechanism], replace: bool = False
) -> None:
    """Register ``factory`` under ``name``.

    Raises :class:`~repro.errors.ExperimentError` if the name is taken and
    ``replace`` is not set.  The factory's product is validated lazily at
    first construction (see :func:`create_mechanism`): it must be a
    :class:`Mechanism` whose ``name`` equals the registration key.
    """
    if not name or not isinstance(name, str):
        raise ExperimentError(f"mechanism name must be a non-empty str, got {name!r}")
    if name in _FACTORIES and not replace:
        raise ExperimentError(
            f"mechanism {name!r} already registered; pass replace=True to "
            f"override"
        )
    _FACTORIES[name] = factory
    # A replaced registration must be re-validated against the new factory.
    _NAME_CHECKED.discard(name)


def set_sanitize_outcomes(enabled: bool) -> None:
    """Toggle the process-wide outcome-sanitizer default.

    When enabled, every mechanism served by :func:`create_mechanism` is
    wrapped in :class:`repro.analysis.sanitizer.SanitizedMechanism`, so
    each run raises :class:`~repro.errors.SanitizationError` on an
    infeasible, IR-violating, or mis-accounted outcome.
    """
    global _SANITIZE_OUTCOMES
    _SANITIZE_OUTCOMES = bool(enabled)


def sanitize_outcomes_enabled() -> bool:
    """Whether :func:`create_mechanism` wraps products by default."""
    return _SANITIZE_OUTCOMES


def create_mechanism(
    name: str, sanitize: Optional[bool] = None, **kwargs
) -> Mechanism:
    """Instantiate a registered mechanism by name.

    Keyword arguments are forwarded to the factory (e.g.
    ``create_mechanism("fixed-price", price=20.0)``).  ``sanitize``
    overrides the process-wide default from :func:`set_sanitize_outcomes`
    for this one product.
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES)) or "<none>"
        raise ExperimentError(
            f"unknown mechanism {name!r}; registered: {known}"
        ) from None
    try:
        mechanism = factory(**kwargs)
    except TypeError as exc:
        raise ExperimentError(
            f"factory for {name!r} rejected arguments {sorted(kwargs)}: "
            f"{exc}"
        ) from exc
    if not isinstance(mechanism, Mechanism):
        raise ExperimentError(
            f"factory for {name!r} returned {type(mechanism).__name__}, "
            f"not a Mechanism"
        )
    if name not in _NAME_CHECKED:
        if mechanism.name != name:
            raise ExperimentError(
                f"mechanism registered under {name!r} reports name "
                f"{mechanism.name!r}; registration key and Mechanism.name "
                f"must match (mis-keyed registrations corrupt sweep "
                f"configs and audit reports)"
            )
        _NAME_CHECKED.add(name)  # repro: noqa-REP011 -- idempotent memo of a pure check; a per-process copy only re-runs the validation, it cannot diverge results
    wrap = _SANITIZE_OUTCOMES if sanitize is None else bool(sanitize)
    if wrap:
        # Imported here: analysis depends on mechanisms.base, so a
        # module-level import would be circular.
        from repro.analysis.sanitizer import SanitizedMechanism

        return SanitizedMechanism(mechanism)
    return mechanism


def available_mechanisms() -> Tuple[str, ...]:
    """Sorted names of all registered mechanisms."""
    return tuple(sorted(_FACTORIES))


def _register_builtins() -> None:
    """Register the built-in mechanisms (idempotent)."""
    # Imported here to avoid a circular import at package load.
    from repro.extensions.capabilities import (
        TypedOfflineVCGMechanism,
        TypedOnlineGreedyMechanism,
    )
    from repro.mechanisms.baselines.fifo import FifoMechanism
    from repro.mechanisms.baselines.fixed_price import FixedPriceMechanism
    from repro.mechanisms.baselines.offline_greedy import (
        OfflineGreedyMechanism,
    )
    from repro.mechanisms.baselines.random_alloc import (
        RandomAllocationMechanism,
    )
    from repro.mechanisms.baselines.second_price import (
        SecondPriceSlotMechanism,
    )
    from repro.mechanisms.offline_vcg import OfflineVCGMechanism
    from repro.mechanisms.online_greedy import OnlineGreedyMechanism

    builtin = {
        OfflineVCGMechanism.name: OfflineVCGMechanism,
        OnlineGreedyMechanism.name: OnlineGreedyMechanism,
        SecondPriceSlotMechanism.name: SecondPriceSlotMechanism,
        FixedPriceMechanism.name: FixedPriceMechanism,
        RandomAllocationMechanism.name: RandomAllocationMechanism,
        FifoMechanism.name: FifoMechanism,
        OfflineGreedyMechanism.name: OfflineGreedyMechanism,
        # Capability-typed extensions; their factories require a
        # ``model=CapabilityModel(...)`` keyword.
        TypedOfflineVCGMechanism.name: TypedOfflineVCGMechanism,
        TypedOnlineGreedyMechanism.name: TypedOnlineGreedyMechanism,
    }
    for name, factory in builtin.items():
        register_mechanism(name, factory, replace=True)


_register_builtins()
