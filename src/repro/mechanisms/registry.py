"""Name-based mechanism registry.

Experiment configurations refer to mechanisms by name (strings serialise
cleanly into sweep configs and traces); this registry maps those names to
factories.  All built-in mechanisms register at import time; downstream
users can add their own with :func:`register_mechanism`.
"""

from __future__ import annotations

from typing import Callable, Dict, Tuple

from repro.errors import ExperimentError
from repro.mechanisms.base import Mechanism

_FACTORIES: Dict[str, Callable[..., Mechanism]] = {}


def register_mechanism(
    name: str, factory: Callable[..., Mechanism], replace: bool = False
) -> None:
    """Register ``factory`` under ``name``.

    Raises :class:`~repro.errors.ExperimentError` if the name is taken and
    ``replace`` is not set.
    """
    if not name or not isinstance(name, str):
        raise ExperimentError(f"mechanism name must be a non-empty str, got {name!r}")
    if name in _FACTORIES and not replace:
        raise ExperimentError(
            f"mechanism {name!r} already registered; pass replace=True to "
            f"override"
        )
    _FACTORIES[name] = factory


def create_mechanism(name: str, **kwargs) -> Mechanism:
    """Instantiate a registered mechanism by name.

    Keyword arguments are forwarded to the factory (e.g.
    ``create_mechanism("fixed-price", price=20.0)``).
    """
    try:
        factory = _FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(_FACTORIES)) or "<none>"
        raise ExperimentError(
            f"unknown mechanism {name!r}; registered: {known}"
        ) from None
    mechanism = factory(**kwargs)
    if not isinstance(mechanism, Mechanism):
        raise ExperimentError(
            f"factory for {name!r} returned {type(mechanism).__name__}, "
            f"not a Mechanism"
        )
    return mechanism


def available_mechanisms() -> Tuple[str, ...]:
    """Sorted names of all registered mechanisms."""
    return tuple(sorted(_FACTORIES))


def _register_builtins() -> None:
    """Register the built-in mechanisms (idempotent)."""
    # Imported here to avoid a circular import at package load.
    from repro.mechanisms.baselines.fifo import FifoMechanism
    from repro.mechanisms.baselines.fixed_price import FixedPriceMechanism
    from repro.mechanisms.baselines.offline_greedy import (
        OfflineGreedyMechanism,
    )
    from repro.mechanisms.baselines.random_alloc import (
        RandomAllocationMechanism,
    )
    from repro.mechanisms.baselines.second_price import (
        SecondPriceSlotMechanism,
    )
    from repro.mechanisms.offline_vcg import OfflineVCGMechanism
    from repro.mechanisms.online_greedy import OnlineGreedyMechanism

    builtin = {
        OfflineVCGMechanism.name: OfflineVCGMechanism,
        OnlineGreedyMechanism.name: OnlineGreedyMechanism,
        SecondPriceSlotMechanism.name: SecondPriceSlotMechanism,
        FixedPriceMechanism.name: FixedPriceMechanism,
        RandomAllocationMechanism.name: RandomAllocationMechanism,
        FifoMechanism.name: FifoMechanism,
        OfflineGreedyMechanism.name: OfflineGreedyMechanism,
    }
    for name, factory in builtin.items():
        register_mechanism(name, factory, replace=True)


_register_builtins()
