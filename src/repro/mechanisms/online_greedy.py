"""The online near-optimal truthful mechanism (Section V of the paper).

Allocation is Algorithm 1 (per-slot greedy, cheapest active unallocated
bid first); payments are critical-value payments per Algorithm 2, settled
at each winner's reported departure slot.  The mechanism is monotone and
pays critical values, hence truthful (Theorem 4), individually rational
(Theorem 5), 1/2-competitive against the offline optimum (Theorem 6), and
runs in polynomial time (Theorem 7).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.errors import MechanismError
from repro.mechanisms.base import Mechanism
from repro.mechanisms.critical_payment import (
    algorithm2_payment,
    exact_critical_payment,
)
from repro.mechanisms.greedy_core import GreedyProber
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.round_config import RoundConfig
from repro.model.task import TaskSchedule

_PAYMENT_RULES = ("paper", "exact")


class OnlineGreedyMechanism(Mechanism):
    """Greedy allocation (Algorithm 1) + critical-value payments (Alg. 2).

    Parameters
    ----------
    reserve_price:
        When ``True``, bids claiming more than a task's value are never
        allocated that task.  The paper has no reserve (see
        :mod:`repro.mechanisms.greedy_core`); benches that compare welfare
        against the offline optimum enable it so that the online run never
        takes negative-welfare assignments the optimum would refuse.
    payment_rule:
        ``"paper"`` (default) uses Algorithm 2 verbatim; ``"exact"``
        computes the true critical value by binary search (see
        :mod:`repro.mechanisms.critical_payment` for when they differ).

    Although the mechanism is conceptually online, :meth:`run` consumes a
    complete round like every other mechanism — determinism plus the
    restriction that allocation in slot ``t`` only reads bids with
    ``arrival <= t`` makes this exactly equivalent to a slot-by-slot
    execution; :class:`repro.auction.platform.CrowdsourcingPlatform`
    provides the genuinely incremental driver.
    """

    name = "online-greedy"
    is_truthful = True
    is_online = True

    def __init__(
        self,
        reserve_price: bool = False,
        payment_rule: str = "paper",
    ) -> None:
        if payment_rule not in _PAYMENT_RULES:
            raise MechanismError(
                f"unknown payment_rule {payment_rule!r}; expected one of "
                f"{_PAYMENT_RULES}"
            )
        self._reserve_price = bool(reserve_price)
        self._payment_rule = payment_rule

    @property
    def reserve_price(self) -> bool:
        """Whether negative-welfare assignments are refused."""
        return self._reserve_price

    @property
    def payment_rule(self) -> str:
        """The active payment rule, ``"paper"`` or ``"exact"``."""
        return self._payment_rule

    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> AuctionOutcome:
        self._resolve_config(bids, schedule, config)

        # One prober serves the allocation *and* every payment pass: its
        # base run is the Algorithm-1 allocation, and payment re-runs
        # resume from each winner's arrival slot instead of slot 1.
        prober = GreedyProber(
            bids, schedule, reserve_price=self._reserve_price
        )
        greedy = prober.base_run

        bid_by_phone = prober.bid_by_phone
        payments: Dict[int, float] = {}
        payment_slots: Dict[int, int] = {}
        for phone_id, win_slot in greedy.win_slots.items():
            winner = bid_by_phone[phone_id]
            if self._payment_rule == "paper":
                payments[phone_id] = algorithm2_payment(
                    bids,
                    schedule,
                    winner,
                    win_slot,
                    reserve_price=self._reserve_price,
                    prober=prober,
                )
            else:
                payments[phone_id] = exact_critical_payment(
                    bids,
                    schedule,
                    winner,
                    reserve_price=self._reserve_price,
                    prober=prober,
                )
            # The paper: "each smartphone receives its payment in its
            # reported departure slot."
            payment_slots[phone_id] = winner.departure

        return AuctionOutcome(
            bids=bids,
            schedule=schedule,
            allocation=greedy.allocation,
            payments=payments,
            payment_slots=payment_slots,
        )
