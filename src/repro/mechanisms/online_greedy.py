"""The online near-optimal truthful mechanism (Section V of the paper).

Allocation is Algorithm 1 (per-slot greedy, cheapest active unallocated
bid first); payments are critical-value payments per Algorithm 2, settled
at each winner's reported departure slot.  The mechanism is monotone and
pays critical values, hence truthful (Theorem 4), individually rational
(Theorem 5), 1/2-competitive against the offline optimum (Theorem 6), and
runs in polynomial time (Theorem 7).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro import obs
from repro.errors import MechanismError
from repro.mechanisms.base import Mechanism
from repro.mechanisms.critical_payment import (
    algorithm2_payment,
    exact_critical_payment,
)
from repro.mechanisms.greedy_core import GreedyProber
from repro.mechanisms.streaming import StreamingGreedyEngine
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.round_config import RoundConfig
from repro.model.task import TaskSchedule

_PAYMENT_RULES = ("paper", "exact")
_ENGINES = ("batch", "streaming")


class OnlineGreedyMechanism(Mechanism):
    """Greedy allocation (Algorithm 1) + critical-value payments (Alg. 2).

    Parameters
    ----------
    reserve_price:
        When ``True``, bids claiming more than a task's value are never
        allocated that task.  The paper has no reserve (see
        :mod:`repro.mechanisms.greedy_core`); benches that compare welfare
        against the offline optimum enable it so that the online run never
        takes negative-welfare assignments the optimum would refuse.
    payment_rule:
        ``"paper"`` (default) uses Algorithm 2 verbatim; ``"exact"``
        computes the true critical value by binary search (see
        :mod:`repro.mechanisms.critical_payment` for when they differ).
    engine:
        ``"batch"`` (default) runs the snapshot-resume
        :class:`~repro.mechanisms.greedy_core.GreedyProber`;
        ``"streaming"`` runs the event-driven
        :class:`~repro.mechanisms.streaming.StreamingGreedyEngine`,
        which derives payments incrementally from per-slot records.
        Outcomes are bit-identical (verified byte-for-byte on pickled
        outcomes by the property suite); only the cost profile differs,
        with streaming built for city-scale rounds.

    Although the mechanism is conceptually online, :meth:`run` consumes a
    complete round like every other mechanism — determinism plus the
    restriction that allocation in slot ``t`` only reads bids with
    ``arrival <= t`` makes this exactly equivalent to a slot-by-slot
    execution; :class:`repro.auction.platform.CrowdsourcingPlatform`
    provides the genuinely incremental driver.
    """

    name = "online-greedy"
    is_truthful = True
    is_online = True

    def __init__(
        self,
        reserve_price: bool = False,
        payment_rule: str = "paper",
        engine: str = "batch",
    ) -> None:
        if payment_rule not in _PAYMENT_RULES:
            raise MechanismError(
                f"unknown payment_rule {payment_rule!r}; expected one of "
                f"{_PAYMENT_RULES}"
            )
        if engine not in _ENGINES:
            raise MechanismError(
                f"unknown engine {engine!r}; expected one of {_ENGINES}"
            )
        self._reserve_price = bool(reserve_price)
        self._payment_rule = payment_rule
        self._engine = engine

    @property
    def reserve_price(self) -> bool:
        """Whether negative-welfare assignments are refused."""
        return self._reserve_price

    @property
    def payment_rule(self) -> str:
        """The active payment rule, ``"paper"`` or ``"exact"``."""
        return self._payment_rule

    @property
    def engine(self) -> str:
        """The active allocation engine, ``"batch"`` or ``"streaming"``."""
        return self._engine

    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> AuctionOutcome:
        self._resolve_config(bids, schedule, config)
        if self._engine == "streaming":
            return self._run_streaming(bids, schedule)
        return self._run_batch(bids, schedule)

    def _run_batch(
        self, bids: Sequence[Bid], schedule: TaskSchedule
    ) -> AuctionOutcome:
        # One prober serves the allocation *and* every payment pass: its
        # base run is the Algorithm-1 allocation, and payment re-runs
        # resume from each winner's arrival slot instead of slot 1.
        prober = GreedyProber(
            bids, schedule, reserve_price=self._reserve_price
        )
        greedy = prober.base_run

        bid_by_phone = prober.bid_by_phone
        payments: Dict[int, float] = {}
        payment_slots: Dict[int, int] = {}
        for phone_id, win_slot in greedy.win_slots.items():
            winner = bid_by_phone[phone_id]
            if self._payment_rule == "paper":
                payments[phone_id] = algorithm2_payment(
                    bids,
                    schedule,
                    winner,
                    win_slot,
                    reserve_price=self._reserve_price,
                    prober=prober,
                )
            else:
                payments[phone_id] = exact_critical_payment(
                    bids,
                    schedule,
                    winner,
                    reserve_price=self._reserve_price,
                    prober=prober,
                )
            # The paper: "each smartphone receives its payment in its
            # reported departure slot."
            payment_slots[phone_id] = winner.departure

        return AuctionOutcome(
            bids=bids,
            schedule=schedule,
            allocation=greedy.allocation,
            payments=payments,
            payment_slots=payment_slots,
        )

    def _run_streaming(
        self, bids: Sequence[Bid], schedule: TaskSchedule
    ) -> AuctionOutcome:
        # One event-driven pass produces the allocation and the per-slot
        # records payments are read from; no re-runs unless the engine
        # declares its records inapplicable (reserve price over
        # heterogeneous task values), where the prober fallback keeps
        # outcomes bit-identical.
        engine = StreamingGreedyEngine(
            bids, schedule, reserve_price=self._reserve_price
        )
        greedy = engine.base_run
        if greedy.win_slots and not engine.supports_incremental_payments:
            obs.counter(
                "online.stream.payment_fallbacks", len(greedy.win_slots)
            )

        bid_by_phone = engine.bid_by_phone
        payments: Dict[int, float] = {}
        payment_slots: Dict[int, int] = {}
        for phone_id, win_slot in greedy.win_slots.items():
            winner = bid_by_phone[phone_id]
            if self._payment_rule == "paper":
                payments[phone_id] = algorithm2_payment(
                    bids,
                    schedule,
                    winner,
                    win_slot,
                    reserve_price=self._reserve_price,
                    engine=engine,
                )
            else:
                payments[phone_id] = exact_critical_payment(
                    bids,
                    schedule,
                    winner,
                    reserve_price=self._reserve_price,
                    engine=engine,
                )
            payment_slots[phone_id] = winner.departure
        # Reported once, after the payment loop: how much cascade
        # walking the whole round needed (zero is common — most
        # removals cascade nowhere).
        obs.counter("online.stream.cascade_steps", engine.cascade_steps)

        return AuctionOutcome(
            bids=bids,
            schedule=schedule,
            allocation=greedy.allocation,
            payments=payments,
            payment_slots=payment_slots,
        )
