"""Typed sensing tasks and phone capabilities (extension).

The base model lets any phone serve any task.  Real sensing tasks need
specific hardware — a noise map needs microphones, an air-quality map a
gas sensor, a coverage map a radio scan.  This module adds a
:class:`CapabilityModel` (task kinds + per-phone capability sets, both
**public, verifiable** information — the platform can check a phone's
hardware profile, so capabilities are not part of the strategic type)
and capability-aware versions of both mechanisms:

* :class:`TypedOfflineVCGMechanism` — the Fig. 3 graph restricted to
  compatible (task, phone) pairs; VCG payments unchanged.  Truthfulness
  and individual rationality carry over verbatim: the VCG argument never
  used the completeness of the compatibility graph.
* :class:`TypedOnlineGreedyMechanism` — per slot, each task takes the
  cheapest *capable* active unallocated bid; payments are exact critical
  values computed by the same monotone binary search as the base exact
  rule (winning remains monotone non-increasing in the claimed cost).
  Algorithm 2's shortcut ("max winning cost in the window") is *not*
  valid here — the critical player for a microphone task may be hidden
  behind winners of unrelated kinds — which is why the typed online
  mechanism always uses the search.

Both are audited by the same property tests as the base mechanisms.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MechanismError, ValidationError
from repro.matching.graph import TaskAssignmentGraph
from repro.mechanisms.base import Mechanism
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.round_config import RoundConfig
from repro.model.task import SensingTask, TaskSchedule

#: The kind assigned to tasks/phones not mentioned by a model.
GENERIC_KIND = "generic"


@dataclasses.dataclass(frozen=True)
class CapabilityModel:
    """Which phone can serve which task.

    Attributes
    ----------
    task_kinds:
        ``task_id -> kind``.  Tasks absent from the mapping are
        :data:`GENERIC_KIND`.
    phone_capabilities:
        ``phone_id -> frozenset of kinds``.  Phones absent from the
        mapping can serve only :data:`GENERIC_KIND`.  A phone serves a
        task iff the task's kind is in its capability set; every phone
        implicitly supports :data:`GENERIC_KIND`.
    """

    task_kinds: Mapping[int, str] = dataclasses.field(default_factory=dict)
    phone_capabilities: Mapping[int, FrozenSet[str]] = dataclasses.field(
        default_factory=dict
    )

    def kind_of(self, task: SensingTask) -> str:
        """The task's kind."""
        return self.task_kinds.get(task.task_id, GENERIC_KIND)

    def capabilities_of(self, phone_id: int) -> FrozenSet[str]:
        """The phone's capability set (always includes the generic kind)."""
        return self.phone_capabilities.get(
            phone_id, frozenset()
        ) | {GENERIC_KIND}

    def compatible(self, task: SensingTask, bid: Bid) -> bool:
        """Whether the bidding phone can serve the task (hardware-wise)."""
        return self.kind_of(task) in self.capabilities_of(bid.phone_id)

    def kinds(self) -> Tuple[str, ...]:
        """All kinds mentioned by the model, sorted."""
        mentioned = set(self.task_kinds.values())
        for capabilities in self.phone_capabilities.values():
            mentioned |= set(capabilities)
        mentioned.add(GENERIC_KIND)
        return tuple(sorted(mentioned))


def generate_capability_model(
    schedule: TaskSchedule,
    phone_ids: Sequence[int],
    kinds: Sequence[str],
    rng: np.random.Generator,
    capability_probability: float = 0.5,
) -> CapabilityModel:
    """A random capability model for experiments.

    Each task gets a uniformly random kind from ``kinds``; each phone
    gets each kind independently with ``capability_probability``.
    """
    if not kinds:
        raise ValidationError("kinds must not be empty")
    if not (0.0 <= capability_probability <= 1.0):
        raise ValidationError(
            f"capability_probability must be in [0, 1], got "
            f"{capability_probability}"
        )
    task_kinds = {
        task.task_id: kinds[int(rng.integers(len(kinds)))]
        for task in schedule
    }
    phone_capabilities = {
        phone_id: frozenset(
            kind
            for kind in kinds
            if rng.random() < capability_probability
        )
        for phone_id in phone_ids
    }
    return CapabilityModel(
        task_kinds=task_kinds, phone_capabilities=phone_capabilities
    )


# ----------------------------------------------------------------------
# Offline
# ----------------------------------------------------------------------
class TypedOfflineVCGMechanism(Mechanism):
    """Offline optimal + VCG on the capability-restricted graph."""

    name = "typed-offline-vcg"
    is_truthful = True
    is_online = False

    def __init__(
        self,
        model: CapabilityModel,
        backend: Optional[str] = None,
    ) -> None:
        self._model = model
        self._backend = backend

    @property
    def model(self) -> CapabilityModel:
        """The (public) capability model in force."""
        return self._model

    @property
    def backend(self) -> Optional[str]:
        """The matching-backend override in force (``None`` = default)."""
        return self._backend

    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> AuctionOutcome:
        self._resolve_config(bids, schedule, config)
        graph = TaskAssignmentGraph(
            schedule,
            bids,
            compatible=self._model.compatible,
            backend=self._backend,
        )
        allocation, optimal_welfare = graph.solve()

        bid_by_phone = {bid.phone_id: bid for bid in bids}
        payments: Dict[int, float] = {}
        payment_slots: Dict[int, int] = {}
        # Sorted so payment-dict insertion order (and therefore the
        # outcome's serialised bytes) never depends on set hash order.
        for phone_id in sorted(set(allocation.values())):
            welfare_without = graph.welfare_without_phone(phone_id)
            bid = bid_by_phone[phone_id]
            payments[phone_id] = optimal_welfare + bid.cost - welfare_without
            payment_slots[phone_id] = bid.departure

        return AuctionOutcome(
            bids=bids,
            schedule=schedule,
            allocation=allocation,
            payments=payments,
            payment_slots=payment_slots,
        )


# ----------------------------------------------------------------------
# Online
# ----------------------------------------------------------------------
def _typed_greedy_allocation(
    bids: Sequence[Bid],
    schedule: TaskSchedule,
    model: CapabilityModel,
    reserve_price: bool,
    exclude_phone: Optional[int] = None,
    stop_after_slot: Optional[int] = None,
) -> Tuple[Dict[int, int], Dict[int, int]]:
    """Algorithm 1 generalised: cheapest *capable* pooled bid per task.

    Returns ``(allocation task_id -> phone_id, win_slots phone_id -> slot)``.
    The pool is scanned per task; with per-slot task counts this is
    ``O(n)`` per task, fine for the experiment scale (per-kind heaps are
    the production optimisation and are not needed here).
    """
    last_slot = schedule.num_slots if stop_after_slot is None else min(
        stop_after_slot, schedule.num_slots
    )
    arrivals: Dict[int, List[Bid]] = {}
    for bid in bids:
        if exclude_phone is not None and bid.phone_id == exclude_phone:
            continue
        arrivals.setdefault(bid.arrival, []).append(bid)

    pool: Dict[int, Bid] = {}
    allocation: Dict[int, int] = {}
    win_slots: Dict[int, int] = {}
    for slot in range(1, last_slot + 1):
        for bid in arrivals.get(slot, ()):
            pool[bid.phone_id] = bid
        for phone_id in [p for p, b in pool.items() if b.departure < slot]:
            del pool[phone_id]

        for task in schedule.tasks_in_slot(slot):
            candidates = [
                bid
                for bid in pool.values()
                if model.compatible(task, bid)
                and not (reserve_price and bid.cost > task.value)
            ]
            if not candidates:
                continue
            chosen = min(
                candidates, key=lambda b: (b.cost, b.arrival, b.phone_id)
            )
            del pool[chosen.phone_id]
            allocation[task.task_id] = chosen.phone_id
            win_slots[chosen.phone_id] = slot
    return allocation, win_slots


class TypedOnlineGreedyMechanism(Mechanism):
    """Capability-aware greedy allocation + exact critical payments."""

    name = "typed-online-greedy"
    is_truthful = True
    is_online = True

    def __init__(
        self, model: CapabilityModel, reserve_price: bool = True
    ) -> None:
        self._model = model
        self._reserve_price = bool(reserve_price)

    @property
    def model(self) -> CapabilityModel:
        """The (public) capability model in force."""
        return self._model

    @property
    def reserve_price(self) -> bool:
        """Whether bids above a task's value are refused (default on —
        required for the exact critical value to stay bounded for
        uncontested winners)."""
        return self._reserve_price

    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> AuctionOutcome:
        self._resolve_config(bids, schedule, config)
        allocation, win_slots = _typed_greedy_allocation(
            bids, schedule, self._model, self._reserve_price
        )
        bid_by_phone = {bid.phone_id: bid for bid in bids}
        payments: Dict[int, float] = {}
        payment_slots: Dict[int, int] = {}
        for phone_id in win_slots:
            winner = bid_by_phone[phone_id]
            payments[phone_id] = self._critical_payment(
                bids, schedule, winner
            )
            payment_slots[phone_id] = winner.departure
        return AuctionOutcome(
            bids=bids,
            schedule=schedule,
            allocation=allocation,
            payments=payments,
            payment_slots=payment_slots,
        )

    # ------------------------------------------------------------------
    def _wins_with_cost(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        winner: Bid,
        candidate_cost: float,
    ) -> bool:
        replaced = [
            b.with_cost(candidate_cost) if b.phone_id == winner.phone_id else b
            for b in bids
        ]
        _, win_slots = _typed_greedy_allocation(
            replaced,
            schedule,
            self._model,
            self._reserve_price,
            stop_after_slot=winner.departure,
        )
        return winner.phone_id in win_slots

    def _critical_payment(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        winner: Bid,
    ) -> float:
        """The exact critical value by monotone binary search.

        Thresholds: every other bid's cost plus (with the reserve) every
        task value; winning is a step function of the claimed cost that
        can only change at those points.
        """
        thresholds = sorted(
            {
                b.cost
                for b in bids
                if b.phone_id != winner.phone_id and b.cost > 0.0
            }
            | (
                {task.value for task in schedule}
                if self._reserve_price
                else set()
            )
        )
        if not thresholds:
            return winner.cost

        if self._wins_with_cost(
            bids, schedule, winner, thresholds[-1] + 1.0
        ):
            if self._reserve_price:
                return max(thresholds[-1], winner.cost)
            # Unbounded critical value (documented Algorithm-2 gap in the
            # base mechanism); fall back to the winner's claimed cost.
            return winner.cost

        def representative(region: int) -> float:
            upper = thresholds[region]
            lower = 0.0 if region == 0 else thresholds[region - 1]
            return (lower + upper) / 2.0

        low, high = 0, len(thresholds) - 1
        best: Optional[int] = None
        while low <= high:
            mid = (low + high) // 2
            if self._wins_with_cost(
                bids, schedule, winner, representative(mid)
            ):
                best = mid
                low = mid + 1
            else:
                high = mid - 1
        if best is None:
            return winner.cost
        return max(thresholds[best], winner.cost)


def check_typed_outcome(
    outcome: AuctionOutcome, model: CapabilityModel
) -> None:
    """Assert every allocation respects the capability model.

    Raises :class:`~repro.errors.MechanismError` on a violation; used by
    tests as a one-line oracle.
    """
    for task_id, phone_id in outcome.allocation.items():
        task = outcome.schedule.task(task_id)
        bid = outcome.bid_of(phone_id)
        if not model.compatible(task, bid):
            raise MechanismError(
                f"task {task.label} (kind {model.kind_of(task)}) "
                f"allocated to phone {phone_id} with capabilities "
                f"{sorted(model.capabilities_of(phone_id))}"
            )
