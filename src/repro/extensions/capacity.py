"""Capacitated supply: phones that can serve several tasks (extension).

The base model caps every phone at one task per round (constraint (5)
of the paper).  Real devices can often take a handful of tasks during a
long idle window.  This module implements the *offline* mechanism for
per-phone capacities via the classic unit-expansion reduction:

* each bid with capacity ``k`` becomes ``k`` identical unit columns of
  the assignment matrix (same window, same cost);
* the maximum-weight matching over the expanded graph is the optimal
  capacitated allocation (costs are additive per task, so a phone's
  supply curve is flat up to its capacity);
* **payments are whole-phone VCG**: winner ``i`` serving ``u_i`` tasks
  is paid ``p_i = ω*(B) + u_i · b_i − ω*(B₋ᵢ)`` where ``B₋ᵢ`` removes
  *all* of ``i``'s units at once.  Removing units one at a time and
  paying per-unit critical values is **not** truthful in general (a
  multi-unit supplier can profit by shading one unit to move another
  unit's price), which is why no capacitated *online* mechanism is
  provided — designing a truthful one is genuinely open and out of the
  paper's scope.  DESIGN.md §7 records this boundary.

Truthfulness of the whole-phone VCG follows the standard argument: a
phone's utility equals ``ω*(B) − ω*(B₋ᵢ)`` plus terms independent of
its report, maximised by reporting truthfully.  The property tests fuzz
this (unilateral cost misreports across capacities).

Because a capacitated allocation violates the base model's
one-task-per-phone invariant, results are returned as a dedicated
:class:`CapacitatedOutcome` rather than an
:class:`~repro.model.AuctionOutcome`.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import MechanismError, ValidationError
from repro.matching.solver import AssignmentSolver
from repro.model.bid import Bid
from repro.model.round_config import RoundConfig
from repro.model.task import TaskSchedule


@dataclasses.dataclass(frozen=True)
class CapacitatedOutcome:
    """Allocation and payments of one capacitated offline round.

    Attributes
    ----------
    allocation:
        ``task_id -> phone_id``; a phone may appear multiple times, up
        to its capacity.
    payments:
        ``phone_id -> payment`` (covers all of the phone's tasks).
    claimed_welfare:
        ``Σ (ν − b_i)`` over served tasks, on claimed costs.
    """

    allocation: Dict[int, int]
    payments: Dict[int, float]
    claimed_welfare: float

    def units_of(self, phone_id: int) -> int:
        """How many tasks ``phone_id`` serves."""
        return sum(1 for p in self.allocation.values() if p == phone_id)

    @property
    def winners(self) -> Tuple[int, ...]:
        """Phones serving at least one task, sorted."""
        return tuple(sorted(set(self.allocation.values())))

    @property
    def total_payment(self) -> float:
        """Sum of all payments."""
        return sum(self.payments.values())


class CapacitatedOfflineVCGMechanism:
    """Offline optimal allocation + whole-phone VCG with capacities.

    Parameters
    ----------
    capacities:
        ``phone_id -> capacity``; phones absent from the mapping have
        capacity 1 (the paper's base model).
    """

    name = "capacitated-offline-vcg"
    is_truthful = True
    is_online = False

    def __init__(
        self, capacities: Optional[Mapping[int, int]] = None
    ) -> None:
        self._capacities: Dict[int, int] = {}
        for phone_id, capacity in (capacities or {}).items():
            if not isinstance(capacity, int) or isinstance(capacity, bool):
                raise ValidationError(
                    f"capacity of phone {phone_id} must be an int, got "
                    f"{type(capacity).__name__}"
                )
            if capacity < 1:
                raise ValidationError(
                    f"capacity of phone {phone_id} must be >= 1, got "
                    f"{capacity}"
                )
            self._capacities[phone_id] = capacity

    def capacity_of(self, phone_id: int) -> int:
        """The phone's capacity (1 when unspecified)."""
        return self._capacities.get(phone_id, 1)

    # ------------------------------------------------------------------
    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> CapacitatedOutcome:
        """Run one capacitated offline round."""
        effective = config or RoundConfig.for_schedule(schedule)
        effective.validate_schedule(schedule)
        effective.validate_bids(bids)

        tasks = schedule.tasks
        if not tasks or not bids:
            return CapacitatedOutcome(
                allocation={}, payments={}, claimed_welfare=0.0
            )

        # Unit expansion: column j belongs to unit_owner[j].
        unit_owner: List[int] = []
        unit_bids: List[Bid] = []
        for bid in sorted(bids, key=lambda b: b.phone_id):
            for _ in range(self.capacity_of(bid.phone_id)):
                unit_owner.append(bid.phone_id)
                unit_bids.append(bid)

        weights = np.zeros((len(tasks), len(unit_bids)))
        for row, task in enumerate(tasks):
            for col, bid in enumerate(unit_bids):
                if bid.is_active(task.slot):
                    weights[row, col] = task.value - bid.cost
        clamped = np.maximum(weights, 0.0)
        max_entry = float(clamped.max()) if clamped.size else 0.0
        num_rows, num_cols = clamped.shape
        cost = np.full((num_rows, num_cols + num_rows), max_entry)
        cost[:, :num_cols] = max_entry - clamped
        solver = AssignmentSolver(cost)
        row_to_col, _ = solver.solve()

        allocation: Dict[int, int] = {}
        welfare = 0.0
        units_won: Dict[int, int] = {}
        for row, col in enumerate(row_to_col):
            col = int(col)
            if col < 0 or col >= num_cols or weights[row, col] <= 0.0:
                continue
            phone_id = unit_owner[col]
            allocation[tasks[row].task_id] = phone_id
            units_won[phone_id] = units_won.get(phone_id, 0) + 1
            welfare += float(weights[row, col])

        bid_by_phone = {bid.phone_id: bid for bid in bids}
        payments: Dict[int, float] = {}
        for phone_id, units in units_won.items():
            welfare_without = self._welfare_without_phone(
                weights, unit_owner, phone_id
            )
            payments[phone_id] = (
                welfare
                + units * bid_by_phone[phone_id].cost
                - welfare_without
            )
        return CapacitatedOutcome(
            allocation=allocation,
            payments=payments,
            claimed_welfare=welfare,
        )

    @staticmethod
    def _welfare_without_phone(
        weights: np.ndarray,
        unit_owner: List[int],
        phone_id: int,
    ) -> float:
        """``ω*(B₋ᵢ)``: drop *all* of the phone's unit columns, re-solve."""
        keep = [
            col
            for col, owner in enumerate(unit_owner)
            if owner != phone_id
        ]
        if not keep or weights.size == 0:
            return 0.0
        reduced = weights[:, keep]
        clamped = np.maximum(reduced, 0.0)
        max_entry = float(clamped.max()) if clamped.size else 0.0
        num_rows, num_cols = clamped.shape
        cost = np.full((num_rows, num_cols + num_rows), max_entry)
        cost[:, :num_cols] = max_entry - clamped
        row_to_col, _ = AssignmentSolver(cost).solve()
        welfare = 0.0
        for row, col in enumerate(row_to_col):
            col = int(col)
            if 0 <= col < num_cols and reduced[row, col] > 0.0:
                welfare += float(reduced[row, col])
        return welfare


def check_capacitated_outcome(
    outcome: CapacitatedOutcome,
    mechanism: CapacitatedOfflineVCGMechanism,
) -> None:
    """Assert no phone serves more tasks than its capacity.

    Raises :class:`~repro.errors.MechanismError` on a violation.
    """
    for phone_id in outcome.winners:
        units = outcome.units_of(phone_id)
        capacity = mechanism.capacity_of(phone_id)
        if units > capacity:
            raise MechanismError(
                f"phone {phone_id} serves {units} tasks, capacity "
                f"{capacity}"
            )
