"""Extensions beyond the paper's base model.

The paper assumes "a task can be processed by any smartphone in the
system, i.e., each smartphone can provide all kinds of sensing services"
(Section III-A).  This package relaxes stated assumptions while keeping
the mechanisms' guarantees:

* :mod:`repro.extensions.capabilities` — typed sensing tasks and phone
  capability sets (e.g. a noise sample needs a microphone, an air-quality
  reading a gas sensor); both mechanisms generalised to the restricted
  compatibility graph.
* :mod:`repro.extensions.capacity` — phones serving several tasks per
  round (unit-expansion matching + whole-phone VCG; offline only — see
  that module's docstring for why a truthful capacitated *online*
  mechanism is out of scope).
"""

from repro.extensions.capabilities import (
    CapabilityModel,
    TypedOfflineVCGMechanism,
    TypedOnlineGreedyMechanism,
    generate_capability_model,
)
from repro.extensions.capacity import (
    CapacitatedOfflineVCGMechanism,
    CapacitatedOutcome,
)

__all__ = [
    "CapabilityModel",
    "TypedOfflineVCGMechanism",
    "TypedOnlineGreedyMechanism",
    "generate_capability_model",
    "CapacitatedOfflineVCGMechanism",
    "CapacitatedOutcome",
]
