"""Epsilon-aware float comparison helpers.

Costs, payments, and welfare values are floats that accumulate rounding
error through matching solvers and VCG subtractions; comparing them with
``==`` makes correctness depend on the order of floating-point
operations.  The custom lint rule ``no-float-equality`` (see
:mod:`repro.analysis.rules.float_equality`) bans direct ``==``/``!=`` on
money-named operands across the repository and points offenders here.

The default tolerance matches the auditors in
:mod:`repro.metrics.properties`: tight enough that a real profitable
deviation (always a discrete cost step in the paper's model) is never
masked, loose enough to absorb solver round-off.
"""

from __future__ import annotations

import math

#: Default absolute tolerance for money comparisons (costs, payments,
#: welfare).  Chosen to sit far below the smallest meaningful cost step
#: in the paper's workloads (integer-ish costs around 1..100) while
#: comfortably above accumulated double round-off.
DEFAULT_TOLERANCE = 1e-9


def float_eq(a: float, b: float, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Whether ``a`` and ``b`` are equal up to ``tolerance``.

    Uses a combined relative/absolute test so it behaves sensibly both
    near zero and for large welfare totals.
    """
    return math.isclose(a, b, rel_tol=tolerance, abs_tol=tolerance)


def float_ne(a: float, b: float, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Whether ``a`` and ``b`` differ by more than ``tolerance``."""
    return not float_eq(a, b, tolerance)


def float_le(a: float, b: float, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Whether ``a <= b`` up to ``tolerance`` (``a`` may exceed by eps)."""
    return a <= b + tolerance or float_eq(a, b, tolerance)


def float_ge(a: float, b: float, tolerance: float = DEFAULT_TOLERANCE) -> bool:
    """Whether ``a >= b`` up to ``tolerance`` (``a`` may trail by eps)."""
    return a + tolerance >= b or float_eq(a, b, tolerance)
