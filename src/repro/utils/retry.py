"""Deterministic retry policies for transient failures.

The experiment harness has grown several hand-rolled
``backoff * 2 ** attempt`` loops (the serial sweep runner, the
process-pool repetition worker); the durability layer adds more
consumers (journal appends, checkpoint I/O).  This module centralises
the arithmetic in one frozen, picklable :class:`RetryPolicy` and one
driver, :func:`call_with_retry`, so every layer retries with the same
deterministic schedule.

Determinism matters here the same way it does for RNG: the delay for
attempt ``k`` is a pure function of the policy, never of jitter or the
wall clock, so a replayed run waits the same simulated time.  The one
clock read — the deadline check for :attr:`RetryPolicy.timeout` — goes
through :func:`repro.obs.clock.perf_seconds`, the process-wide
injectable clock, which keeps this module inside the flow analyzer's
REP015 sanction (see ``CLOCK_EXEMPT_MODULES`` in
:mod:`repro.analysis.flow.rules`).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Optional, Tuple, Type, TypeVar

from repro.errors import ValidationError
from repro.obs.clock import perf_seconds

T = TypeVar("T")


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """A deterministic exponential-backoff schedule.

    Attributes
    ----------
    retries:
        Extra attempts after the first (``0`` means try exactly once).
    backoff:
        Base delay in seconds; attempt ``k`` (0-based) waits
        ``backoff * multiplier ** k`` before the *next* attempt.  Zero
        disables waiting, matching the sweep runner's historical
        ``backoff=0.0`` default.
    multiplier:
        Exponential growth factor (``2.0`` reproduces the harness's
        ``backoff * 2 ** attempt`` loops exactly).
    max_delay:
        Optional cap on any single delay.
    timeout:
        Optional overall deadline in seconds, measured on
        :func:`~repro.obs.clock.perf_seconds` from the first attempt;
        once exceeded, no further attempts are made and the last
        exception propagates.
    """

    retries: int = 0
    backoff: float = 0.0
    multiplier: float = 2.0
    max_delay: Optional[float] = None
    timeout: Optional[float] = None

    def __post_init__(self) -> None:
        if self.retries < 0:
            raise ValidationError(
                f"retries must be >= 0, got {self.retries}"
            )
        if self.backoff < 0:
            raise ValidationError(
                f"backoff must be >= 0, got {self.backoff}"
            )
        if self.multiplier <= 0:
            raise ValidationError(
                f"multiplier must be > 0, got {self.multiplier}"
            )
        if self.max_delay is not None and self.max_delay < 0:
            raise ValidationError(
                f"max_delay must be >= 0, got {self.max_delay}"
            )
        if self.timeout is not None and self.timeout <= 0:
            raise ValidationError(
                f"timeout must be > 0, got {self.timeout}"
            )

    def delay_for(self, attempt: int) -> float:
        """Seconds to wait after failed attempt ``attempt`` (0-based)."""
        if attempt < 0:
            raise ValidationError(f"attempt must be >= 0, got {attempt}")
        delay = self.backoff * (self.multiplier ** attempt)
        if self.max_delay is not None:
            delay = min(delay, self.max_delay)
        return delay

    def delays(self) -> Tuple[float, ...]:
        """Every scheduled delay, in order (one per retry)."""
        return tuple(self.delay_for(k) for k in range(self.retries))


def call_with_retry(
    fn: Callable[[], T],
    policy: RetryPolicy,
    retry_on: Tuple[Type[BaseException], ...] = (Exception,),
    sleep: Optional[Callable[[float], None]] = None,
) -> T:
    """Run ``fn`` under ``policy``, retrying the listed exceptions.

    Parameters
    ----------
    fn:
        Zero-argument callable; its return value is passed through.
    policy:
        The schedule.  ``policy.retries == 0`` degenerates to a single
        plain call.
    retry_on:
        Exception classes that trigger a retry; anything else
        propagates immediately.
    sleep:
        Injection point for the waits (tests pass a recording stub;
        default :func:`time.sleep`).

    The final failure always propagates as the original exception — the
    policy never swallows or rewraps errors.
    """
    wait = time.sleep if sleep is None else sleep
    deadline: Optional[float] = None
    if policy.timeout is not None:
        deadline = perf_seconds() + policy.timeout
    for attempt in range(policy.retries + 1):
        try:
            return fn()
        except retry_on:
            out_of_attempts = attempt >= policy.retries
            out_of_time = (
                deadline is not None and perf_seconds() >= deadline
            )
            if out_of_attempts or out_of_time:
                raise
            delay = policy.delay_for(attempt)
            if delay > 0:
                wait(delay)
    raise AssertionError("unreachable")  # pragma: no cover
