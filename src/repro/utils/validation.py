"""Small argument-validation helpers used across the package.

Each helper raises :class:`repro.errors.ValidationError` with a message that
names the offending argument, so constructors can validate several fields
with one readable line per field.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple, Type, Union

from repro.errors import ValidationError

Number = Union[int, float]


def check_type(name: str, value: Any, expected: Union[Type, Tuple[Type, ...]]) -> Any:
    """Ensure ``value`` is an instance of ``expected``; return it unchanged.

    ``bool`` is rejected where a numeric type is expected, because ``bool``
    is a subclass of ``int`` in Python and silently accepting ``True`` as
    ``1`` hides caller bugs.
    """
    expected_tuple = expected if isinstance(expected, tuple) else (expected,)
    numeric_expected = any(t in (int, float) for t in expected_tuple)
    if numeric_expected and isinstance(value, bool):
        raise ValidationError(
            f"{name} must be a number, got bool {value!r}"
        )
    if not isinstance(value, expected_tuple):
        names = ", ".join(t.__name__ for t in expected_tuple)
        raise ValidationError(
            f"{name} must be of type {names}, got {type(value).__name__}"
        )
    return value


def check_finite(name: str, value: Number) -> Number:
    """Ensure ``value`` is a finite number (no NaN or infinity)."""
    check_type(name, value, (int, float))
    if not math.isfinite(value):
        raise ValidationError(f"{name} must be finite, got {value!r}")
    return value


def check_non_negative(name: str, value: Number) -> Number:
    """Ensure ``value`` is a finite number ``>= 0``."""
    check_finite(name, value)
    if value < 0:
        raise ValidationError(f"{name} must be >= 0, got {value!r}")
    return value


def check_positive(name: str, value: Number) -> Number:
    """Ensure ``value`` is a finite number ``> 0``."""
    check_finite(name, value)
    if value <= 0:
        raise ValidationError(f"{name} must be > 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: Number,
    low: Optional[Number] = None,
    high: Optional[Number] = None,
) -> Number:
    """Ensure ``low <= value <= high`` (bounds optional)."""
    check_finite(name, value)
    if low is not None and value < low:
        raise ValidationError(f"{name} must be >= {low}, got {value!r}")
    if high is not None and value > high:
        raise ValidationError(f"{name} must be <= {high}, got {value!r}")
    return value
