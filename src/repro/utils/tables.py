"""Plain-text table formatting for reports, examples, and benchmarks.

The experiment harness prints the paper's tables and figure series as
monospace text; this module owns the column alignment logic so every
report looks the same.
"""

from __future__ import annotations

from typing import Any, Iterable, List, Optional, Sequence

from repro.errors import ValidationError


def _render_cell(value: Any, float_fmt: str) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return format(value, float_fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    float_fmt: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned monospace table.

    Floats are formatted with ``float_fmt``; booleans render as yes/no.
    Numeric-looking columns are right-aligned, text columns left-aligned.

    Raises :class:`~repro.errors.ValidationError` if any row's length does
    not match the header count.
    """
    header_list = [str(h) for h in headers]
    if not header_list:
        raise ValidationError("headers must not be empty")

    rendered: List[List[str]] = []
    numeric = [True] * len(header_list)
    for row in rows:
        cells = list(row)
        if len(cells) != len(header_list):
            raise ValidationError(
                f"row has {len(cells)} cells, expected {len(header_list)}: "
                f"{cells!r}"
            )
        rendered.append([_render_cell(c, float_fmt) for c in cells])
        for idx, cell in enumerate(cells):
            if not isinstance(cell, (int, float)) or isinstance(cell, bool):
                numeric[idx] = False

    widths = [len(h) for h in header_list]
    for cells in rendered:
        for idx, cell in enumerate(cells):
            widths[idx] = max(widths[idx], len(cell))

    def _line(cells: Sequence[str]) -> str:
        parts = []
        for idx, cell in enumerate(cells):
            if numeric[idx]:
                parts.append(cell.rjust(widths[idx]))
            else:
                parts.append(cell.ljust(widths[idx]))
        return "  ".join(parts).rstrip()

    separator = "  ".join("-" * w for w in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(_line(header_list))
    lines.append(separator)
    lines.extend(_line(cells) for cells in rendered)
    return "\n".join(lines)
