"""Seeded random-number streams for reproducible simulation.

A simulation draws randomness for several independent purposes (smartphone
arrivals, task arrivals, costs, strategic perturbations).  If they shared a
single generator, changing how many draws one component makes would silently
change every other component's sequence, which makes experiments impossible
to compare across code revisions.  :class:`RngStreams` hands out an
independent, deterministically derived :class:`numpy.random.Generator` per
named component instead.

Derivation uses :class:`numpy.random.SeedSequence` spawning keyed by a
stable hash of the stream name, so the stream for ``"task-arrivals"`` is the
same no matter how many other streams were requested first.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional

import numpy as np

from repro.errors import ValidationError


def _stable_key(name: str) -> int:
    """Map a stream name to a stable 64-bit integer key.

    Python's builtin ``hash`` is salted per process, so it cannot be used
    for reproducibility; we use BLAKE2 instead.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def spawn_rng(seed: int, name: str = "default") -> np.random.Generator:
    """Return a generator derived from ``seed`` and the stream ``name``.

    Two calls with the same ``(seed, name)`` pair always return generators
    that produce identical sequences; different names give statistically
    independent streams.
    """
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ValidationError(f"seed must be an int, got {type(seed).__name__}")
    sequence = np.random.SeedSequence(entropy=seed, spawn_key=(_stable_key(name),))
    return np.random.default_rng(sequence)


class RngStreams:
    """A factory of named, independent random streams from one master seed.

    Example
    -------
    >>> streams = RngStreams(seed=7)
    >>> a = streams.get("phone-arrivals")
    >>> b = streams.get("task-arrivals")
    >>> a is streams.get("phone-arrivals")   # cached per name
    True
    """

    def __init__(self, seed: int) -> None:
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValidationError(
                f"seed must be an int, got {type(seed).__name__}"
            )
        self._seed = seed
        self._streams: Dict[str, np.random.Generator] = {}

    @property
    def seed(self) -> int:
        """The master seed this factory derives every stream from."""
        return self._seed

    def get(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for stream ``name``."""
        if name not in self._streams:
            self._streams[name] = spawn_rng(self._seed, name)
        return self._streams[name]

    def fresh(self, name: str) -> np.random.Generator:
        """Return a brand-new generator for ``name``, resetting its cache.

        Useful when a test wants to replay a component's stream from the
        beginning without rebuilding the whole factory.
        """
        self._streams[name] = spawn_rng(self._seed, name)
        return self._streams[name]

    def child(self, offset: int, name: Optional[str] = None) -> "RngStreams":
        """Derive a child factory, e.g. one per repetition of an experiment.

        The child's master seed mixes this factory's seed with ``offset``
        (and optionally a name), so repetitions are independent but
        reproducible.
        """
        if not isinstance(offset, int) or isinstance(offset, bool):
            raise ValidationError(
                f"offset must be an int, got {type(offset).__name__}"
            )
        mix = _stable_key(f"child:{name or ''}:{offset}")
        return RngStreams(seed=(self._seed ^ mix) & 0x7FFFFFFFFFFFFFFF)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RngStreams(seed={self._seed}, streams={sorted(self._streams)})"
