"""Shared low-level utilities: seeded RNG streams, validation, tables."""

from repro.utils.numeric import (
    DEFAULT_TOLERANCE,
    float_eq,
    float_ge,
    float_le,
    float_ne,
)
from repro.utils.retry import RetryPolicy, call_with_retry
from repro.utils.rng import RngStreams, spawn_rng
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_finite,
    check_in_range,
    check_non_negative,
    check_positive,
    check_type,
)

__all__ = [
    "DEFAULT_TOLERANCE",
    "float_eq",
    "float_ge",
    "float_le",
    "float_ne",
    "RetryPolicy",
    "call_with_retry",
    "RngStreams",
    "spawn_rng",
    "format_table",
    "check_finite",
    "check_in_range",
    "check_non_negative",
    "check_positive",
    "check_type",
]
