"""Render lint findings for humans (text) and tooling (JSON)."""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.rules.base import LintViolation


def render_text(violations: Sequence[LintViolation]) -> str:
    """One ``path:line:col: CODE [rule] message`` line each, plus a tally."""
    if not violations:
        return "lint: clean (0 violations)"
    lines = [violation.format() for violation in violations]
    by_rule: Dict[str, int] = {}
    for violation in violations:
        by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
    tally = ", ".join(
        f"{rule}={count}" for rule, count in sorted(by_rule.items())
    )
    lines.append(
        f"lint: {len(violations)} violation"
        f"{'s' if len(violations) != 1 else ''} ({tally})"
    )
    return "\n".join(lines)


def render_json(
    violations: Sequence[LintViolation],
    suppressed: Optional[Sequence[LintViolation]] = None,
) -> str:
    """Stable JSON for downstream tooling.

    ``{"count": N, "violations": [...], "by_code": {...},
    "suppressed": {"count": M, "by_code": {...}}}``.  ``suppressed``
    carries findings absorbed by a baseline file (``lint --flow``); the
    reporter records only counts per code, not full entries — the
    baseline file itself is the source of truth for what was excused.
    """
    by_code: Dict[str, int] = {}
    for violation in violations:
        by_code[violation.code] = by_code.get(violation.code, 0) + 1
    suppressed_by_code: Dict[str, int] = {}
    for violation in suppressed or ():
        suppressed_by_code[violation.code] = (
            suppressed_by_code.get(violation.code, 0) + 1
        )
    payload = {
        "count": len(violations),
        "by_code": by_code,
        "violations": [violation.to_dict() for violation in violations],
        "suppressed": {
            "count": len(suppressed or ()),
            "by_code": suppressed_by_code,
        },
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def summarize(violations: Sequence[LintViolation]) -> List[str]:
    """Rule names present in ``violations``, sorted and deduplicated."""
    return sorted({violation.rule for violation in violations})


def render_flow_text(report: object) -> str:
    """Text report for a :class:`~repro.analysis.flow.FlowReport`."""
    violations = list(getattr(report, "violations"))
    suppressed = list(getattr(report, "suppressed"))
    unused = list(getattr(report, "unused_baseline"))
    lines = [violation.format() for violation in violations]
    for entry in unused:
        lines.append(
            f"warning: stale baseline entry {entry.code} at "
            f"{entry.path} ({entry.symbol or 'no symbol'}) matched "
            "nothing; delete it"
        )
    status = "clean" if not violations else f"{len(violations)} new"
    lines.append(
        f"lint --flow: {status} "
        f"({getattr(report, 'modules')} modules, "
        f"{getattr(report, 'functions')} functions, "
        f"{len(suppressed)} baselined)"
    )
    return "\n".join(lines)


__all__ = ["render_flow_text", "render_json", "render_text", "summarize"]
