"""Render lint findings for humans (text) and tooling (JSON)."""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.rules.base import LintViolation


def render_text(violations: Sequence[LintViolation]) -> str:
    """One ``path:line:col: CODE [rule] message`` line each, plus a tally."""
    if not violations:
        return "lint: clean (0 violations)"
    lines = [violation.format() for violation in violations]
    by_rule: Dict[str, int] = {}
    for violation in violations:
        by_rule[violation.rule] = by_rule.get(violation.rule, 0) + 1
    tally = ", ".join(
        f"{rule}={count}" for rule, count in sorted(by_rule.items())
    )
    lines.append(
        f"lint: {len(violations)} violation"
        f"{'s' if len(violations) != 1 else ''} ({tally})"
    )
    return "\n".join(lines)


def render_json(violations: Sequence[LintViolation]) -> str:
    """Stable JSON: ``{"count": N, "violations": [...]}``."""
    payload = {
        "count": len(violations),
        "violations": [violation.to_dict() for violation in violations],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def summarize(violations: Sequence[LintViolation]) -> List[str]:
    """Rule names present in ``violations``, sorted and deduplicated."""
    return sorted({violation.rule for violation in violations})


__all__ = ["render_json", "render_text", "summarize"]
