"""``python -m repro.analysis`` — standalone entry to the lint pass.

Mirrors ``repro-crowd lint``; exists so CI and editors can run the
analyzer without installing the console script.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.analysis.linter import DEFAULT_LINT_PATHS, lint_paths
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, default_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repo-specific AST invariant linter.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_LINT_PATHS),
        help=f"files/directories to lint (default: {DEFAULT_LINT_PATHS})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        choices=sorted(ALL_RULES),
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )
    return parser


def run(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv``, lint, print a report; 0 iff clean."""
    args = build_parser().parse_args(
        list(argv) if argv is not None else None
    )
    if args.list_rules:
        for name in sorted(ALL_RULES):
            rule = ALL_RULES[name]
            print(f"{rule.code}  {name:22s} {rule.description}")  # repro: noqa-REP007 -- standalone reporter
        return 0
    rules = default_rules(args.rules)
    try:
        violations = lint_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)  # repro: noqa-REP007 -- standalone reporter
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(violations))  # repro: noqa-REP007 -- standalone reporter
    return 1 if violations else 0


def main() -> int:  # pragma: no cover - thin shim
    return run()


if __name__ == "__main__":
    sys.exit(run())
