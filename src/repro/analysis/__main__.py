"""``python -m repro.analysis`` — standalone entry to the lint pass.

Mirrors ``repro-crowd lint``; exists so CI and editors can run the
analyzer without installing the console script.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Optional, Sequence

from repro.analysis.linter import DEFAULT_LINT_PATHS, lint_paths
from repro.analysis.reporters import (
    render_flow_text,
    render_json,
    render_text,
)
from repro.analysis.rules import ALL_RULES, default_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Run the repo-specific AST invariant linter.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_LINT_PATHS),
        help=f"files/directories to lint (default: {DEFAULT_LINT_PATHS})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default text)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="NAME",
        choices=sorted(ALL_RULES),
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list the available rules and exit",
    )
    parser.add_argument(
        "--flow",
        action="store_true",
        help=(
            "run the interprocedural flow analysis (REP010-REP015) "
            "over src instead of the single-file rules"
        ),
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        default="lint-flow-baseline.json",
        help=(
            "baseline suppression file for --flow "
            "(default lint-flow-baseline.json; missing file = empty)"
        ),
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current --flow findings to the baseline file and exit",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="DIR",
        default=None,
        help="content-hash cache for --flow module summaries (CI reuse)",
    )
    return parser


def run_flow_command(args: argparse.Namespace) -> int:
    """The ``--flow`` path, shared with ``repro-crowd lint --flow``."""
    from repro.analysis.flow import BaselineError, run_flow, write_baseline

    cache_dir = (
        pathlib.Path(args.cache_dir) if args.cache_dir is not None else None
    )
    baseline = pathlib.Path(args.baseline)
    try:
        if args.write_baseline:
            report = run_flow(cache_dir=cache_dir)
            found = sorted(report.violations + report.suppressed)
            write_baseline(baseline, found)
            print(  # repro: noqa-REP007 -- standalone reporter
                f"wrote {len(found)} entr"
                f"{'y' if len(found) == 1 else 'ies'} to {baseline}"
            )
            return 0
        report = run_flow(baseline_path=baseline, cache_dir=cache_dir)
    except (BaselineError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)  # repro: noqa-REP007 -- standalone reporter
        return 2
    if args.format == "json":
        rendered = render_json(
            list(report.violations), suppressed=list(report.suppressed)
        )
    else:
        rendered = render_flow_text(report)
    print(rendered)  # repro: noqa-REP007 -- standalone reporter
    return 0 if report.clean else 1


def run(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv``, lint, print a report; 0 iff clean."""
    args = build_parser().parse_args(
        list(argv) if argv is not None else None
    )
    if args.list_rules:
        from repro.analysis.flow import ALL_FLOW_RULES

        for name in sorted(ALL_RULES):
            rule = ALL_RULES[name]
            print(f"{rule.code}  {name:22s} {rule.description}")  # repro: noqa-REP007 -- standalone reporter
        for flow_rule in ALL_FLOW_RULES:
            print(  # repro: noqa-REP007 -- standalone reporter
                f"{flow_rule.code}  {flow_rule.name:22s} "
                f"{flow_rule.description} (--flow)"
            )
        return 0
    if args.flow or args.write_baseline:
        return run_flow_command(args)
    rules = default_rules(args.rules)
    try:
        violations = lint_paths(args.paths, rules=rules)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)  # repro: noqa-REP007 -- standalone reporter
        return 2
    renderer = render_json if args.format == "json" else render_text
    print(renderer(violations))  # repro: noqa-REP007 -- standalone reporter
    return 1 if violations else 0


def main() -> int:  # pragma: no cover - thin shim
    return run()


if __name__ == "__main__":
    sys.exit(run())
