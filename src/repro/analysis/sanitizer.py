"""Runtime outcome sanitizer: every run checked against the paper.

The randomized auditors in :mod:`repro.metrics.properties` spot-check
truthfulness and individual rationality on sampled deviations.  The
sanitizer is the complementary *exhaustive-per-run* layer: it validates
every :class:`~repro.model.AuctionOutcome` a mechanism produces against
invariants that must hold on **all** runs:

``feasibility.phone-overload`` / ``feasibility.unknown-task`` /
``feasibility.inactive-winner``
    Structural feasibility of the allocation ``π`` — at most one task
    per phone per round, allocated tasks exist, and every winner's
    claimed window covers its task's slot (constraints (4)-(6) of the
    paper; the same per-slot feasibility obligations as Han et al.,
    arXiv:1308.4501).

``payments.loser-paid``
    The payment rule ``p`` pays winners only (Definition 1's utility
    model has no transfer to losers).

``ir.underpaid-winner``
    Individual rationality under truthful bidding for mechanisms that
    declare ``is_truthful``: each winner's payment covers its claimed
    cost (Definition 5; Theorems 2 and 5 — the same critical-payment IR
    obligation as OMG, arXiv:1306.5677).

``welfare.accounting-mismatch``
    The outcome's reported claimed welfare equals ``Σ (ν − b_i)``
    recomputed independently over the allocation (Definition 3).

``faults.nondeliverer-paid`` / ``faults.nondeliverer-allocated``
    Fault-aware outcomes only (``non_deliverers`` given): a winner whose
    delivery failed — it dropped out or never handed in results — must
    receive zero payment and must not appear in the final allocation
    (the recovery layer reassigns or abandons its task).

:func:`sanitize_outcome` returns structured :class:`Violation` records;
:class:`SanitizedMechanism` wraps any mechanism and either raises
:class:`~repro.errors.SanitizationError` or collects.  The registry can
wrap every product (``repro.mechanisms.registry.set_sanitize_outcomes``),
which the test suite switches on globally in ``tests/conftest.py``.
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Iterable, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    import os

    from repro.faults.plan import FaultPlan
    from repro.simulation.scenario import Scenario

from repro.errors import SanitizationError
from repro.mechanisms.base import Mechanism
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.round_config import RoundConfig
from repro.model.task import TaskSchedule
from repro.utils.numeric import DEFAULT_TOLERANCE, float_eq

#: Payment slack: a winner may be paid its cost exactly; anything more
#: than this much *below* cost is an IR violation.
_MONEY_TOLERANCE = 1e-6


@dataclasses.dataclass(frozen=True)
class Violation:
    """One invariant violation found in one outcome.

    Attributes
    ----------
    check:
        Dotted check identifier, e.g. ``"ir.underpaid-winner"``.
    message:
        Human-readable description with the offending numbers.
    phone_id / task_id:
        The entities involved, when the check is entity-specific.
    """

    check: str
    message: str
    phone_id: Optional[int] = None
    task_id: Optional[int] = None

    def __str__(self) -> str:
        return f"[{self.check}] {self.message}"


def sanitize_outcome(
    outcome: AuctionOutcome,
    mechanism: Optional[Mechanism] = None,
    tolerance: float = _MONEY_TOLERANCE,
    non_deliverers: Optional[Iterable[int]] = None,
    require_ir: Optional[bool] = None,
) -> List[Violation]:
    """Check ``outcome`` against every per-run invariant.

    ``mechanism`` enables the mechanism-aware checks (IR is only an
    obligation for mechanisms declaring ``is_truthful``); without it the
    structural and accounting checks still run.

    ``non_deliverers`` switches on the fault-aware checks for recovered
    outcomes: phones listed there failed to deliver, so they must be
    paid nothing and hold no final allocation.  ``require_ir`` forces
    the individual-rationality check on (or off) regardless of the
    mechanism's declaration — the fault-recovery layer passes ``True``
    because IR for paying winners must survive reallocation.
    """
    violations: List[Violation] = []
    schedule = outcome.schedule
    bids_by_phone = {bid.phone_id: bid for bid in outcome.bids}

    # -- Structural feasibility (constraints (4)-(6)) -------------------
    allocation = outcome.allocation
    phones_seen: dict = {}
    for task_id, phone_id in allocation.items():
        if task_id not in schedule:
            violations.append(
                Violation(
                    check="feasibility.unknown-task",
                    message=(
                        f"allocation references task {task_id} that is "
                        f"not in the round's schedule"
                    ),
                    task_id=task_id,
                    phone_id=phone_id,
                )
            )
            continue
        if phone_id in phones_seen:
            violations.append(
                Violation(
                    check="feasibility.phone-overload",
                    message=(
                        f"phone {phone_id} serves tasks "
                        f"{phones_seen[phone_id]} and {task_id}; the "
                        f"model allows at most one task per phone per "
                        f"round (constraint (5))"
                    ),
                    phone_id=phone_id,
                    task_id=task_id,
                )
            )
        else:
            phones_seen[phone_id] = task_id
        bid = bids_by_phone.get(phone_id)
        task = schedule.task(task_id)
        if bid is None:
            violations.append(
                Violation(
                    check="feasibility.unknown-phone",
                    message=(
                        f"task {task_id} allocated to phone {phone_id} "
                        f"that submitted no bid"
                    ),
                    phone_id=phone_id,
                    task_id=task_id,
                )
            )
        elif not bid.is_active(task.slot):
            violations.append(
                Violation(
                    check="feasibility.inactive-winner",
                    message=(
                        f"task {task_id} is in slot {task.slot} but its "
                        f"winner phone {phone_id} claimed the window "
                        f"[{bid.arrival}, {bid.departure}] (constraint "
                        f"(4): winners must be active in their slot)"
                    ),
                    phone_id=phone_id,
                    task_id=task_id,
                )
            )

    # -- Payments go to winners only ------------------------------------
    winners = set(allocation.values())
    for phone_id, amount in outcome.payments.items():
        if phone_id not in winners and amount > tolerance:
            violations.append(
                Violation(
                    check="payments.loser-paid",
                    message=(
                        f"phone {phone_id} lost but is paid {amount:g}; "
                        f"the payment rule pays winners only"
                    ),
                    phone_id=phone_id,
                )
            )

    # -- Fault-aware checks (recovered outcomes) ------------------------
    if non_deliverers is not None:
        for phone_id in sorted(set(non_deliverers)):
            amount = outcome.payments.get(phone_id, 0.0)
            if amount > tolerance:
                violations.append(
                    Violation(
                        check="faults.nondeliverer-paid",
                        message=(
                            f"phone {phone_id} failed to deliver but is "
                            f"paid {amount:g}; payments are for "
                            f"delivered sensing results only"
                        ),
                        phone_id=phone_id,
                    )
                )
            for task_id, winner_id in allocation.items():
                if winner_id == phone_id:
                    violations.append(
                        Violation(
                            check="faults.nondeliverer-allocated",
                            message=(
                                f"task {task_id} is finally allocated "
                                f"to phone {phone_id}, whose delivery "
                                f"failed; the recovery layer must "
                                f"reassign or abandon it"
                            ),
                            phone_id=phone_id,
                            task_id=task_id,
                        )
                    )

    # -- Individual rationality (Definition 5) --------------------------
    ir_obligation = (
        require_ir
        if require_ir is not None
        else mechanism is not None
        and getattr(mechanism, "is_truthful", False)
    )
    if ir_obligation:
        for task_id, phone_id in allocation.items():
            bid = bids_by_phone.get(phone_id)
            if bid is None:
                continue  # already reported as feasibility.unknown-phone
            payment = outcome.payment(phone_id)
            if payment < bid.cost - tolerance:
                violations.append(
                    Violation(
                        check="ir.underpaid-winner",
                        message=(
                            f"winner phone {phone_id} bid cost "
                            f"{bid.cost:g} but is paid {payment:g} "
                            f"(< cost): negative utility violates "
                            f"individual rationality (Theorems 2/5)"
                        ),
                        phone_id=phone_id,
                        task_id=task_id,
                    )
                )

    # -- Welfare accounting (Definition 3) ------------------------------
    expected = 0.0
    for task_id, phone_id in allocation.items():
        if task_id in schedule and phone_id in bids_by_phone:
            expected += (
                schedule.task(task_id).value - bids_by_phone[phone_id].cost
            )
    reported = outcome.claimed_welfare
    if not float_eq(reported, expected, max(tolerance, DEFAULT_TOLERANCE)):
        violations.append(
            Violation(
                check="welfare.accounting-mismatch",
                message=(
                    f"outcome reports claimed welfare {reported:g} but "
                    f"Σ(ν − b_i) over its allocation is {expected:g} "
                    f"(Definition 3)"
                ),
            )
        )

    return violations


def check_trace_transparency(
    mechanism: Mechanism,
    bids: Sequence[Bid],
    schedule: TaskSchedule,
    config: Optional[RoundConfig] = None,
) -> AuctionOutcome:
    """Assert that tracing never changes a mechanism's outcome.

    Runs ``mechanism`` twice on the same inputs — once untraced, once
    under a freshly activated :class:`~repro.obs.Tracer` — and raises
    :class:`~repro.errors.SanitizationError` unless the two
    :class:`~repro.model.AuctionOutcome`\\ s compare equal (the strict
    field-by-field ``AuctionOutcome.__eq__``).  This is the telemetry
    layer's core guarantee: spans, counters, and event export are pure
    observation, so a traced run is bit-identical to an untraced one.

    Returns the untraced outcome (for further checks by the caller).
    """
    from repro import obs

    untraced = mechanism.run(bids, schedule, config)
    with obs.activate(obs.Tracer()):
        traced = mechanism.run(bids, schedule, config)
    if untraced != traced:
        raise SanitizationError(
            f"mechanism {mechanism.name!r} is not trace-transparent: "
            f"running under an active tracer changed the outcome "
            f"(allocation {untraced.allocation} vs {traced.allocation}; "
            f"payments {untraced.payments} vs {traced.payments})"
        )
    return untraced


def check_replay_fidelity(
    scenario: "Scenario",
    journal_dir: "os.PathLike",
    reserve_price: bool = False,
    payment_rule: str = "paper",
    fault_plan: Optional["FaultPlan"] = None,
) -> AuctionOutcome:
    """Assert that replaying a journaled round reproduces it exactly.

    The durability sibling of :func:`check_trace_transparency`: drives
    ``scenario`` through a :class:`~repro.durability.JournaledPlatform`
    writing into ``journal_dir``, then replays the journal from disk
    with :func:`~repro.durability.replay_journal`, and raises
    :class:`~repro.errors.SanitizationError` unless the replayed
    :class:`~repro.model.AuctionOutcome` is byte-identical (pickled
    bytes, not just ``__eq__``) to the live one.  This is the
    durability layer's core guarantee: the journal alone determines the
    outcome, so a crashed-and-recovered round cannot silently diverge
    from an uninterrupted one.

    ``fault_plan`` optionally injects a
    :class:`~repro.faults.plan.FaultPlan` so the fidelity check covers
    dropout/failure recovery paths too.  Returns the live outcome.
    """
    import pickle

    from repro.durability import (
        Journal,
        execute_commands,
        replay_journal,
    )
    from repro.durability.journaled import JournaledPlatform
    from repro.durability.replay import round_commands
    from repro.faults.recovery import apply_bid_faults

    bids = scenario.truthful_bids()
    if fault_plan is not None:
        bids, _, _ = apply_bid_faults(list(bids), fault_plan)
    commands = round_commands(bids, scenario, fault_plan)
    journal = Journal(journal_dir)
    try:
        platform = JournaledPlatform(
            journal,
            num_slots=scenario.num_slots,
            reserve_price=reserve_price,
            payment_rule=payment_rule,
            max_reassignments=(
                3
                if fault_plan is None
                else fault_plan.config.max_reassignments
            ),
        )
        live = execute_commands(platform, commands)
    finally:
        journal.close()
    replayed = replay_journal(journal.directory).outcome
    if live is None or replayed is None:  # pragma: no cover - defensive
        raise SanitizationError(
            "replay-fidelity check did not reach a finalized outcome"
        )
    if pickle.dumps(replayed) != pickle.dumps(live):
        raise SanitizationError(
            f"journal replay is not faithful: replaying "
            f"{str(journal.directory)!r} produced a different outcome "
            f"(allocation {live.allocation} vs {replayed.allocation}; "
            f"payments {live.payments} vs {replayed.payments})"
        )
    return live


class SanitizedMechanism(Mechanism):  # repro: noqa-mechanism-contract -- transparent wrapper: identity is copied from the wrapped mechanism per instance, and wrapping happens in the registry, not by registration
    """Wrap a mechanism so every ``run`` is sanitized.

    The wrapper is transparent: ``name`` / ``is_truthful`` / ``is_online``
    are copied from the wrapped mechanism, and unknown attribute access
    forwards to it, so mechanism-specific options (``payment_rule``,
    ``reserve_price``, ...) remain reachable.

    Parameters
    ----------
    inner:
        The mechanism to wrap.
    on_violation:
        ``"raise"`` (default) raises
        :class:`~repro.errors.SanitizationError` on the first offending
        outcome; ``"collect"`` records violations on
        :attr:`collected_violations` and returns the outcome anyway
        (useful to census a known-bad baseline).
    """

    _MODES = ("raise", "collect")

    def __init__(self, inner: Mechanism, on_violation: str = "raise") -> None:
        if on_violation not in self._MODES:
            raise ValueError(
                f"on_violation must be one of {self._MODES}, got "
                f"{on_violation!r}"
            )
        self._inner = inner
        self._on_violation = on_violation
        self._collected: List[Violation] = []
        # Shadow the class attributes with the wrapped identity so that
        # registry name validation, auditors, and reports all see the
        # real mechanism.
        self.name = inner.name
        self.is_truthful = inner.is_truthful
        self.is_online = inner.is_online

    @property
    def inner(self) -> Mechanism:
        """The wrapped mechanism."""
        return self._inner

    @property
    def __class__(self):  # noqa: D401 - proxy transparency
        # ``isinstance(wrapped, OfflineVCGMechanism)`` must keep working
        # when the registry wraps every product (the suite runs with the
        # sanitizer on globally).  Forwarding ``__class__`` is the
        # standard transparent-proxy idiom (unittest.mock uses the
        # same); ``type(wrapper)`` still reports SanitizedMechanism.
        return type(self._inner)

    @property
    def collected_violations(self) -> Sequence[Violation]:
        """Violations accumulated in ``"collect"`` mode."""
        return tuple(self._collected)

    def run(
        self,
        bids: Sequence[Bid],
        schedule: TaskSchedule,
        config: Optional[RoundConfig] = None,
    ) -> AuctionOutcome:
        outcome = self._inner.run(bids, schedule, config)
        violations = sanitize_outcome(outcome, mechanism=self._inner)
        if violations:
            if self._on_violation == "raise":
                details = "; ".join(str(v) for v in violations)
                raise SanitizationError(
                    f"mechanism {self.name!r} produced an outcome "
                    f"violating {len(violations)} invariant"
                    f"{'s' if len(violations) != 1 else ''}: {details}",
                    violations=violations,
                )
            self._collected.extend(violations)
        return outcome

    def __getattr__(self, item: str) -> object:
        # Only called for attributes not found normally; forwards
        # mechanism-specific options of the wrapped instance.  Private
        # names are not forwarded (and guarding them also prevents
        # recursion if ``_inner`` itself is ever missing, e.g. during
        # unpickling).
        if item.startswith("_"):
            raise AttributeError(item)
        return getattr(self._inner, item)

    def __reduce__(self):
        # Default pickling trips over the forwarded ``__class__`` (the
        # protocol would rebuild the wrapper as the *inner* type), so
        # reconstruct explicitly; collected violations stay local to
        # the originating process.
        return (SanitizedMechanism, (self._inner, self._on_violation))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanitizedMechanism({self._inner!r})"


def check_parallel_determinism(
    workload: Optional[object] = None,
    seeds: Sequence[int] = (0, 1, 2, 3),
    worker_counts: Sequence[int] = (1, 2, 3),
    backends: Sequence[str] = ("numpy", "sparse", "python"),
    shard_worker_counts: Sequence[int] = (1, 2),
) -> int:
    """Schedule-fuzz one sweep point; assert byte-identical outcomes.

    The runtime counterpart of the static REP010–REP015 flow rules: it
    *executes* the process-pool fan-out under every combination of

    * worker count (including the serial reference),
    * chunk order — repetitions submitted in permuted order and
      reassembled by seed, so completion/submission order is exercised,
    * matching backend — the mechanism is rebuilt per backend inside
      each worker via its spec kwargs, the way a sweep config would,

    and raises :class:`~repro.errors.SanitizationError` unless every
    run's result rows ``pickle`` to the *same bytes* as the serial
    single-backend reference.  Byte equality is deliberately stricter
    than ``==``: it also pins dict insertion order (payments!) and
    float bit patterns, the two things hash-order bugs corrupt first.

    The same matrix then runs against the shard-level fan-out of
    :func:`repro.experiments.sharding.run_sharded_campaign`: a two-city
    campaign split two shards per city, executed under every
    ``shard_worker_counts`` entry × permuted shard submission order,
    must pickle byte-identically — as a whole result — to its
    ``workers=1`` reference (pass an empty ``shard_worker_counts`` to
    skip that half).

    Returns the number of schedule combinations checked.
    """
    import pickle

    from repro.experiments.config import MechanismSpec
    from repro.experiments.parallel import (
        run_repetition,
        run_repetitions_parallel,
    )
    from repro.simulation.workload import WorkloadConfig

    if workload is None:
        workload = WorkloadConfig(
            num_slots=5,
            phone_rate=3.0,
            task_rate=1.5,
            mean_cost=10.0,
            mean_active_length=3,
            task_value=18.0,
        )
    seeds = tuple(seeds)

    def rows_bytes(results: Sequence[object]) -> Tuple[bytes, ...]:
        # One pickle per repetition, not one for the whole batch: a
        # batch pickle also encodes which strings happen to be shared
        # *across* results (identity, not value), and that differs
        # between in-process rows and rows that crossed a pipe.  The
        # per-row bytes still pin dict insertion order and float bit
        # patterns — the payload we are asserting on.
        ordered = sorted(results, key=lambda result: result.seed)
        if [result.seed for result in ordered] != list(seeds):
            raise SanitizationError(
                f"parallel run lost repetitions: expected seeds "
                f"{list(seeds)}, got {[r.seed for r in ordered]}"
            )
        return tuple(
            pickle.dumps(result.row, protocol=4) for result in ordered
        )

    def permutations(items: Sequence[int]) -> List[Tuple[int, ...]]:
        forward = tuple(items)
        rotated = forward[1:] + forward[:1]
        return [forward, tuple(reversed(forward)), rotated]

    reference: Optional[Tuple[bytes, ...]] = None
    checked = 0
    for backend in backends:
        # The label stays backend-independent on purpose: the reference
        # bytes must match across backends, and the label is payload.
        specs = (MechanismSpec.of("offline-vcg", backend=backend),)
        serial = [
            run_repetition(workload, specs, seed, 0, 0.0, "raise")
            for seed in seeds
        ]
        serial_bytes = rows_bytes(serial)
        if reference is None:
            reference = serial_bytes
        elif serial_bytes != reference:
            raise SanitizationError(
                f"backend {backend!r} serial outcome bytes differ from "
                f"the reference backend {backends[0]!r}; cross-backend "
                "bit-identity is broken"
            )
        for workers in worker_counts:
            for order in permutations(seeds):
                results = run_repetitions_parallel(
                    workload,
                    specs,
                    order,
                    retries=0,
                    backoff=0.0,
                    on_failure="raise",
                    workers=workers,
                )
                if rows_bytes(results) != reference:
                    raise SanitizationError(
                        f"nondeterministic sweep point: backend="
                        f"{backend!r} workers={workers} submission "
                        f"order={list(order)} produced different "
                        "outcome bytes than the serial reference"
                    )
                checked += 1
    checked += _check_shard_determinism(workload, shard_worker_counts)
    return checked


def _check_shard_determinism(
    workload: object, worker_counts: Sequence[int]
) -> int:
    """Shard-permutation half of :func:`check_parallel_determinism`."""
    if not worker_counts:
        return 0
    import pickle

    from repro.experiments.config import MechanismSpec
    from repro.experiments.sharding import (
        CityConfig,
        run_sharded_campaign,
    )

    cities = [
        CityConfig("fuzz-east", workload, num_rounds=3),
        CityConfig("fuzz-west", workload, num_rounds=2),
    ]
    spec = MechanismSpec.of("online-greedy")

    def run_bytes(workers: int, order) -> bytes:
        result = run_sharded_campaign(
            spec,
            cities,
            seed=2014,
            workers=workers,
            shards_per_city=2,
            submission_order=order,
        )
        return pickle.dumps(result, protocol=4)

    # 2 + 2 rounds split two shards per city -> four shards, ids 0..3.
    orders = [None, (3, 2, 1, 0), (1, 3, 0, 2)]
    reference = run_bytes(1, None)
    checked = 1
    for workers in worker_counts:
        for order in orders:
            if workers == 1 and order is None:
                continue  # that run *is* the reference
            if run_bytes(workers, order) != reference:
                raise SanitizationError(
                    f"nondeterministic sharded campaign: workers="
                    f"{workers} submission order="
                    f"{list(order) if order else 'plan order'} produced "
                    "different result bytes than the workers=1 reference"
                )
            checked += 1
    return checked
