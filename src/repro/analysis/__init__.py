"""Static and dynamic enforcement of the repository's invariants.

The correctness story of this reproduction rests on conventions that are
documented (ARCHITECTURE.md, ``mechanisms/base.py``) but were historically
unenforced.  This package enforces them mechanically, in two layers:

* :mod:`repro.analysis.linter` — a custom AST lint pass with one rule per
  repo-specific invariant (no global-state randomness, no float ``==`` on
  money, mechanism ``run()`` purity, the mechanism registration contract,
  no bare ``except``, no mutable default arguments).  Run it via
  ``repro-crowd lint`` or ``python -m repro.analysis``.
* :mod:`repro.analysis.sanitizer` — a runtime wrapper that validates every
  :class:`~repro.model.AuctionOutcome` a mechanism produces against the
  paper's structural feasibility, individual-rationality, and
  welfare-accounting invariants (Theorems 1-5).

Both layers report structured records (:class:`LintViolation`,
:class:`Violation`) rather than strings, so tooling and tests can assert
on them precisely.
"""

from repro.analysis.linter import (
    DEFAULT_LINT_PATHS,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, default_rules, get_rule
from repro.analysis.rules.base import LintRule, LintViolation, SourceFile
from repro.analysis.sanitizer import (
    SanitizedMechanism,
    Violation,
    check_trace_transparency,
    sanitize_outcome,
)

__all__ = [
    "ALL_RULES",
    "DEFAULT_LINT_PATHS",
    "LintRule",
    "LintViolation",
    "SanitizedMechanism",
    "SourceFile",
    "Violation",
    "check_trace_transparency",
    "default_rules",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "sanitize_outcome",
]
