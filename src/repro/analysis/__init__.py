"""Static and dynamic enforcement of the repository's invariants.

The correctness story of this reproduction rests on conventions that are
documented (ARCHITECTURE.md, ``mechanisms/base.py``) but were historically
unenforced.  This package enforces them mechanically, in two layers:

* :mod:`repro.analysis.linter` — a custom AST lint pass with one rule per
  repo-specific invariant (no global-state randomness, no float ``==`` on
  money, mechanism ``run()`` purity, the mechanism registration contract,
  no bare ``except``, no mutable default arguments).  Run it via
  ``repro-crowd lint`` or ``python -m repro.analysis``.
* :mod:`repro.analysis.flow` — the interprocedural layer: a module-graph
  + def-use dataflow engine whose rules (REP010–REP015) prove
  concurrency and determinism properties across function boundaries —
  pickle-safety at the worker boundary, no worker-reachable mutable
  globals, RNG-stream discipline, order-independent reductions, no
  telemetry in hot inner loops, and clock-guarded time reads.  Run it
  via ``repro-crowd lint --flow``.
* :mod:`repro.analysis.sanitizer` — a runtime wrapper that validates every
  :class:`~repro.model.AuctionOutcome` a mechanism produces against the
  paper's structural feasibility, individual-rationality, and
  welfare-accounting invariants (Theorems 1-5), plus the schedule-fuzzing
  :func:`check_parallel_determinism` that executes a sweep point under
  permuted worker counts / chunk orders / matching backends and asserts
  byte-identical outcomes.

Both layers report structured records (:class:`LintViolation`,
:class:`Violation`) rather than strings, so tooling and tests can assert
on them precisely.
"""

from repro.analysis.flow import FlowReport, run_flow
from repro.analysis.linter import (
    DEFAULT_LINT_PATHS,
    iter_python_files,
    lint_paths,
    lint_source,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import ALL_RULES, default_rules, get_rule
from repro.analysis.rules.base import LintRule, LintViolation, SourceFile
from repro.analysis.sanitizer import (
    SanitizedMechanism,
    Violation,
    check_parallel_determinism,
    check_replay_fidelity,
    check_trace_transparency,
    sanitize_outcome,
)

__all__ = [
    "ALL_RULES",
    "DEFAULT_LINT_PATHS",
    "FlowReport",
    "LintRule",
    "LintViolation",
    "SanitizedMechanism",
    "SourceFile",
    "Violation",
    "check_parallel_determinism",
    "check_replay_fidelity",
    "check_trace_transparency",
    "default_rules",
    "get_rule",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "render_json",
    "render_text",
    "run_flow",
    "sanitize_outcome",
]
