"""The lint engine: file collection, parsing, rule dispatch, suppression.

The engine is deliberately small — rules carry all the judgement.  It
parses each file once into a shared :class:`SourceFile`, runs every rule
over it, drops violations suppressed by ``# repro: noqa-<rule>``
comments, and returns the findings sorted by location.  A file that does
not parse yields a single ``REP000`` syntax-error violation instead of
aborting the run, so one broken file cannot hide findings in the rest of
the tree.
"""

from __future__ import annotations

import os
import pathlib
from typing import Iterable, List, Optional, Sequence

from repro.analysis.rules import default_rules
from repro.analysis.rules.base import LintRule, LintViolation, SourceFile

#: What ``repro-crowd lint`` checks when no paths are given.
DEFAULT_LINT_PATHS = ("src", "tests", "benchmarks")

#: Directory names never descended into.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".venv", "node_modules"})


def iter_python_files(
    paths: Iterable[pathlib.Path],
) -> List[pathlib.Path]:
    """All ``*.py`` files under ``paths``, depth-first, sorted, deduped."""
    found: List[pathlib.Path] = []
    seen = set()
    for path in paths:
        path = pathlib.Path(path)
        if not path.exists():
            # A typo'd path must not report "clean"; fail loudly so a
            # misconfigured CI invocation cannot silently pass.
            raise FileNotFoundError(f"lint path does not exist: {path}")
        if path.is_file() and path.suffix == ".py":
            candidates: Iterable[pathlib.Path] = [path]
        elif path.is_dir():
            candidates = sorted(
                candidate
                for candidate in path.rglob("*.py")
                if not any(part in _SKIP_DIRS for part in candidate.parts)
            )
        else:
            candidates = []
        for candidate in candidates:
            key = candidate.resolve()
            if key not in seen:
                seen.add(key)
                found.append(candidate)
    return found


def display_path(path: object) -> str:
    """Normalise ``path`` for reporting: repo-relative, forward slashes.

    Baselines and CI logs must be machine-portable, so every reported
    path — including the ``REP000`` syntax-error path, which historically
    leaked the caller's absolute spelling — is rewritten relative to the
    current working directory whenever it sits inside it.  Paths outside
    the working tree stay absolute (relative would mean ``..`` spaghetti).
    """
    resolved = pathlib.Path(path).resolve()
    cwd = pathlib.Path.cwd().resolve()
    try:
        return resolved.relative_to(cwd).as_posix()
    except ValueError:
        candidate = os.path.relpath(resolved, cwd)
        if candidate.startswith(".."):
            return resolved.as_posix()
        return pathlib.PurePath(candidate).as_posix()  # pragma: no cover


def _syntax_violation(path: str, error: SyntaxError) -> LintViolation:
    return LintViolation(
        path=path,
        line=error.lineno or 1,
        col=(error.offset or 1) - 1,
        code="REP000",
        rule="syntax-error",
        message=f"file does not parse: {error.msg}",
    )


def lint_source(
    source: str,
    path: str = "<string>",
    rules: Optional[Sequence[LintRule]] = None,
) -> List[LintViolation]:
    """Lint one source string; the unit every test builds on."""
    active = list(rules) if rules is not None else default_rules()
    try:
        parsed = SourceFile.parse(source, path=path)
    except SyntaxError as error:
        return [_syntax_violation(path, error)]
    violations: List[LintViolation] = []
    for rule in active:
        for violation in rule.check(parsed):
            if violation.code == "REP008":
                # The suppression auditor cannot be silenced by the very
                # blanket noqa it flags; only an explicit, named
                # suppression counts.
                suppressed = parsed.is_explicitly_suppressed(
                    violation.line, violation.rule
                ) or parsed.is_explicitly_suppressed(
                    violation.line, violation.code.lower()
                )
            else:
                suppressed = parsed.is_suppressed(
                    violation.line, violation.rule
                ) or parsed.is_suppressed(
                    violation.line, violation.code.lower()
                )
            if not suppressed:
                violations.append(violation)
    return sorted(violations)


def lint_file(
    path: pathlib.Path,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[LintViolation]:
    """Lint one file from disk; findings carry the normalised path."""
    text = pathlib.Path(path).read_text(encoding="utf-8")
    return lint_source(text, path=display_path(path), rules=rules)


def lint_paths(
    paths: Optional[Sequence[object]] = None,
    rules: Optional[Sequence[LintRule]] = None,
) -> List[LintViolation]:
    """Lint every Python file under ``paths`` (default: src/tests/benchmarks).

    Rules are instantiated once and shared across files so per-rule
    caches (e.g. the registry source in ``mechanism-contract``) are read
    a single time per run.
    """
    targets = [pathlib.Path(p) for p in (paths or DEFAULT_LINT_PATHS)]
    active = list(rules) if rules is not None else default_rules()
    violations: List[LintViolation] = []
    for path in iter_python_files(targets):
        violations.extend(lint_file(path, rules=active))
    return sorted(violations)
