"""Rule ``no-float-equality``: no ``==``/``!=`` on money-valued operands.

Costs, payments, prices, utilities, and welfare are floats shaped by
solver round-off (Hungarian matching, VCG subtractions), so exact
equality is a latent flake.  Comparisons on operands whose names mark
them as money must go through the epsilon helpers in
:mod:`repro.utils.numeric` (``float_eq`` / ``float_ne``) or, in tests,
``pytest.approx``.

The rule fires when an ``==``/``!=`` comparand pair has a money-named
operand on one side and either a numeric literal or another money-named
operand on the other.  Comparisons that already route through an
approx/epsilon helper call, compare against strings/None/booleans, or
compare container displays are ignored.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator, List, Optional

from repro.analysis.rules.base import LintRule, LintViolation, SourceFile

#: Identifiers treated as money-valued.
_MONEY_RE = re.compile(
    r"(cost|payment|price|welfare|utilit|budget|revenue|surplus|overpay)",
    re.IGNORECASE,
)

#: Identifiers excluded even when the money pattern matches ("payment_slot",
#: "payment_rule", "cost_kind" are discrete, not money).
_EXCLUDE_RE = re.compile(
    r"(slot|rule|name|label|kind|mode|count|index|key|_id$|^id$)",
    re.IGNORECASE,
)

#: Call targets that make a comparison epsilon-aware already.
_SAFE_CALLS = frozenset(
    {"approx", "float_eq", "float_ne", "isclose", "allclose", "pytest_approx"}
)

#: Container displays / comprehensions: comparing these is structural
#: equality, not float arithmetic.
_CONTAINER_NODES = (
    ast.Dict,
    ast.List,
    ast.Set,
    ast.Tuple,
    ast.DictComp,
    ast.ListComp,
    ast.SetComp,
)


def _call_name(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_money_identifier(identifier: str) -> bool:
    return bool(
        _MONEY_RE.search(identifier) and not _EXCLUDE_RE.search(identifier)
    )


def _money_names(node: ast.AST) -> List[str]:
    """Money-marking identifiers that decide the *value* of ``node``.

    Judged by the terminal identifier of the operand expression — for
    ``result.welfare_per_round.count`` the value is the ``count``, not
    the welfare series it hangs off, so only the outermost name counts.
    Arithmetic expressions are money if any term is.
    """
    if isinstance(node, ast.Name):
        return [node.id] if _is_money_identifier(node.id) else []
    if isinstance(node, ast.Attribute):
        return [node.attr] if _is_money_identifier(node.attr) else []
    if isinstance(node, ast.Call):
        name = _call_name(node)
        return [name] if name and _is_money_identifier(name) else []
    if isinstance(node, ast.Subscript):
        return _money_names(node.value)
    if isinstance(node, ast.BinOp):
        return _money_names(node.left) + _money_names(node.right)
    if isinstance(node, ast.UnaryOp):
        return _money_names(node.operand)
    if isinstance(node, ast.IfExp):
        return _money_names(node.body) + _money_names(node.orelse)
    return []


def _is_safe_operand(node: ast.AST) -> bool:
    """Operands that make the whole comparison exempt."""
    if isinstance(node, ast.Call) and _call_name(node) in _SAFE_CALLS:
        return True
    if isinstance(node, _CONTAINER_NODES):
        return True
    if isinstance(node, ast.Constant) and isinstance(
        node.value, (str, bytes, bool)
    ):
        return True
    if isinstance(node, ast.Constant) and node.value is None:
        return True
    return False


def _is_numeric_literal(node: ast.AST) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, (int, float)) and not isinstance(
            node.value, bool
        )
    if isinstance(node, ast.UnaryOp) and isinstance(
        node.op, (ast.USub, ast.UAdd)
    ):
        return _is_numeric_literal(node.operand)
    return False


class NoFloatEqualityRule(LintRule):
    """Require epsilon helpers for equality on money-named floats."""

    name = "no-float-equality"
    code = "REP002"
    description = (
        "== / != on cost/payment/welfare-named operands must use the "
        "utils.numeric epsilon helpers (or pytest.approx in tests)"
    )

    def check(self, source: SourceFile) -> Iterator[LintViolation]:
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_safe_operand(left) or _is_safe_operand(right):
                    continue
                left_money = _money_names(left)
                right_money = _money_names(right)
                if left_money and right_money:
                    offender = left_money[0]
                elif left_money and _is_numeric_literal(right):
                    offender = left_money[0]
                elif right_money and _is_numeric_literal(left):
                    offender = right_money[0]
                else:
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                yield self.violation(
                    source,
                    node,
                    f"float {symbol} on money-valued operand "
                    f"{offender!r}; use float_eq/float_ne from "
                    f"repro.utils.numeric (tests: pytest.approx)",
                )
