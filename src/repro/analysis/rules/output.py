"""REP007: library code must not print.

The library's one sanctioned path to a terminal is the observability
layer — :class:`repro.obs.Console` for CLI output and trace sinks for
telemetry.  A stray ``print(...)`` in library code bypasses
``--quiet``/``--json`` handling, corrupts machine-readable output, and
is invisible to tests capturing structured events.  This rule flags
every call to the ``print`` builtin in files under ``src/repro``.

Deliberate output choke points (the :class:`~repro.obs.Console`
implementation itself, ad-hoc ``__main__`` reporters) are exempted line
by line with ``# repro: noqa-REP007 -- <why>``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import LintRule, LintViolation, SourceFile


class NoPrintRule(LintRule):
    """Forbid ``print(...)`` in library code under ``src/repro``."""

    name = "no-print"
    code = "REP007"
    description = (
        "library code must route output through repro.obs (Console or a "
        "trace sink), never print() directly"
    )

    def check(self, source: SourceFile) -> Iterator[LintViolation]:
        normalized = source.path.replace("\\", "/")
        if "src/repro" not in normalized:
            return
        for node in ast.walk(source.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "print"
            ):
                yield self.violation(
                    source,
                    node,
                    "print() in library code; route output through "
                    "repro.obs.Console (or suppress this choke point "
                    "with noqa-REP007)",
                )
