"""Rule ``no-run-mutation``: ``Mechanism.run`` must not mutate its inputs.

``mechanisms/base.py`` declares every mechanism a *pure function* of its
inputs.  The property auditors in :mod:`repro.metrics.properties` re-run
mechanisms against counterfactual bid vectors; a ``run()`` that mutates
the bid list, a bid object, the schedule, or hidden state on ``self``
silently corrupts every subsequent counterfactual, producing audits that
pass (or fail) for the wrong reason.

Inside any ``run`` method of a ``Mechanism`` subclass, this rule flags:

* rebinding a parameter (``bids = ...``, ``bids += ...``);
* attribute or item writes through a parameter
  (``schedule.tasks = ...``, ``bids[0] = ...``, ``del bids[0]``);
* known mutating method calls on a parameter
  (``bids.sort()``, ``payments_arg.update(...)``);
* writes to ``self`` (hidden state across runs).

Aliased mutation (``alias = bids; alias.sort()``) is out of static
reach; the runtime sanitizer plus the conventions here keep that
honest.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.rules.base import (
    LintRule,
    LintViolation,
    SourceFile,
    root_name,
)

#: Method names that mutate their receiver in-place for the containers
#: and domain objects a ``run()`` receives.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "sort",
        "reverse",
        "update",
        "setdefault",
        "add",
        "discard",
        "__setitem__",
        "__delitem__",
    }
)


def _is_mechanism_class(node: ast.ClassDef) -> bool:
    """Whether a class statically looks like a ``Mechanism`` subclass."""
    for base in node.bases:
        name = base.id if isinstance(base, ast.Name) else (
            base.attr if isinstance(base, ast.Attribute) else None
        )
        if name is not None and (
            name == "Mechanism" or name.endswith("Mechanism")
        ):
            return True
    return False


class NoRunMutationRule(LintRule):
    """Enforce the purity contract on every ``Mechanism.run``."""

    name = "no-run-mutation"
    code = "REP003"
    description = (
        "Mechanism.run() may not mutate its bid/schedule/config "
        "arguments or write to self (the purity contract)"
    )

    def check(self, source: SourceFile) -> Iterator[LintViolation]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ClassDef) and _is_mechanism_class(node):
                for item in node.body:
                    if (
                        isinstance(item, ast.FunctionDef)
                        and item.name == "run"
                    ):
                        yield from self._check_run(source, node, item)

    def _check_run(
        self,
        source: SourceFile,
        klass: ast.ClassDef,
        run: ast.FunctionDef,
    ) -> Iterator[LintViolation]:
        args = run.args
        all_args = [
            *args.posonlyargs,
            *args.args,
            *args.kwonlyargs,
        ]
        params: Set[str] = {a.arg for a in all_args}
        self_name = all_args[0].arg if all_args else "self"
        params.discard(self_name)

        def describe(target_root: str) -> str:
            if target_root == self_name:
                return (
                    f"writes hidden state on '{self_name}' across runs"
                )
            return f"mutates the run() argument {target_root!r}"

        for stmt in ast.walk(run):
            targets = []
            if isinstance(stmt, ast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (ast.AnnAssign, ast.AugAssign)):
                targets = [stmt.target]
            elif isinstance(stmt, ast.Delete):
                targets = stmt.targets
            for target in targets:
                for element in self._flatten(target):
                    yield from self._check_write(
                        source, element, params, self_name, describe
                    )
            if isinstance(stmt, ast.Call) and isinstance(
                stmt.func, ast.Attribute
            ):
                if stmt.func.attr in _MUTATOR_METHODS:
                    root = root_name(stmt.func.value)
                    if root in params:
                        yield self.violation(
                            source,
                            stmt,
                            f"{klass.name}.run() calls mutating method "
                            f"'.{stmt.func.attr}()' on its argument "
                            f"{root!r}; mechanisms are pure functions",
                        )

    @staticmethod
    def _flatten(target: ast.AST) -> Iterator[ast.AST]:
        if isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                yield from NoRunMutationRule._flatten(element)
        else:
            yield target

    def _check_write(
        self, source, target, params, self_name, describe
    ) -> Iterator[LintViolation]:
        if isinstance(target, ast.Name):
            if target.id in params:
                yield self.violation(
                    source,
                    target,
                    f"run() rebinds its parameter {target.id!r}; bind a "
                    f"new local name instead",
                )
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            root = root_name(target)
            if root in params or root == self_name:
                kind = (
                    "attribute" if isinstance(target, ast.Attribute)
                    else "item"
                )
                yield self.violation(
                    source,
                    target,
                    f"run() {kind} write {describe(root)}; mechanisms "
                    f"are pure functions of (bids, schedule, config)",
                )
