"""Rule registry: one class per repo-specific invariant.

``ALL_RULES`` maps stable rule names to rule classes; the engine
instantiates :func:`default_rules` unless the caller narrows the set
(``repro-crowd lint --rule no-bare-except ...``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Type

from repro.analysis.rules.base import LintRule, LintViolation, SourceFile
from repro.analysis.rules.contract import MechanismContractRule
from repro.analysis.rules.float_equality import NoFloatEqualityRule
from repro.analysis.rules.hygiene import NoBareExceptRule, NoMutableDefaultRule
from repro.analysis.rules.noqa import NoqaJustificationRule
from repro.analysis.rules.output import NoPrintRule
from repro.analysis.rules.purity import NoRunMutationRule
from repro.analysis.rules.randomness import NoGlobalRandomRule

#: Every shipped rule, keyed by its stable kebab-case name.
ALL_RULES: Dict[str, Type[LintRule]] = {
    rule.name: rule
    for rule in (
        NoGlobalRandomRule,
        NoFloatEqualityRule,
        NoRunMutationRule,
        MechanismContractRule,
        NoBareExceptRule,
        NoMutableDefaultRule,
        NoPrintRule,
        NoqaJustificationRule,
    )
}


def get_rule(name: str) -> LintRule:
    """Instantiate the rule registered under ``name``.

    Raises :class:`KeyError` with the known names on a miss.
    """
    try:
        rule_class = ALL_RULES[name]
    except KeyError:
        known = ", ".join(sorted(ALL_RULES))
        raise KeyError(
            f"unknown lint rule {name!r}; known rules: {known}"
        ) from None
    return rule_class()


def default_rules(
    names: Optional[Sequence[str]] = None,
) -> List[LintRule]:
    """Instantiate the selected rules (all of them by default)."""
    selected = sorted(ALL_RULES) if names is None else list(names)
    return [get_rule(name) for name in selected]


__all__ = [
    "ALL_RULES",
    "LintRule",
    "LintViolation",
    "MechanismContractRule",
    "NoBareExceptRule",
    "NoFloatEqualityRule",
    "NoGlobalRandomRule",
    "NoMutableDefaultRule",
    "NoPrintRule",
    "NoRunMutationRule",
    "NoqaJustificationRule",
    "SourceFile",
    "default_rules",
    "get_rule",
]
