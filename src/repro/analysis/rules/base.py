"""The lint-rule framework: source model, violations, rule base class.

A rule is a small class with a stable kebab-case :attr:`LintRule.name`, a
``REPnnn`` :attr:`LintRule.code`, and a :meth:`LintRule.check` method that
yields :class:`LintViolation` records for one parsed
:class:`SourceFile`.  Rules never see the filesystem directly — the
engine in :mod:`repro.analysis.linter` handles file collection, parsing,
and suppression filtering — which keeps every rule unit-testable from a
source string.

Suppression
-----------
A violation is suppressed by a trailing comment on the flagged line::

    outcome_a == outcome_b  # repro: noqa-no-float-equality -- dict identity

``# repro: noqa`` (no rule list) suppresses every rule on that line;
``# repro: noqa-rule-a,rule-b`` suppresses exactly the named rules.
Anything after ``--`` is a free-form justification and is encouraged.
"""

from __future__ import annotations

import abc
import ast
import dataclasses
import io
import re
import tokenize
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

#: Matches the suppression marker, bare (``repro: noqa``) or with a
#: ``-<rule>[,<rule>...]`` list appended.
_NOQA_RE = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<rules>[a-z0-9][a-z0-9,-]*))?", re.IGNORECASE
)

#: Sentinel rule-set meaning "suppress every rule on this line".
_SUPPRESS_ALL: FrozenSet[str] = frozenset({"*"})


@dataclasses.dataclass(frozen=True, order=True)
class LintViolation:
    """One finding of one rule at one source location.

    ``symbol`` names the enclosing definition (``module:Class.func``)
    when the rule knows it — the interprocedural flow rules always set
    it, and the baseline-suppression file matches on it because symbol
    names survive line-number drift where ``line`` does not.
    """

    path: str
    line: int
    col: int
    code: str
    rule: str
    message: str
    symbol: str = ""

    def format(self) -> str:
        """The conventional one-line ``path:line:col: CODE message`` form."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.code} [{self.rule}] {self.message}"
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly representation (used by the JSON reporter)."""
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Dict[str, object]) -> "LintViolation":
        """Rebuild a violation from :meth:`to_dict` output (JSON round-trip)."""
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),  # type: ignore[arg-type]
            col=int(payload["col"]),  # type: ignore[arg-type]
            code=str(payload["code"]),
            rule=str(payload["rule"]),
            message=str(payload["message"]),
            symbol=str(payload.get("symbol", "")),
        )


def _parse_noqa(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line numbers to the rule names suppressed there."""
    suppressions: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(lines, start=1):
        match = _NOQA_RE.search(text)
        if match is None:
            continue
        listed = match.group("rules")
        if listed is None:
            suppressions[lineno] = _SUPPRESS_ALL
        else:
            names = frozenset(
                part.strip() for part in listed.split(",") if part.strip()
            )
            # ``-- justification`` text after the rule list is free-form;
            # splitting on "," already keeps it out because rule names
            # never contain spaces.  Strip a trailing "--" fragment.
            # Lowercasing lets ``noqa-REP007`` match by code as well as
            # by kebab-case name.
            suppressions[lineno] = frozenset(
                (name.split("--")[0].strip("-") or name).lower()
                for name in names
            )
    return suppressions


class SourceFile:
    """A parsed Python source file handed to every rule.

    Attributes
    ----------
    path:
        Display path of the file (repo-relative when linted via the
        engine; arbitrary for string-based tests).
    source:
        Full source text.
    tree:
        The parsed :class:`ast.Module`.
    lines:
        Source split into lines (1-based access via ``lines[lineno-1]``).
    """

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines: List[str] = source.splitlines()
        self._suppressions = _parse_noqa(self.lines)

    @classmethod
    def parse(cls, source: str, path: str = "<string>") -> "SourceFile":
        """Parse ``source``; raises :class:`SyntaxError` on bad input."""
        return cls(path=path, source=source, tree=ast.parse(source))

    def is_suppressed(self, line: int, rule_name: str) -> bool:
        """Whether ``rule_name`` is noqa'd on 1-based ``line``."""
        listed = self._suppressions.get(line)
        if listed is None:
            return False
        return listed is _SUPPRESS_ALL or rule_name in listed

    def is_explicitly_suppressed(self, line: int, rule_name: str) -> bool:
        """Like :meth:`is_suppressed`, but a blanket noqa does not count.

        Used for the noqa-justification rule itself: a blanket
        ``# repro: noqa`` must not silence the very finding that flags
        it, or the rule could never fire.
        """
        listed = self._suppressions.get(line)
        if listed is None or listed is _SUPPRESS_ALL:
            return False
        return rule_name in listed

    def comment_tokens(self) -> List[Tuple[int, int, str]]:
        """All ``#`` comments as ``(line, col, text)``, via :mod:`tokenize`.

        Unlike a per-line regex, tokenizing distinguishes real comments
        from ``#`` characters inside string literals, so rules that
        inspect comment *content* (e.g. the noqa-justification rule) do
        not fire on lint-rule documentation or test fixture strings.
        Tokenize errors (possible on files that parse but confuse the
        tokenizer's tail) simply end the scan early.
        """
        comments: List[Tuple[int, int, str]] = []
        reader = io.StringIO(self.source).readline
        try:
            for token in tokenize.generate_tokens(reader):
                if token.type == tokenize.COMMENT:
                    comments.append(
                        (token.start[0], token.start[1], token.string)
                    )
        except (tokenize.TokenError, IndentationError):  # pragma: no cover
            pass
        return comments

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SourceFile(path={self.path!r}, lines={len(self.lines)})"


class LintRule(abc.ABC):
    """Base class of every lint rule.

    Subclasses set :attr:`name`, :attr:`code`, and :attr:`description`,
    and implement :meth:`check`.  The engine filters suppressed
    violations, so rules simply report everything they see.
    """

    #: Stable kebab-case identifier, used in ``repro: noqa-<name>`` comments.
    name: str = "abstract"
    #: Short ``REPnnn`` code for compact reporting.
    code: str = "REP000"
    #: One-line human description (shown by ``lint --list-rules``).
    description: str = ""

    @abc.abstractmethod
    def check(self, source: SourceFile) -> Iterator[LintViolation]:
        """Yield every violation of this rule found in ``source``."""

    def violation(
        self,
        source: SourceFile,
        node: ast.AST,
        message: str,
        line: Optional[int] = None,
        symbol: str = "",
    ) -> LintViolation:
        """Build a :class:`LintViolation` anchored at ``node``."""
        return LintViolation(
            path=source.path,
            line=line if line is not None else getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=self.code,
            rule=self.name,
            message=message,
            symbol=symbol,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, code={self.code!r})"


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def root_name(node: ast.AST) -> Optional[str]:
    """The leftmost ``Name`` under attribute/subscript chains, if any."""
    current = node
    while isinstance(current, (ast.Attribute, ast.Subscript)):
        current = current.value
    if isinstance(current, ast.Name):
        return current.id
    return None
