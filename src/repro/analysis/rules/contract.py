"""Rule ``mechanism-contract``: concrete mechanisms declare and register.

Experiment configs refer to mechanisms by name
(:mod:`repro.mechanisms.registry`), and the property auditors branch on
``is_truthful`` to decide whether a profitable deviation is a bug or
expected baseline behaviour.  A concrete mechanism that forgets the
class attributes inherits ``name = "abstract"`` / ``is_truthful =
False`` from the base class and silently corrupts both subsystems, and
one missing from the registry is unreachable from sweep configs and the
CLI.

For every class deriving *directly* from the abstract ``Mechanism`` root
and defining ``run`` (i.e. concrete), the rule requires:

* class-body assignments for ``name``, ``is_truthful``, ``is_online``;
* for library code (paths under ``src/repro/``), the class name must
  appear in ``mechanisms/registry.py``.

Subclasses of concrete mechanisms inherit all three attributes, so only
direct ``Mechanism`` children are checked for the attribute triple.
Wrapper classes that forward identity dynamically (e.g. the outcome
sanitizer) suppress with a justified ``# repro: noqa-mechanism-contract``.
"""

from __future__ import annotations

import ast
import importlib.util
import pathlib
from typing import Iterator, Optional, Set

from repro.analysis.rules.base import LintRule, LintViolation, SourceFile

_REQUIRED_ATTRS = ("name", "is_truthful", "is_online")


def _registry_source_default() -> str:
    """Text of the shipped ``repro/mechanisms/registry.py``."""
    spec = importlib.util.find_spec("repro.mechanisms.registry")
    if spec is None or spec.origin is None:  # pragma: no cover - defensive
        return ""
    return pathlib.Path(spec.origin).read_text(encoding="utf-8")


def _base_terminal_name(base: ast.AST) -> Optional[str]:
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        return base.attr
    return None


def _assigned_class_attrs(node: ast.ClassDef) -> Set[str]:
    assigned: Set[str] = set()
    for item in node.body:
        if isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    assigned.add(target.id)
        elif isinstance(item, ast.AnnAssign) and isinstance(
            item.target, ast.Name
        ):
            if item.value is not None:
                assigned.add(item.target.id)
    return assigned


def _defines_run(node: ast.ClassDef) -> bool:
    return any(
        isinstance(item, ast.FunctionDef) and item.name == "run"
        for item in node.body
    )


def _is_library_path(path: str) -> bool:
    parts = pathlib.PurePath(path).parts
    return "repro" in parts and "tests" not in parts and (
        "benchmarks" not in parts
    )


class MechanismContractRule(LintRule):
    """Concrete ``Mechanism`` subclasses declare identity and register."""

    name = "mechanism-contract"
    code = "REP004"
    description = (
        "concrete Mechanism subclasses must set name/is_truthful/"
        "is_online and appear in mechanisms/registry.py"
    )

    def __init__(self, registry_source: Optional[str] = None) -> None:
        self._registry_source = registry_source

    @property
    def registry_source(self) -> str:
        if self._registry_source is None:
            self._registry_source = _registry_source_default()
        return self._registry_source

    def check(self, source: SourceFile) -> Iterator[LintViolation]:
        # The registry module itself references every class by design.
        if pathlib.PurePath(source.path).name == "registry.py":
            return
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = {
                _base_terminal_name(base) for base in node.bases
            }
            if "Mechanism" not in base_names:
                continue
            if not _defines_run(node):
                continue  # still abstract; nothing to check
            assigned = _assigned_class_attrs(node)
            missing = [
                attr for attr in _REQUIRED_ATTRS if attr not in assigned
            ]
            if missing:
                yield self.violation(
                    source,
                    node,
                    f"concrete Mechanism subclass {node.name!r} does not "
                    f"declare {', '.join(missing)} in its class body; the "
                    f"registry and property auditors depend on all three",
                )
            if _is_library_path(source.path) and (
                node.name not in self.registry_source
            ):
                yield self.violation(
                    source,
                    node,
                    f"concrete Mechanism subclass {node.name!r} is not "
                    f"referenced by mechanisms/registry.py; register it "
                    f"(or suppress with a justification for non-registry "
                    f"wrappers)",
                )
