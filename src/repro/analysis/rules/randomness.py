"""Rule ``no-global-random``: all randomness must flow through Generators.

The purity contract (ARCHITECTURE.md, "The purity invariant") requires
every stochastic component to draw from an explicitly passed
:class:`numpy.random.Generator`, derived from a named stream in
:mod:`repro.utils.rng`.  Global-state randomness breaks replayability:
the truthfulness auditors re-run mechanisms against counterfactual bids
and compare utilities, which is meaningless if two runs of the same
inputs can differ.

Flagged:

* ``import random`` / ``from random import ...`` (the stdlib module is a
  process-global PRNG);
* calls through the stdlib module, e.g. ``random.choice(...)``;
* ``np.random.seed(...)`` (mutates numpy's hidden global state);
* legacy global draws, e.g. ``np.random.uniform(...)``.

Allowed: ``np.random.default_rng``, ``np.random.Generator``,
``np.random.SeedSequence`` and the BitGenerator constructors — the
modern, explicit-state API.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.rules.base import (
    LintRule,
    LintViolation,
    SourceFile,
    dotted_name,
)

#: ``numpy.random`` attributes that do not touch global state.
_ALLOWED_NP_RANDOM = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "SFC64",
        "MT19937",
    }
)


class NoGlobalRandomRule(LintRule):
    """Ban the stdlib ``random`` module and numpy's legacy global PRNG."""

    name = "no-global-random"
    code = "REP001"
    description = (
        "randomness must come from np.random.default_rng / a passed-in "
        "Generator (utils/rng.py), never global PRNG state"
    )

    def check(self, source: SourceFile) -> Iterator[LintViolation]:
        numpy_aliases: Set[str] = {"numpy"}
        random_aliases: Set[str] = set()

        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        numpy_aliases.add(alias.asname or "numpy")
                    elif alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        random_aliases.add(alias.asname or alias.name)
                        yield self.violation(
                            source,
                            node,
                            "import of the stdlib 'random' module; use "
                            "np.random.default_rng / repro.utils.rng "
                            "streams instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.violation(
                        source,
                        node,
                        "from-import of the stdlib 'random' module; use "
                        "np.random.default_rng / repro.utils.rng streams "
                        "instead",
                    )
                elif node.module in ("numpy.random", "numpy"):
                    for alias in node.names:
                        if (
                            node.module == "numpy.random"
                            and alias.name not in _ALLOWED_NP_RANDOM
                        ):
                            yield self.violation(
                                source,
                                node,
                                f"from-import of legacy global "
                                f"numpy.random.{alias.name}; only the "
                                f"Generator API "
                                f"({', '.join(sorted(_ALLOWED_NP_RANDOM))})"
                                f" is allowed",
                            )

        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_name(node.func)
            if chain is None:
                continue
            parts = chain.split(".")
            # random.<fn>(...) through the stdlib module (or an alias).
            if len(parts) >= 2 and (
                parts[0] == "random" or parts[0] in random_aliases
            ):
                if parts[0] == "random" and parts[1] in _ALLOWED_NP_RANDOM:
                    # e.g. a local ``random = np.random`` alias calling
                    # default_rng; tolerated.
                    continue
                yield self.violation(
                    source,
                    node,
                    f"call to global-state '{chain}'; draw from an "
                    f"explicit np.random.Generator instead",
                )
            # np.random.<fn>(...) outside the Generator API.
            elif (
                len(parts) >= 3
                and parts[0] in numpy_aliases
                and parts[1] == "random"
                and parts[2] not in _ALLOWED_NP_RANDOM
            ):
                yield self.violation(
                    source,
                    node,
                    f"call to legacy global '{chain}'; only "
                    f"np.random.default_rng / Generator / SeedSequence "
                    f"touch no global state",
                )
