"""Rule ``noqa-justification``: every suppression must say why.

A ``# repro: noqa-<rule>`` comment silences a real invariant check, so
it carries the same review burden as the code it excuses.  The
convention (rules/base.py module docstring) is a free-form justification
after ``--``::

    if a == b:  # repro: noqa-no-float-equality -- exact sentinel compare

This rule makes the convention mandatory: a noqa comment with no
``-- <why>`` suffix — or a blanket ``# repro: noqa`` with no rule list at
all — is itself a violation.  Blanket suppressions are flagged even when
justified, because they silence rules that do not exist yet; a
suppression should always name the rule it excuses.

Comments are found with :mod:`tokenize`, not a per-line regex, so noqa
text inside string literals (lint-rule documentation, test fixtures)
does not fire.
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.analysis.rules.base import (
    _NOQA_RE,
    LintRule,
    LintViolation,
    SourceFile,
)

#: A justification is anything non-empty after ``--``.
_JUSTIFIED_RE = re.compile(r"--\s*\S")


class NoqaJustificationRule(LintRule):
    """Require ``-- <why>`` on every ``# repro: noqa`` suppression."""

    name = "noqa-justification"
    code = "REP008"
    description = (
        "every '# repro: noqa-<rule>' suppression must name the rule it "
        "excuses and carry a '-- <why>' justification"
    )

    def _violation_at(
        self, source: SourceFile, line: int, col: int, message: str
    ) -> LintViolation:
        return LintViolation(
            path=source.path,
            line=line,
            col=col,
            code=self.code,
            rule=self.name,
            message=message,
        )

    def check(self, source: SourceFile) -> Iterator[LintViolation]:
        for line, col, text in source.comment_tokens():
            match = _NOQA_RE.search(text)
            if match is None:
                continue
            at = col + match.start()
            if match.group("rules") is None:
                yield self._violation_at(
                    source,
                    line,
                    at,
                    "blanket '# repro: noqa' suppresses every rule on "
                    "this line; name the rule ('noqa-<rule>') and "
                    "justify it with '-- <why>'",
                )
                continue
            if not _JUSTIFIED_RE.search(text[match.end():]):
                yield self._violation_at(
                    source,
                    line,
                    at,
                    f"suppression of '{match.group('rules')}' has no "
                    f"justification; append '-- <why>'",
                )
