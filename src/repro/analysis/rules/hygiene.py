"""General-hygiene rules: no bare ``except``, no mutable default args.

These two are classic Python footguns with repo-specific teeth:

* a bare ``except:`` swallows :class:`KeyboardInterrupt` during
  hour-long sweep runs and hides :class:`~repro.errors.ReproError`
  subclasses the experiment harness relies on for error routing;
* a mutable default argument (``def f(x, acc=[])``) is module-global
  hidden state — the exact class of bug the purity contract exists to
  keep out of mechanism code.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import LintRule, LintViolation, SourceFile


class NoBareExceptRule(LintRule):
    """Ban ``except:`` without an exception type."""

    name = "no-bare-except"
    code = "REP005"
    description = (
        "bare 'except:' swallows KeyboardInterrupt and hides typed "
        "ReproError routing; name the exception class"
    )

    def check(self, source: SourceFile) -> Iterator[LintViolation]:
        for node in ast.walk(source.tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                yield self.violation(
                    source,
                    node,
                    "bare 'except:'; catch a specific exception type "
                    "(ReproError at API boundaries, Exception at worst)",
                )


#: Calls producing fresh mutable containers still shared across calls
#: when used as defaults.
_MUTABLE_FACTORIES = frozenset({"list", "dict", "set", "bytearray"})


def _is_mutable_default(node: ast.AST) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(node, (ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_FACTORIES
    ):
        return True
    return False


class NoMutableDefaultRule(LintRule):
    """Ban mutable default argument values."""

    name = "no-mutable-default"
    code = "REP006"
    description = (
        "mutable default arguments are shared, hidden state; default to "
        "None and create the container inside the function"
    )

    def check(self, source: SourceFile) -> Iterator[LintViolation]:
        for node in ast.walk(source.tree):
            if not isinstance(
                node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                continue
            args = node.args
            for default in [*args.defaults, *args.kw_defaults]:
                if default is not None and _is_mutable_default(default):
                    label = getattr(node, "name", "<lambda>")
                    yield self.violation(
                        source,
                        default,
                        f"mutable default argument in {label!r}; use "
                        f"None and build the container in the body",
                    )
