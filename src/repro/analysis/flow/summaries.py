"""Per-function dataflow summaries extracted from one module's AST.

The flow engine never re-walks raw ASTs across modules.  Each module is
parsed once into a :class:`ModuleSummary` of plain, picklable
dataclasses — the unit the CI cache stores — and every interprocedural
rule (REP010–REP015) operates on summaries alone.  A summary records,
per function:

* call sites, with enough shape (bare name / dotted / method-on-local)
  for the engine to resolve them against the module graph;
* writes to module-level state (``global`` rebinds and mutator-method
  calls or subscript stores on module-level mutables);
* ambient RNG constructions, ``time``/environment reads, telemetry
  calls nested in loops, and ``for``-loops that iterate a set while
  accumulating floats or filling a dict — the raw material of the six
  concurrency/determinism rules.

Local variable types are tracked just far enough to resolve method
calls: ``x = ClassName(...)`` assignments, parameter annotations, and
the element types of annotated ``Sequence``/``Tuple`` parameters when
iterated.
"""

from __future__ import annotations

import ast
import dataclasses
import hashlib
import re
from typing import Dict, List, Optional, Tuple

from repro.analysis.rules.base import dotted_name

#: Methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset(
    {
        "add",
        "append",
        "clear",
        "discard",
        "extend",
        "insert",
        "pop",
        "popitem",
        "remove",
        "setdefault",
        "update",
    }
)

#: Container constructors whose module-level bindings count as mutable.
_MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "defaultdict", "deque", "Counter", "OrderedDict"}
)

#: Fully-qualified callables that create or reseed an ambient RNG.
AMBIENT_RNG_CALLS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.seed",
        "random.Random",
        "random.seed",
    }
)

#: Fully-qualified callables that read wall-clock time.
TIME_READ_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.date.today",
    }
)

#: Environment reads (calls and subscripts on ``os.environ``).
ENV_READ_CALLS = frozenset({"os.getenv", "os.environ.get"})

#: Constructors whose instances are live shared-memory handles.  A
#: handle pickled across a worker boundary ships a second owner; the
#: discipline is to pass ``segment.name`` and re-attach worker-side.
SHARED_MEMORY_CTORS = frozenset(
    {
        "multiprocessing.shared_memory.SharedMemory",
        "multiprocessing.shared_memory.ShareableList",
    }
)

#: Telemetry emitters of :mod:`repro.obs` (``repro.obs.<name>``).
TELEMETRY_EMITTERS = frozenset({"span", "counter", "observe", "gauge"})

#: Extracts the first element type of ``Sequence[X]`` / ``Tuple[X, ...]``.
_ELEMENT_RE = re.compile(
    r"^(?:typing\.)?(?:Sequence|Tuple|List|Iterable|Iterator|Set|FrozenSet)"
    r"\[\s*([A-Za-z_][A-Za-z0-9_.]*)"
)


@dataclasses.dataclass(frozen=True)
class CallSite:
    """One call expression, pre-resolution.

    ``kind`` is ``"name"`` (bare ``f(...)``), ``"dotted"``
    (``mod.attr(...)`` — ``name`` holds the full dotted path),
    ``"method"`` (``var.m(...)`` — ``name`` is the local variable,
    ``attr`` the method), or ``"ctor_method"``
    (``ClassName(...).m(...)`` — ``name`` is the class name).
    """

    line: int
    col: int
    kind: str
    name: str
    attr: str = ""


@dataclasses.dataclass(frozen=True)
class GlobalWrite:
    """A write to module-level state: ``kind`` is ``rebind`` | ``mutate``."""

    line: int
    col: int
    name: str
    kind: str


@dataclasses.dataclass(frozen=True)
class FlaggedSite:
    """A located fact with a short description (rng/time/telemetry/...)."""

    line: int
    col: int
    what: str


@dataclasses.dataclass(frozen=True)
class SubmitSite:
    """One ``executor.submit(f, ...)`` worker-boundary crossing.

    ``callable_kind`` is ``"name"`` (resolvable bare name),
    ``"lambda"``, ``"nested"`` (function defined inside the submitting
    function), or ``"opaque"`` (anything else).  ``bad_args`` lists
    positional arguments that are lambdas or locally-defined functions
    — values that cannot cross a process boundary.  ``handle_args``
    lists arguments that are live shared-memory handles (locals
    constructed via ``SharedMemory(...)``/``ShareableList(...)``):
    pickling the handle ships a second owner to the worker instead of
    attaching by name, so close/unlink accounting double-frees — pass
    ``segment.name`` and re-attach worker-side (which reads as an
    attribute access and stays clean).
    """

    line: int
    col: int
    callable_kind: str
    callable_name: str
    bad_args: Tuple[str, ...] = ()
    handle_args: Tuple[str, ...] = ()


@dataclasses.dataclass(frozen=True)
class FunctionSummary:
    """Everything the flow rules need to know about one function."""

    qualname: str
    line: int
    params: Tuple[Tuple[str, str], ...]  # (name, annotation or "")
    calls: Tuple[CallSite, ...]
    local_types: Tuple[Tuple[str, str], ...]  # var -> ClassName / @elem:var
    global_writes: Tuple[GlobalWrite, ...]
    rng_creations: Tuple[FlaggedSite, ...]
    time_reads: Tuple[FlaggedSite, ...]
    telemetry_in_loop: Tuple[FlaggedSite, ...]
    set_reductions: Tuple[FlaggedSite, ...]
    submits: Tuple[SubmitSite, ...]
    #: Names bound locally (assignment/loop/with targets) — a mutation of
    #: one of these is not a mutation of a same-named module global.
    assigned_locals: Tuple[str, ...] = ()

    def param_annotation(self, name: str) -> str:
        for param, annotation in self.params:
            if param == name:
                return annotation
        return ""

    def local_type(self, name: str) -> str:
        for var, type_name in self.local_types:
            if var == name:
                return type_name
        return ""


@dataclasses.dataclass(frozen=True)
class ClassSummary:
    """A class definition: resolved later against the module graph."""

    name: str
    line: int
    bases: Tuple[str, ...]  # raw dotted names as written
    methods: Tuple[str, ...]


@dataclasses.dataclass(frozen=True)
class ModuleSummary:
    """One module's picklable flow summary (the cache unit)."""

    module: str
    path: str
    content_hash: str
    imports: Tuple[Tuple[str, str], ...]  # local alias -> dotted target
    functions: Tuple[FunctionSummary, ...]
    classes: Tuple[ClassSummary, ...]
    mutable_globals: Tuple[Tuple[str, int], ...]  # name -> lineno

    def import_map(self) -> Dict[str, str]:
        return dict(self.imports)

    def function_map(self) -> Dict[str, FunctionSummary]:
        return {fn.qualname: fn for fn in self.functions}

    def class_map(self) -> Dict[str, ClassSummary]:
        return {cls.name: cls for cls in self.classes}


def content_hash(source: str) -> str:
    """Stable cache key of one module's source text."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def element_type(annotation: str) -> str:
    """``Sequence[MechanismSpec]`` → ``MechanismSpec``; ``""`` if opaque."""
    match = _ELEMENT_RE.match(annotation)
    return match.group(1) if match else ""


def _is_mutable_binding(value: ast.AST) -> bool:
    if isinstance(value, (ast.List, ast.Dict, ast.Set)):
        return True
    if isinstance(value, ast.ListComp) or isinstance(value, ast.SetComp):
        return True
    if isinstance(value, ast.DictComp):
        return True
    if isinstance(value, ast.Call):
        name = dotted_name(value.func)
        if name is not None:
            return name.split(".")[-1] in _MUTABLE_CONSTRUCTORS
    return False


def _is_set_expression(node: ast.AST, set_locals: Dict[str, bool]) -> bool:
    """Whether iterating ``node`` visits elements in set (hash) order."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in {
            "difference",
            "intersection",
            "symmetric_difference",
            "union",
        }:
            receiver = node.func.value
            if isinstance(receiver, ast.Name):
                return set_locals.get(receiver.id, False)
            return _is_set_expression(receiver, set_locals)
    if isinstance(node, ast.Name):
        return set_locals.get(node.id, False)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expression(node.left, set_locals) or _is_set_expression(
            node.right, set_locals
        )
    return False


def _reduction_in_body(body: List[ast.stmt]) -> Optional[str]:
    """A float-accumulation / dict-fill statement inside a loop body."""
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.AugAssign) and isinstance(
                node.op, (ast.Add, ast.Sub, ast.Mult)
            ):
                target = dotted_name(node.target)
                return f"accumulates into {target or 'a value'!s}"
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        base = dotted_name(target.value)
                        return f"fills mapping {base or 'subscript'!s}"
    return None


class _FunctionVisitor(ast.NodeVisitor):
    """Walks one function body, building its :class:`FunctionSummary`."""

    def __init__(
        self,
        qualname: str,
        node: ast.AST,
        import_map: Dict[str, str],
    ) -> None:
        self.qualname = qualname
        self.node = node
        self.imports = import_map
        self.calls: List[CallSite] = []
        self.local_types: Dict[str, str] = {}
        self.global_names: set = set()
        self.global_writes: List[GlobalWrite] = []
        self.rng_creations: List[FlaggedSite] = []
        self.time_reads: List[FlaggedSite] = []
        self.telemetry_in_loop: List[FlaggedSite] = []
        self.set_reductions: List[FlaggedSite] = []
        self.submits: List[SubmitSite] = []
        self.nested_defs: set = set()
        self.assigned_locals: set = set()
        self._loop_depth = 0
        self._set_locals: Dict[str, bool] = {}
        self.params: List[Tuple[str, str]] = []
        args = getattr(node, "args", None)
        if args is not None:
            every = list(args.posonlyargs) + list(args.args) + list(
                args.kwonlyargs
            )
            for arg in every:
                annotation = ""
                if arg.annotation is not None:
                    annotation = ast.unparse(arg.annotation)
                self.params.append((arg.arg, annotation))

    # -- helpers -------------------------------------------------------

    def _resolve_dotted(self, name: str) -> str:
        """Expand the leading alias of ``name`` through the import map."""
        head, _, rest = name.partition(".")
        target = self.imports.get(head)
        if target is None:
            return name
        return f"{target}.{rest}" if rest else target

    def _callable_kind(self, func: ast.AST) -> Tuple[str, str]:
        if isinstance(func, ast.Lambda):
            return "lambda", "<lambda>"
        if isinstance(func, ast.Name):
            if func.id in self.nested_defs:
                return "nested", func.id
            return "name", func.id
        dotted = dotted_name(func)
        if dotted is not None:
            return "dotted", dotted
        return "opaque", ast.unparse(func)[:40]

    def _record_call(self, node: ast.Call) -> None:
        func = node.func
        line, col = node.lineno, node.col_offset
        if isinstance(func, ast.Name):
            if func.id not in self.nested_defs:
                self.calls.append(CallSite(line, col, "name", func.id))
            resolved = self._resolve_dotted(func.id)
        elif isinstance(func, ast.Attribute):
            dotted = dotted_name(func)
            if dotted is not None:
                head, _, rest = dotted.partition(".")
                if head in {p for p, _ in self.params} or (
                    head in self.local_types
                ):
                    if "." not in rest and rest:
                        self.calls.append(
                            CallSite(line, col, "method", head, rest)
                        )
                elif head == "self" and rest and "." not in rest:
                    self.calls.append(CallSite(line, col, "method", "self", rest))
                else:
                    self.calls.append(CallSite(line, col, "dotted", dotted))
                resolved = self._resolve_dotted(dotted)
            else:
                resolved = ""
                if isinstance(func.value, ast.Call):
                    inner = dotted_name(func.value.func)
                    if inner is not None:
                        self.calls.append(
                            CallSite(line, col, "ctor_method", inner, func.attr)
                        )
        else:
            resolved = ""

        if resolved in AMBIENT_RNG_CALLS:
            self.rng_creations.append(FlaggedSite(line, col, resolved))
        if resolved in TIME_READ_CALLS:
            self.time_reads.append(FlaggedSite(line, col, resolved))
        if resolved in ENV_READ_CALLS:
            self.time_reads.append(FlaggedSite(line, col, resolved))
        if self._loop_depth > 0:
            parts = resolved.rsplit(".", 1)
            if (
                len(parts) == 2
                and parts[0] == "repro.obs"
                and parts[1] in TELEMETRY_EMITTERS
            ):
                self.telemetry_in_loop.append(
                    FlaggedSite(line, col, resolved)
                )

        if isinstance(func, ast.Attribute) and func.attr == "submit":
            self._record_submit(node)

    def _record_submit(self, node: ast.Call) -> None:
        if not node.args:
            return
        kind, name = self._callable_kind(node.args[0])
        bad: List[str] = []
        handles: List[str] = []
        payload = list(node.args[1:]) + [kw.value for kw in node.keywords]
        for arg in payload:
            if isinstance(arg, ast.Lambda):
                bad.append("<lambda>")
            elif isinstance(arg, ast.Name):
                if arg.id in self.nested_defs:
                    bad.append(arg.id)
                elif self._is_shared_memory_local(arg.id):
                    # Passing `segment` ships the live handle; passing
                    # `segment.name` is an Attribute node and stays
                    # clean — exactly the by-name attach discipline.
                    handles.append(arg.id)
        self.submits.append(
            SubmitSite(
                node.lineno,
                node.col_offset,
                callable_kind=kind,
                callable_name=name,
                bad_args=tuple(bad),
                handle_args=tuple(handles),
            )
        )

    def _is_shared_memory_local(self, name: str) -> bool:
        ctor = self.local_types.get(name, "")
        if not ctor or ctor.startswith("@elem:"):
            return False
        return self._resolve_dotted(ctor) in SHARED_MEMORY_CTORS

    # -- statements ----------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.global_names.update(node.names)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if node is not self.node:
            self.nested_defs.add(node.name)
            return  # nested defs are summarised separately
        self.generic_visit(node)

    visit_AsyncFunctionDef = visit_FunctionDef  # type: ignore[assignment]

    def visit_Lambda(self, node: ast.Lambda) -> None:
        return  # bodies of lambdas are opaque to the summary

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Name):
                if target.id not in self.global_names:
                    self.assigned_locals.add(target.id)
                if target.id in self.global_names:
                    self.global_writes.append(
                        GlobalWrite(
                            node.lineno, node.col_offset, target.id, "rebind"
                        )
                    )
                if isinstance(node.value, ast.Call):
                    callee = dotted_name(node.value.func)
                    # A constructor call, possibly module-qualified
                    # (``SharedMemory(...)``, ``shm.SharedMemory(...)``):
                    # the *class* segment is what must be capitalised.
                    if (
                        callee is not None
                        and callee.rsplit(".", 1)[-1][:1].isupper()
                    ):
                        self.local_types[target.id] = callee
                self._set_locals[target.id] = _is_set_expression(
                    node.value, self._set_locals
                )
            elif isinstance(target, ast.Subscript):
                root = target.value
                if (
                    isinstance(root, ast.Name)
                    and root.id in self.global_names
                ):
                    self.global_writes.append(
                        GlobalWrite(
                            node.lineno, node.col_offset, root.id, "mutate"
                        )
                    )
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if isinstance(node.target, ast.Name) and node.annotation is not None:
            annotation = ast.unparse(node.annotation)
            self.local_types.setdefault(node.target.id, annotation)
            if annotation.startswith(("Set[", "FrozenSet[", "set[")):
                self._set_locals[node.target.id] = True
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        self._record_call(node)
        if isinstance(node.func, ast.Attribute):
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Name)
                and node.func.attr in MUTATOR_METHODS
            ):
                self.global_writes.append(
                    GlobalWrite(
                        node.lineno, node.col_offset, receiver.id, "mutate"
                    )
                )
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        dotted = dotted_name(node.value)
        if dotted == "os.environ":
            self.time_reads.append(
                FlaggedSite(node.lineno, node.col_offset, "os.environ[...]")
            )
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        if isinstance(node.target, ast.Name):
            self.assigned_locals.add(node.target.id)
            if isinstance(node.iter, ast.Name):
                self.local_types.setdefault(
                    node.target.id, f"@elem:{node.iter.id}"
                )
        if _is_set_expression(node.iter, self._set_locals):
            reduction = _reduction_in_body(node.body)
            if reduction is not None:
                self.set_reductions.append(
                    FlaggedSite(
                        node.lineno,
                        node.col_offset,
                        f"set iteration {reduction}",
                    )
                )
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_While(self, node: ast.While) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if isinstance(node.target, ast.Name) and isinstance(
            node.iter, ast.Name
        ):
            self.local_types.setdefault(
                node.target.id, f"@elem:{node.iter.id}"
            )
        self.generic_visit(node)

    def _visit_comp_expr(self, node: ast.AST) -> None:
        # Generators bind the element variables the body uses, so they
        # must be visited first — AST field order is body-first.
        for generator in node.generators:  # type: ignore[attr-defined]
            self.visit(generator)
        for field in ("key", "value", "elt"):
            child = getattr(node, field, None)
            if child is not None:
                self.visit(child)

    visit_ListComp = _visit_comp_expr  # type: ignore[assignment]
    visit_SetComp = _visit_comp_expr  # type: ignore[assignment]
    visit_DictComp = _visit_comp_expr  # type: ignore[assignment]
    visit_GeneratorExp = _visit_comp_expr  # type: ignore[assignment]

    def summary(self) -> FunctionSummary:
        self.visit(self.node)
        return FunctionSummary(
            qualname=self.qualname,
            line=self.node.lineno,
            params=tuple(self.params),
            calls=tuple(self.calls),
            local_types=tuple(sorted(self.local_types.items())),
            global_writes=tuple(self.global_writes),
            rng_creations=tuple(self.rng_creations),
            time_reads=tuple(self.time_reads),
            telemetry_in_loop=tuple(self.telemetry_in_loop),
            set_reductions=tuple(self.set_reductions),
            submits=tuple(self.submits),
            assigned_locals=tuple(sorted(self.assigned_locals)),
        )


def _module_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else alias.name.split(".")[0]
                imports[local] = target
        elif isinstance(node, ast.ImportFrom):
            if node.module is None or node.level:
                continue  # relative imports unused in this tree
            for alias in node.names:
                local = alias.asname or alias.name
                imports[local] = f"{node.module}.{alias.name}"
    return imports


def summarize_module(
    module: str, path: str, source: str
) -> ModuleSummary:
    """Parse ``source`` and build its :class:`ModuleSummary`.

    Raises :class:`SyntaxError` for unparsable input (the driver turns
    that into a REP000 finding, mirroring the single-file engine).
    """
    tree = ast.parse(source)
    imports = _module_imports(tree)

    functions: List[FunctionSummary] = []
    classes: List[ClassSummary] = []
    mutable_globals: List[Tuple[str, int]] = []

    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(
                _FunctionVisitor(node.name, node, imports).summary()
            )
        elif isinstance(node, ast.ClassDef):
            methods: List[str] = []
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    methods.append(item.name)
                    functions.append(
                        _FunctionVisitor(
                            f"{node.name}.{item.name}", item, imports
                        ).summary()
                    )
            bases = tuple(
                name
                for name in (dotted_name(base) for base in node.bases)
                if name is not None
            )
            classes.append(
                ClassSummary(
                    name=node.name,
                    line=node.lineno,
                    bases=bases,
                    methods=tuple(methods),
                )
            )
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and _is_mutable_binding(
                    node.value
                ):
                    mutable_globals.append((target.id, node.lineno))
        elif isinstance(node, ast.AnnAssign):
            if (
                isinstance(node.target, ast.Name)
                and node.value is not None
                and _is_mutable_binding(node.value)
            ):
                mutable_globals.append((node.target.id, node.lineno))

    return ModuleSummary(
        module=module,
        path=path,
        content_hash=content_hash(source),
        imports=tuple(sorted(imports.items())),
        functions=tuple(functions),
        classes=tuple(classes),
        mutable_globals=tuple(mutable_globals),
    )
