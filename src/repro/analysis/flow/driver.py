"""Orchestration: build the graph, run the rules, apply suppressions.

:func:`run_flow` is the single entry point behind both
``repro-crowd lint --flow`` and ``python -m repro.analysis --flow``.
It builds the module graph (through a content-hash summary cache when
``cache_dir`` is given — CI restores the directory between runs, so an
unchanged module costs one hash instead of one AST walk), runs
REP010–REP015, honours per-line ``# repro: noqa-REP01x -- why``
comments exactly like the single-file engine, and finally splits the
findings against the committed baseline file.
"""

from __future__ import annotations

import dataclasses
import pathlib
import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.flow.baseline import (
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from repro.analysis.flow.engine import FlowEngine
from repro.analysis.flow.modules import ModuleGraph, build_module_graph
from repro.analysis.flow.rules import run_flow_rules
from repro.analysis.flow.summaries import (
    ModuleSummary,
    content_hash,
    summarize_module,
)
from repro.analysis.linter import display_path
from repro.analysis.rules.base import LintViolation, SourceFile

#: Bumped whenever the summary format changes, invalidating caches.
CACHE_VERSION = "flow-cache/2"  # /2: SubmitSite.handle_args (shared-memory handles)

#: Default scan root: the package sources (tests exercise the analyzer,
#: they are not its subject — fixture code would drown the signal).
DEFAULT_FLOW_ROOT = "src"


@dataclasses.dataclass(frozen=True)
class FlowReport:
    """Everything one flow pass produced."""

    violations: Tuple[LintViolation, ...]
    suppressed: Tuple[LintViolation, ...]
    unused_baseline: Tuple[BaselineEntry, ...]
    modules: int
    functions: int
    cache_hits: int

    @property
    def clean(self) -> bool:
        """Whether CI should pass: no finding outside the baseline."""
        return not self.violations


class _SummaryCache:
    """Content-hash keyed pickle cache of module summaries."""

    def __init__(self, directory: pathlib.Path) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.hits = 0

    def _key_path(self, source: str) -> pathlib.Path:
        digest = content_hash(CACHE_VERSION + "\n" + source)
        return self.directory / f"{digest}.pkl"

    def load(
        self, path: pathlib.Path, module: str, source: str
    ) -> ModuleSummary:
        cached = self._key_path(source)
        if cached.exists():
            try:
                summary = pickle.loads(cached.read_bytes())
                if (
                    isinstance(summary, ModuleSummary)
                    and summary.module == module
                ):
                    self.hits += 1
                    return summary
            except Exception:
                pass  # corrupt cache entry: fall through and rebuild
        summary = summarize_module(module, display_path(path), source)
        cached.write_bytes(pickle.dumps(summary, protocol=2))
        return summary


def _syntax_violations(graph: ModuleGraph) -> List[LintViolation]:
    return [
        LintViolation(
            path=failure.path,
            line=failure.line,
            col=0,
            code="REP000",
            rule="syntax-error",
            message=f"file does not parse: {failure.message}",
        )
        for failure in graph.failures
    ]


def _drop_noqa(
    violations: Sequence[LintViolation],
) -> List[LintViolation]:
    """Honour per-line ``# repro: noqa-...`` comments in flagged files."""
    kept: List[LintViolation] = []
    parsed: Dict[str, Optional[SourceFile]] = {}
    for violation in violations:
        if violation.path not in parsed:
            source_file: Optional[SourceFile] = None
            try:
                text = pathlib.Path(violation.path).read_text(
                    encoding="utf-8"
                )
                source_file = SourceFile.parse(text, path=violation.path)
            except (OSError, SyntaxError):
                source_file = None
            parsed[violation.path] = source_file
        source_file = parsed[violation.path]
        if source_file is not None and (
            source_file.is_suppressed(violation.line, violation.rule)
            or source_file.is_suppressed(
                violation.line, violation.code.lower()
            )
        ):
            continue
        kept.append(violation)
    return kept


def build_graph(
    root: pathlib.Path,
    cache_dir: Optional[pathlib.Path] = None,
) -> Tuple[ModuleGraph, int]:
    """Build (or cache-restore) the module graph under ``root``."""
    cache = _SummaryCache(cache_dir) if cache_dir is not None else None
    graph = build_module_graph(
        pathlib.Path(root),
        loader=cache.load if cache is not None else None,
    )
    return graph, (cache.hits if cache is not None else 0)


def run_flow(
    root: Optional[pathlib.Path] = None,
    baseline_path: Optional[pathlib.Path] = None,
    cache_dir: Optional[pathlib.Path] = None,
) -> FlowReport:
    """One full interprocedural pass; the ``lint --flow`` backend.

    Raises :class:`~repro.analysis.flow.baseline.BaselineError` for a
    baseline file that exists but cannot be trusted — a missing file is
    simply an empty baseline.
    """
    graph, cache_hits = build_graph(
        pathlib.Path(root or DEFAULT_FLOW_ROOT), cache_dir=cache_dir
    )
    engine = FlowEngine(graph)
    found = _syntax_violations(graph) + run_flow_rules(engine)
    found = _drop_noqa(sorted(found))

    entries: List[BaselineEntry] = []
    if baseline_path is not None and pathlib.Path(baseline_path).exists():
        entries = load_baseline(pathlib.Path(baseline_path))
    fresh, suppressed, unused = apply_baseline(found, entries)

    return FlowReport(
        violations=tuple(fresh),
        suppressed=tuple(suppressed),
        unused_baseline=tuple(unused),
        modules=len(graph.modules),
        functions=len(engine.functions),
        cache_hits=cache_hits,
    )
