"""The interprocedural rules REP010–REP015.

Unlike the single-file rules in :mod:`repro.analysis.rules`, these run
over a resolved :class:`~repro.analysis.flow.engine.FlowEngine` — each
``check`` sees the whole call graph at once.  Every violation carries a
``symbol`` (``module:qualname``) so the baseline file can match findings
across line-number drift.

Scopes
------
*Worker-reachable* means in the call-graph closure of any function
handed to ``executor.submit`` — code that executes inside a process-pool
worker, where an unpicklable value dies at the boundary, a mutated
module global silently diverges per process, and a wall-clock read
breaks byte-identical replay.  *Hot-path packages* are the per-bid inner
loops of the paper's mechanism and its solvers (``repro.mechanisms``,
``repro.matching``); *seeded packages* additionally cover the fault
layer, where every draw must come from a named stream.
"""

from __future__ import annotations

import abc
from typing import Iterator, List, Sequence, Tuple

from repro.analysis.flow.engine import FlowEngine
from repro.analysis.flow.summaries import FunctionSummary, ModuleSummary
from repro.analysis.rules.base import LintViolation

#: Packages whose inner loops are the paper's hot path.
HOT_PATH_PACKAGES = ("repro.mechanisms", "repro.matching")

#: Packages where every random draw must flow from a named RngStreams
#: handle (mechanism / solver / fault code).
SEEDED_PACKAGES = ("repro.mechanisms", "repro.matching", "repro.faults")

#: The sanctioned wall-clock choke point: the injectable Clock layer.
CLOCK_MODULE = "repro.obs.clock"

#: Modules sanctioned to touch the clock: the Clock layer itself, and
#: the deterministic retry policy (``repro.utils.retry``), whose only
#: time read — the :attr:`RetryPolicy.timeout` deadline — is routed
#: through :func:`repro.obs.clock.perf_seconds` so a replay harness can
#: freeze it; its backoff arithmetic is pure.
CLOCK_EXEMPT_MODULES = (CLOCK_MODULE, "repro.utils.retry")


def _in_packages(module: str, packages: Sequence[str]) -> bool:
    return any(
        module == package or module.startswith(package + ".")
        for package in packages
    )


class FlowRule(abc.ABC):
    """Base class of the interprocedural rules."""

    name: str = "abstract-flow"
    code: str = "REP0XX"
    description: str = ""

    @abc.abstractmethod
    def check(self, engine: FlowEngine) -> Iterator[LintViolation]:
        """Yield every violation found in ``engine``'s module graph."""

    def violation(
        self,
        summary: ModuleSummary,
        line: int,
        col: int,
        message: str,
        symbol: str,
    ) -> LintViolation:
        return LintViolation(
            path=summary.path,
            line=line,
            col=col,
            code=self.code,
            rule=self.name,
            message=message,
            symbol=symbol,
        )


def _each_function(
    engine: FlowEngine,
) -> Iterator[Tuple[str, ModuleSummary, FunctionSummary]]:
    for key, (summary, fn) in sorted(engine.functions.items()):
        yield key, summary, fn


class WorkerPickleSafetyRule(FlowRule):
    """REP010: values crossing the worker boundary must be picklable.

    A callable handed to ``executor.submit`` must be a module-level
    function (pickle serialises it by qualified name), and no argument
    may be a lambda or a function defined inside the submitting scope —
    both die in ``pickle.dumps`` at submission time, but only once a
    worker actually picks them up, which makes the failure intermittent
    under small pools.

    Shared-memory handles are the quieter variant: a local built via
    ``SharedMemory(...)`` *does* pickle (by name, reconstructing a
    second live handle in the worker), so nothing fails at submit time
    — but the worker's copy re-registers with the resource tracker and
    double-frees on close/unlink.  The discipline is to pass the
    segment *name* (``segment.name``, an attribute access the rule
    deliberately leaves clean) and re-attach inside the worker, as
    :func:`repro.experiments.sharding._run_shard` does.
    """

    name = "worker-pickle-safety"
    code = "REP010"
    description = (
        "callables and arguments passed to executor.submit must be "
        "module-level and picklable (no lambdas or nested functions); "
        "shared-memory handles must cross by segment name, not by value"
    )

    def check(self, engine: FlowEngine) -> Iterator[LintViolation]:
        for key, summary, fn in _each_function(engine):
            for submit in fn.submits:
                if submit.callable_kind in {"lambda", "nested"}:
                    yield self.violation(
                        summary,
                        submit.line,
                        submit.col,
                        f"worker callable {submit.callable_name!r} is a "
                        f"{submit.callable_kind} "
                        "function; process pools can only pickle "
                        "module-level functions",
                        symbol=key,
                    )
                for bad in submit.bad_args:
                    yield self.violation(
                        summary,
                        submit.line,
                        submit.col,
                        f"argument {bad!r} passed across the worker "
                        "boundary is not picklable (lambda or locally "
                        "defined function)",
                        symbol=key,
                    )
                for handle in submit.handle_args:
                    yield self.violation(
                        summary,
                        submit.line,
                        submit.col,
                        f"argument {handle!r} is a live shared-memory "
                        "handle; pickling it ships a second owner to "
                        "the worker (double close/unlink) — pass "
                        f"{handle}.name and attach by name worker-side",
                        symbol=key,
                    )


class WorkerMutableGlobalRule(FlowRule):
    """REP011: no mutable-global writes reachable from worker entrypoints.

    A module-level list/dict/set mutated inside a worker exists once
    *per process*: the parent never sees the write, two workers never
    see each other's, and a resumed run starts empty — state that looks
    shared but is not.  Rebinding via ``global`` is flagged regardless
    of mutability.
    """

    name = "worker-mutable-global"
    code = "REP011"
    description = (
        "module-level mutable state must not be written by code "
        "reachable from a process-pool worker entrypoint"
    )

    def check(self, engine: FlowEngine) -> Iterator[LintViolation]:
        reachable = engine.worker_reachable()
        for key, summary, fn in _each_function(engine):
            entry = reachable.get(key)
            if entry is None:
                continue
            mutable = {name for name, _ in summary.mutable_globals}
            params = {name for name, _ in fn.params}
            locals_ = set(fn.assigned_locals)
            for write in fn.global_writes:
                if write.kind == "mutate" and (
                    write.name not in mutable
                    or write.name in params
                    or write.name in locals_
                ):
                    continue
                yield self.violation(
                    summary,
                    write.line,
                    write.col,
                    f"{write.kind} of module-level {write.name!r} is "
                    f"reachable from worker entrypoint {entry!r}; "
                    "per-process copies of this state silently diverge",
                    symbol=key,
                )


class RngStreamDisciplineRule(FlowRule):
    """REP012: draws in mechanism/solver/fault code use named streams.

    Constructing or reseeding an ambient RNG
    (``np.random.default_rng``, ``random.seed``, ...) inside the seeded
    packages detaches the draw from the ``RngStreams`` hierarchy that
    makes sweeps replayable; randomness must arrive as an argument or
    through a named ``streams.get(...)`` handle.
    """

    name = "rng-stream-discipline"
    code = "REP012"
    description = (
        "mechanism/solver/fault code must not construct or reseed "
        "ambient RNGs; draws flow from named RngStreams handles"
    )

    def check(self, engine: FlowEngine) -> Iterator[LintViolation]:
        for key, summary, fn in _each_function(engine):
            if not _in_packages(summary.module, SEEDED_PACKAGES):
                continue
            for site in fn.rng_creations:
                yield self.violation(
                    summary,
                    site.line,
                    site.col,
                    f"ambient RNG {site.what!r} constructed in seeded "
                    "package code; take an rng argument or use a named "
                    "RngStreams handle",
                    symbol=key,
                )


class UnorderedReductionRule(FlowRule):
    """REP013: set iteration must not feed order-sensitive reductions.

    Float addition is not associative, and dict insertion order is
    payload: a loop over a ``set`` that accumulates floats or fills a
    mapping produces hash-order-dependent bytes, which breaks the
    bit-identical guarantee payments rely on.  Iterate
    ``sorted(the_set)`` instead.
    """

    name = "unordered-reduction"
    code = "REP013"
    description = (
        "iterating a set while accumulating floats or filling a dict "
        "makes the result hash-order dependent; iterate sorted(...)"
    )

    def check(self, engine: FlowEngine) -> Iterator[LintViolation]:
        for key, summary, fn in _each_function(engine):
            for site in fn.set_reductions:
                yield self.violation(
                    summary,
                    site.line,
                    site.col,
                    f"{site.what} in iteration order; wrap the iterable "
                    "in sorted(...) to fix the order",
                    symbol=key,
                )


class TelemetryInInnerLoopRule(FlowRule):
    """REP014: no span/metric emission inside hot-path inner loops.

    Telemetry per bid multiplies observer cost into the O(n·m) payment
    loops the benchmarks gate; spans and counters belong at phase
    boundaries (see ``mechanisms/greedy_core.py`` for the pattern).
    """

    name = "telemetry-in-inner-loop"
    code = "REP014"
    description = (
        "obs.span/counter/observe/gauge must not be called inside "
        "loops in mechanism/solver hot paths"
    )

    def check(self, engine: FlowEngine) -> Iterator[LintViolation]:
        for key, summary, fn in _each_function(engine):
            if not _in_packages(summary.module, HOT_PATH_PACKAGES):
                continue
            for site in fn.telemetry_in_loop:
                yield self.violation(
                    summary,
                    site.line,
                    site.col,
                    f"telemetry call {site.what!r} inside a loop on the "
                    "hot path; hoist it to the enclosing phase boundary",
                    symbol=key,
                )


class UnguardedTimeReadRule(FlowRule):
    """REP015: replay-critical code reads time only through the Clock layer.

    Worker-reachable code calling ``time.*``/``datetime.now`` or
    reading ``os.environ`` produces values that differ per run and per
    host, poisoning byte-identical resume; route reads through
    :mod:`repro.obs.clock` (``perf_seconds`` / an injected ``Clock``),
    which replay harnesses can freeze.
    """

    name = "unguarded-time-read"
    code = "REP015"
    description = (
        "worker-reachable code must read time/env through "
        "repro.obs.clock, not time.*/datetime.now/os.environ"
    )

    def check(self, engine: FlowEngine) -> Iterator[LintViolation]:
        reachable = engine.worker_reachable()
        for key, summary, fn in _each_function(engine):
            if summary.module in CLOCK_EXEMPT_MODULES:
                continue
            entry = reachable.get(key)
            if entry is None:
                continue
            for site in fn.time_reads:
                yield self.violation(
                    summary,
                    site.line,
                    site.col,
                    f"unguarded {site.what!r} read is reachable from "
                    f"worker entrypoint {entry!r}; use repro.obs.clock "
                    "so replay can inject a deterministic source",
                    symbol=key,
                )


#: Every flow rule, in code order.
ALL_FLOW_RULES: Tuple[type, ...] = (
    WorkerPickleSafetyRule,
    WorkerMutableGlobalRule,
    RngStreamDisciplineRule,
    UnorderedReductionRule,
    TelemetryInInnerLoopRule,
    UnguardedTimeReadRule,
)


def flow_rules() -> List[FlowRule]:
    """Instantiate all six interprocedural rules."""
    return [rule() for rule in ALL_FLOW_RULES]


def run_flow_rules(engine: FlowEngine) -> List[LintViolation]:
    """Run every flow rule over ``engine``; sorted findings."""
    violations: List[LintViolation] = []
    for rule in flow_rules():
        violations.extend(rule.check(engine))
    return sorted(violations)
