"""Baseline suppression file for grandfathered flow findings.

CI runs ``repro-crowd lint --flow`` against a committed baseline: a
finding listed there (matched on ``(code, path, symbol)`` — symbol
names survive the line-number drift that makes line-matched baselines
rot) is reported as *suppressed*, anything else fails the build.  Every
entry must carry a human justification; an unjustified entry fails to
load, so the file cannot silently accumulate excuses.

The intended steady state is an **empty** baseline — entries exist only
to land the analyzer ahead of a fix that needs its own PR.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Sequence, Tuple

from repro.analysis.rules.base import LintViolation
from repro.errors import ReproError

#: Format marker, bumped on incompatible changes.
BASELINE_SCHEMA = "repro-flow-baseline/1"

#: Justification stamped on entries created by ``--write-baseline``;
#: intentionally ugly so review catches entries nobody rewrote.
_GRANDFATHER_NOTE = "grandfathered by --write-baseline; fix or justify"


class BaselineError(ReproError):
    """A baseline file that cannot be trusted (bad schema, no why)."""


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One suppressed finding: what, where, and — mandatorily — why."""

    code: str
    path: str
    symbol: str
    justification: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.code, self.path, self.symbol)


def _entry_key(violation: LintViolation) -> Tuple[str, str, str]:
    return (violation.code, violation.path, violation.symbol)


def load_baseline(path: pathlib.Path) -> List[BaselineEntry]:
    """Read and validate a baseline file; raises :class:`BaselineError`."""
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise BaselineError(f"cannot read baseline {path}: {error}") from error
    if payload.get("schema") != BASELINE_SCHEMA:
        raise BaselineError(
            f"baseline {path} has schema {payload.get('schema')!r}; "
            f"expected {BASELINE_SCHEMA!r}"
        )
    entries: List[BaselineEntry] = []
    for index, raw in enumerate(payload.get("entries", [])):
        entry = BaselineEntry(
            code=str(raw.get("code", "")),
            path=str(raw.get("path", "")),
            symbol=str(raw.get("symbol", "")),
            justification=str(raw.get("justification", "")).strip(),
        )
        if not entry.code or not entry.path:
            raise BaselineError(
                f"baseline {path} entry {index} lacks code/path"
            )
        if not entry.justification:
            raise BaselineError(
                f"baseline {path} entry {index} ({entry.code} at "
                f"{entry.path}) has no justification; every suppressed "
                "finding must say why"
            )
        entries.append(entry)
    return entries


def write_baseline(
    path: pathlib.Path, violations: Sequence[LintViolation]
) -> None:
    """Write the current findings as a fresh baseline file."""
    entries = [
        {
            "code": violation.code,
            "path": violation.path,
            "symbol": violation.symbol,
            "justification": _GRANDFATHER_NOTE,
        }
        for violation in sorted(violations)
    ]
    payload = {"schema": BASELINE_SCHEMA, "entries": entries}
    pathlib.Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )


def apply_baseline(
    violations: Sequence[LintViolation],
    entries: Sequence[BaselineEntry],
) -> Tuple[List[LintViolation], List[LintViolation], List[BaselineEntry]]:
    """Split findings against the baseline.

    Returns ``(fresh, suppressed, unused)``: findings not covered by any
    entry, findings absorbed, and entries that matched nothing — stale
    entries that should be deleted (the finding they excused is gone).
    """
    by_key: Dict[Tuple[str, str, str], BaselineEntry] = {
        entry.key: entry for entry in entries
    }
    used: set = set()
    fresh: List[LintViolation] = []
    suppressed: List[LintViolation] = []
    for violation in violations:
        key = _entry_key(violation)
        if key in by_key:
            used.add(key)
            suppressed.append(violation)
        else:
            fresh.append(violation)
    unused = [entry for entry in entries if entry.key not in used]
    return fresh, suppressed, unused
