"""Module-graph construction: discover, name, and summarise a package.

Walks a source root (``src`` by default), maps every ``*.py`` file to
its dotted module name, and builds one :class:`ModuleSummary` per file,
optionally through a content-hash cache (see :mod:`.driver`).  The
result — a :class:`ModuleGraph` — is the engine's whole world: symbol
lookup, import-edge resolution, and class hierarchy all read from it.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Callable, Dict, List, Optional, Tuple

from repro.analysis.flow.summaries import ModuleSummary, summarize_module
from repro.analysis.linter import display_path, iter_python_files


@dataclasses.dataclass(frozen=True)
class SyntaxFailure:
    """A file the graph could not parse (reported as REP000)."""

    path: str
    line: int
    message: str


def module_name_for(path: pathlib.Path, root: pathlib.Path) -> Optional[str]:
    """Dotted module name of ``path`` relative to source ``root``.

    ``src/repro/matching/backend.py`` → ``repro.matching.backend``;
    package ``__init__.py`` files name the package itself.  Returns
    ``None`` for files outside ``root``.
    """
    try:
        relative = path.resolve().relative_to(root.resolve())
    except ValueError:
        return None
    parts = list(relative.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts.pop()
    return ".".join(parts) if parts else None


class ModuleGraph:
    """All module summaries of one source tree, keyed by dotted name."""

    def __init__(
        self,
        modules: Dict[str, ModuleSummary],
        failures: Tuple[SyntaxFailure, ...] = (),
    ) -> None:
        self.modules = modules
        self.failures = failures

    def __contains__(self, module: str) -> bool:
        return module in self.modules

    def get(self, module: str) -> Optional[ModuleSummary]:
        return self.modules.get(module)

    def split_symbol(self, dotted: str) -> Optional[Tuple[str, str]]:
        """Split ``repro.pkg.mod.symbol`` into ``(module, symbol)``.

        Uses longest-prefix module matching, so ``repro.obs`` (a package
        whose ``__init__`` re-exports symbols) resolves as a module with
        ``span`` as the symbol, not as a missing ``repro.obs.span``
        module.  Returns ``None`` when no prefix is a known module.
        """
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            module = ".".join(parts[:cut])
            if module in self.modules:
                symbol = ".".join(parts[cut:])
                return module, symbol
        return None


def build_module_graph(
    root: pathlib.Path,
    loader: Optional[
        Callable[[pathlib.Path, str, str], ModuleSummary]
    ] = None,
) -> ModuleGraph:
    """Summarise every module under ``root`` (a source directory).

    ``loader`` lets the driver interpose its content-hash cache: it
    receives ``(path, module, source)`` and returns the summary —
    defaulting to a plain :func:`summarize_module` call.
    """
    root = pathlib.Path(root)
    modules: Dict[str, ModuleSummary] = {}
    failures: List[SyntaxFailure] = []
    for path in iter_python_files([root]):
        module = module_name_for(path, root)
        if module is None:
            continue
        source = path.read_text(encoding="utf-8")
        shown = display_path(path)
        try:
            if loader is not None:
                summary = loader(path, module, source)
            else:
                summary = summarize_module(module, shown, source)
        except SyntaxError as error:
            failures.append(
                SyntaxFailure(
                    path=shown,
                    line=error.lineno or 1,
                    message=error.msg or "syntax error",
                )
            )
            continue
        modules[module] = summary
    return ModuleGraph(modules, failures=tuple(failures))
