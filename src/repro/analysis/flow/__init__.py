"""Interprocedural concurrency & determinism analysis (REP010–REP015).

The flow package proves, statically, the properties the paper's
truthfulness guarantees assume at scale: nothing unpicklable crosses a
process-pool boundary (REP010), no worker mutates module-level state
(REP011), every random draw in mechanism/solver/fault code flows from a
named ``RngStreams`` handle (REP012), no hot-path reduction depends on
set iteration order (REP013), no telemetry burns inside per-bid inner
loops (REP014), and replay-critical code reads time only through the
injectable clock layer (REP015).

Layering::

    modules.py    discover + name modules, build the graph
    summaries.py  one picklable dataflow summary per function (cached)
    engine.py     call resolution, class dispatch, worker reachability
    rules.py      REP010–REP015 over the engine
    baseline.py   committed (code, path, symbol)-matched suppressions
    driver.py     run_flow(): orchestrate, cache, noqa + baseline

The runtime counterpart — schedule-fuzzing over worker counts, chunk
orders, and matching backends — lives in
:func:`repro.analysis.sanitizer.check_parallel_determinism`.
"""

from repro.analysis.flow.baseline import (
    BASELINE_SCHEMA,
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.analysis.flow.driver import (
    DEFAULT_FLOW_ROOT,
    FlowReport,
    build_graph,
    run_flow,
)
from repro.analysis.flow.engine import FlowEngine
from repro.analysis.flow.modules import (
    ModuleGraph,
    build_module_graph,
    module_name_for,
)
from repro.analysis.flow.rules import (
    ALL_FLOW_RULES,
    FlowRule,
    flow_rules,
    run_flow_rules,
)
from repro.analysis.flow.summaries import (
    FunctionSummary,
    ModuleSummary,
    summarize_module,
)

__all__ = [
    "ALL_FLOW_RULES",
    "BASELINE_SCHEMA",
    "BaselineEntry",
    "BaselineError",
    "DEFAULT_FLOW_ROOT",
    "FlowEngine",
    "FlowReport",
    "FlowRule",
    "FunctionSummary",
    "ModuleGraph",
    "ModuleSummary",
    "apply_baseline",
    "build_graph",
    "build_module_graph",
    "flow_rules",
    "load_baseline",
    "module_name_for",
    "run_flow",
    "run_flow_rules",
    "summarize_module",
    "write_baseline",
]
