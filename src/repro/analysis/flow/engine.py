"""The interprocedural engine: call resolution and worker reachability.

Built once per run from a :class:`~repro.analysis.flow.modules
.ModuleGraph`, the engine answers the two questions every flow rule
reduces to:

* *what does this call site call?* — resolved through module import
  maps, local constructor types (``x = ClassName(...)``), parameter
  annotations (including ``Sequence[X]``/``Tuple[X, ...]`` element
  types for loop variables), and class-hierarchy dispatch: a call
  through a base-class-typed value targets the base method *and* every
  subclass override, so reachability is sound under polymorphism;
* *which functions can execute inside a worker process?* — breadth-
  first closure of the call graph from every worker entrypoint, where
  an entrypoint is the callable handed to ``executor.submit(...)``.

Resolution is deliberately conservative-but-bounded: calls into the
standard library or third-party code resolve to nothing (their effects
are captured by the per-function flag sites instead), and unresolvable
dynamic calls are dropped rather than widened to "everything".
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.flow.modules import ModuleGraph
from repro.analysis.flow.summaries import (
    CallSite,
    FunctionSummary,
    ModuleSummary,
    element_type,
)

#: Strips ``Optional[...]`` / quoted forward references from annotations.
_OPTIONAL_RE = re.compile(r"^(?:typing\.)?Optional\[(.+)\]$")


def clean_type(annotation: str) -> str:
    """Normalise an annotation string to a bare dotted type name."""
    text = annotation.strip().strip("'\"")
    match = _OPTIONAL_RE.match(text)
    if match:
        text = match.group(1).strip().strip("'\"")
    return text


class FlowEngine:
    """Resolved call graph plus worker-reachability over one module graph."""

    def __init__(self, graph: ModuleGraph) -> None:
        self.graph = graph
        #: ``module:qualname`` -> (module summary, function summary)
        self.functions: Dict[str, Tuple[ModuleSummary, FunctionSummary]] = {}
        #: ``module:Class`` -> class summary
        self.class_keys: Dict[str, object] = {}
        for summary in graph.modules.values():
            for fn in summary.functions:
                self.functions[f"{summary.module}:{fn.qualname}"] = (
                    summary,
                    fn,
                )
            for cls in summary.classes:
                self.class_keys[f"{summary.module}:{cls.name}"] = cls
        self._subclasses = self._build_subclasses()
        self._edges: Optional[Dict[str, FrozenSet[str]]] = None

    # -- symbol resolution ---------------------------------------------

    def _resolve_alias(self, summary: ModuleSummary, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        target = summary.import_map().get(head)
        if target is None:
            return dotted
        return f"{target}.{rest}" if rest else target

    def resolve_class(
        self, summary: ModuleSummary, name: str
    ) -> Optional[str]:
        """Resolve a (possibly dotted/aliased) class name to its key."""
        name = clean_type(name)
        if not name:
            return None
        if name in summary.class_map():
            return f"{summary.module}:{name}"
        resolved = self._resolve_alias(summary, name)
        split = self.graph.split_symbol(resolved)
        if split is None:
            return None
        module, symbol = split
        target = self.graph.get(module)
        if target is None or not symbol:
            return None
        head = symbol.split(".")[0]
        if head in target.class_map():
            return f"{module}:{head}"
        # Package re-export (``from repro.obs import Tracer`` style):
        # follow one level of from-import indirection.
        forwarded = target.import_map().get(head)
        if forwarded is not None and forwarded != resolved:
            return self.resolve_class(target, forwarded)
        return None

    def _build_subclasses(self) -> Dict[str, Set[str]]:
        direct: Dict[str, Set[str]] = {}
        for summary in self.graph.modules.values():
            for cls in summary.classes:
                child = f"{summary.module}:{cls.name}"
                for base in cls.bases:
                    base_key = self.resolve_class(summary, base)
                    if base_key is not None:
                        direct.setdefault(base_key, set()).add(child)
        closure: Dict[str, Set[str]] = {}
        for key in self.class_keys:
            seen: Set[str] = set()
            frontier = list(direct.get(key, ()))
            while frontier:
                child = frontier.pop()
                if child in seen:
                    continue
                seen.add(child)
                frontier.extend(direct.get(child, ()))
            closure[key] = seen
        return closure

    def method_targets(self, class_key: str, method: str) -> Set[str]:
        """Function keys a ``value.method()`` call may dispatch to.

        The defining class (walking up the base chain) plus every
        subclass override — dynamic dispatch widened to all overrides.
        """
        targets: Set[str] = set()
        seen: Set[str] = set()
        frontier = [class_key]
        while frontier:  # the static type and its ancestors
            key = frontier.pop()
            if key in seen:
                continue
            seen.add(key)
            cls = self.class_keys.get(key)
            if cls is None:
                continue
            module = key.split(":", 1)[0]
            if method in cls.methods:  # type: ignore[attr-defined]
                targets.add(f"{module}:{cls.name}.{method}")  # type: ignore[attr-defined]
            summary = self.graph.get(module)
            if summary is not None:
                for base in cls.bases:  # type: ignore[attr-defined]
                    base_key = self.resolve_class(summary, base)
                    if base_key is not None:
                        frontier.append(base_key)
        for sub_key in self._subclasses.get(class_key, ()):
            cls = self.class_keys.get(sub_key)
            if cls is not None and method in cls.methods:  # type: ignore[attr-defined]
                module = sub_key.split(":", 1)[0]
                targets.add(f"{module}:{cls.name}.{method}")  # type: ignore[attr-defined]
        return targets

    def _value_type(
        self,
        summary: ModuleSummary,
        fn: FunctionSummary,
        var: str,
        depth: int = 0,
    ) -> str:
        """Best-effort static type of local/param ``var`` (a raw name)."""
        if depth > 3:
            return ""
        local = fn.local_type(var)
        if local.startswith("@elem:"):
            container = self._value_type(
                summary, fn, local[len("@elem:"):], depth + 1
            )
            return element_type(container) or ""
        if local:
            return local
        annotation = fn.param_annotation(var)
        return clean_type(annotation) if annotation else ""

    def resolve_call(
        self,
        summary: ModuleSummary,
        fn: FunctionSummary,
        call: CallSite,
    ) -> Set[str]:
        """Function keys ``call`` (inside ``fn``) may invoke."""
        if call.kind == "name":
            return self._resolve_callable_name(summary, call.name)
        if call.kind == "dotted":
            resolved = self._resolve_alias(summary, call.name)
            split = self.graph.split_symbol(resolved)
            if split is None:
                return set()
            module, symbol = split
            target = self.graph.get(module)
            if target is None or not symbol:
                return set()
            if symbol in target.function_map():
                return {f"{module}:{symbol}"}
            head = symbol.split(".")[0]
            if head in target.class_map() and "." not in symbol:
                return self._constructor_targets(f"{module}:{head}")
            forwarded = target.import_map().get(head)
            if forwarded is not None and forwarded != resolved:
                rest = symbol.partition(".")[2]
                chained = f"{forwarded}.{rest}" if rest else forwarded
                return self.resolve_call(
                    target,
                    fn,
                    CallSite(call.line, call.col, "dotted", chained),
                )
            return set()
        if call.kind == "method":
            if call.name == "self" and "." in fn.qualname:
                class_name = fn.qualname.split(".")[0]
                class_key = f"{summary.module}:{class_name}"
                return self.method_targets(class_key, call.attr)
            type_name = self._value_type(summary, fn, call.name)
            if not type_name:
                return set()
            class_key = self.resolve_class(summary, type_name)
            if class_key is None:
                return set()
            return self.method_targets(class_key, call.attr)
        if call.kind == "ctor_method":
            class_key = self.resolve_class(summary, call.name)
            if class_key is None:
                return set()
            return self._constructor_targets(class_key) | self.method_targets(
                class_key, call.attr
            )
        return set()

    def _constructor_targets(self, class_key: str) -> Set[str]:
        return self.method_targets(class_key, "__init__") | self.method_targets(
            class_key, "__post_init__"
        )

    def _resolve_callable_name(
        self, summary: ModuleSummary, name: str
    ) -> Set[str]:
        if name in summary.function_map():
            return {f"{summary.module}:{name}"}
        if name in summary.class_map():
            return self._constructor_targets(f"{summary.module}:{name}")
        target = summary.import_map().get(name)
        if target is None:
            return set()
        split = self.graph.split_symbol(target)
        if split is None:
            return set()
        module, symbol = split
        imported = self.graph.get(module)
        if imported is None:
            return set()
        if not symbol:
            return set()
        if symbol in imported.function_map():
            return {f"{module}:{symbol}"}
        if symbol in imported.class_map():
            return self._constructor_targets(f"{module}:{symbol}")
        forwarded = imported.import_map().get(symbol)
        if forwarded is not None and forwarded != target:
            return self._resolve_callable_name(imported, symbol)
        return set()

    # -- call graph and reachability -----------------------------------

    def call_edges(self) -> Dict[str, FrozenSet[str]]:
        """``caller key -> callee keys``, resolved once and memoised."""
        if self._edges is None:
            edges: Dict[str, FrozenSet[str]] = {}
            for key, (summary, fn) in self.functions.items():
                targets: Set[str] = set()
                for call in fn.calls:
                    targets |= self.resolve_call(summary, fn, call)
                edges[key] = frozenset(targets)
            self._edges = edges
        return self._edges

    def worker_entrypoints(self) -> Dict[str, str]:
        """``entrypoint function key -> submitting function key``."""
        entrypoints: Dict[str, str] = {}
        for key, (summary, fn) in self.functions.items():
            for submit in fn.submits:
                if submit.callable_kind != "name":
                    continue
                for target in self._resolve_callable_name(
                    summary, submit.callable_name
                ):
                    entrypoints.setdefault(target, key)
        return entrypoints

    def worker_reachable(self) -> Dict[str, str]:
        """Functions executable inside a worker: ``key -> entrypoint key``.

        Includes the entrypoints themselves; the value records which
        entrypoint first reaches the function (for diagnostics).
        """
        edges = self.call_edges()
        reachable: Dict[str, str] = {}
        frontier: List[Tuple[str, str]] = [
            (entry, entry) for entry in sorted(self.worker_entrypoints())
        ]
        while frontier:
            key, entry = frontier.pop()
            if key in reachable:
                continue
            reachable[key] = entry
            for callee in edges.get(key, ()):
                if callee not in reachable:
                    frontier.append((callee, entry))
        return reachable
