"""The incremental crowdsourcing platform of Fig. 1 / Section V.

The batch :class:`~repro.mechanisms.OnlineGreedyMechanism` consumes a
whole round at once; this class executes the *same* mechanism the way a
deployed platform would:

* phones join and submit their bid in their (claimed) arrival slot,
* sensing queries arrive and are announced per slot,
* at slot close the newly announced tasks are allocated greedily to the
  cheapest active unallocated bids (Algorithm 1's loop body),
* each winner's payment is computed and settled in its reported
  departure slot (Algorithm 2 only needs bids that arrived by then, so
  the computation is causally valid),
* every state change is emitted as a typed event.

The integration tests assert that a full platform run produces an
outcome equal to the batch mechanism's on the same inputs.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.auction.events import (
    AuctionEvent,
    BidSubmitted,
    PaymentSettled,
    SlotClosed,
    TaskAllocated,
    TasksAnnounced,
    TaskUnserved,
)
from repro.errors import MechanismError
from repro.mechanisms.critical_payment import (
    algorithm2_payment,
    exact_critical_payment,
)
from repro.mechanisms.greedy_core import bid_sort_key
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.task import SensingTask, TaskSchedule
from repro.utils.validation import check_positive, check_type


class CrowdsourcingPlatform:
    """Slot-by-slot execution of the online mechanism.

    Parameters
    ----------
    num_slots:
        The round horizon ``m``.
    reserve_price:
        Refuse negative-claimed-welfare assignments (see
        :class:`~repro.mechanisms.OnlineGreedyMechanism`).
    payment_rule:
        ``"paper"`` (Algorithm 2) or ``"exact"`` (binary-search critical
        value).

    Usage: per slot, call :meth:`submit_bid` / :meth:`submit_tasks` in
    any order, then :meth:`close_slot`; after the last slot call
    :meth:`finalize`.
    """

    def __init__(
        self,
        num_slots: int,
        reserve_price: bool = False,
        payment_rule: str = "paper",
    ) -> None:
        check_type("num_slots", num_slots, int)
        check_positive("num_slots", num_slots)
        if payment_rule not in ("paper", "exact"):
            raise MechanismError(
                f"unknown payment_rule {payment_rule!r}"
            )
        self._num_slots = num_slots
        self._reserve_price = bool(reserve_price)
        self._payment_rule = payment_rule

        self._current_slot = 1
        self._finished = False
        self._all_bids: Dict[int, Bid] = {}
        self._pool: List[Tuple[Tuple[float, int, int], Bid]] = []
        self._tasks: List[SensingTask] = []
        self._pending_tasks: List[SensingTask] = []
        self._next_task_id = 0
        self._allocation: Dict[int, int] = {}
        self._win_slots: Dict[int, int] = {}
        self._payments: Dict[int, float] = {}
        self._payment_slots: Dict[int, int] = {}
        self._events: List[AuctionEvent] = []

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def current_slot(self) -> int:
        """The slot currently accepting submissions (1-based)."""
        return self._current_slot

    @property
    def num_slots(self) -> int:
        """The round horizon ``m``."""
        return self._num_slots

    @property
    def finished(self) -> bool:
        """Whether every slot has been closed."""
        return self._finished

    @property
    def events(self) -> Tuple[AuctionEvent, ...]:
        """All events emitted so far, in order."""
        return tuple(self._events)

    @property
    def pool_size(self) -> int:
        """Number of active, unallocated bids right now."""
        return sum(
            1
            for _, bid in self._pool
            if bid.departure >= self._current_slot
        )

    # ------------------------------------------------------------------
    # Submissions
    # ------------------------------------------------------------------
    def submit_bid(self, bid: Bid) -> None:
        """A phone joins in the current slot and submits its bid.

        The online model requires a phone to bid when it becomes active:
        ``bid.arrival`` must equal the current slot.
        """
        self._check_open()
        if bid.arrival != self._current_slot:
            raise MechanismError(
                f"phone {bid.phone_id} bids with arrival {bid.arrival} in "
                f"slot {self._current_slot}; online bids are submitted in "
                f"their arrival slot"
            )
        if bid.departure > self._num_slots:
            raise MechanismError(
                f"phone {bid.phone_id} claims departure {bid.departure} "
                f"beyond the round horizon {self._num_slots}"
            )
        if bid.phone_id in self._all_bids:
            raise MechanismError(
                f"phone {bid.phone_id} already submitted a bid this round"
            )
        self._all_bids[bid.phone_id] = bid
        heapq.heappush(self._pool, (bid_sort_key(bid), bid))
        self._events.append(
            BidSubmitted(
                slot=self._current_slot,
                phone_id=bid.phone_id,
                arrival=bid.arrival,
                departure=bid.departure,
                cost=bid.cost,
            )
        )

    def submit_tasks(self, count: int, value: float) -> List[SensingTask]:
        """Announce ``count`` tasks of ``value`` arriving this slot."""
        self._check_open()
        check_type("count", count, int)
        if count < 0:
            raise MechanismError(f"count must be >= 0, got {count}")
        created: List[SensingTask] = []
        existing = sum(
            1 for t in self._pending_tasks if t.slot == self._current_slot
        )
        for offset in range(count):
            task = SensingTask(
                task_id=self._next_task_id,
                slot=self._current_slot,
                index=existing + offset + 1,
                value=value,
            )
            self._next_task_id += 1
            self._pending_tasks.append(task)
            created.append(task)
        if count:
            self._events.append(
                TasksAnnounced(slot=self._current_slot, count=count)
            )
        return created

    # ------------------------------------------------------------------
    # Slot processing
    # ------------------------------------------------------------------
    def close_slot(self) -> None:
        """Allocate this slot's tasks, settle due payments, advance."""
        self._check_open()
        slot = self._current_slot

        for task in self._pending_tasks:
            chosen = self._pop_cheapest(slot, task.value)
            self._tasks.append(task)
            if chosen is None:
                self._events.append(
                    TaskUnserved(slot=slot, task_id=task.task_id)
                )
                continue
            self._allocation[task.task_id] = chosen.phone_id
            self._win_slots[chosen.phone_id] = slot
            self._events.append(
                TaskAllocated(
                    slot=slot,
                    task_id=task.task_id,
                    phone_id=chosen.phone_id,
                    claimed_cost=chosen.cost,
                )
            )
        self._pending_tasks = []

        self._settle_departures(slot)
        self._events.append(SlotClosed(slot=slot, pool_size=self.pool_size))

        if slot == self._num_slots:
            self._finished = True
        else:
            self._current_slot += 1

    def _pop_cheapest(self, slot: int, task_value: float) -> Optional[Bid]:
        """The cheapest active pooled bid, honouring the reserve price."""
        while self._pool:
            _, candidate = self._pool[0]
            if candidate.departure < slot:
                heapq.heappop(self._pool)
                continue
            if self._reserve_price and candidate.cost > task_value:
                return None
            return heapq.heappop(self._pool)[1]
        return None

    def _settle_departures(self, slot: int) -> None:
        """Pay every winner whose reported departure is this slot.

        Algorithm 2 only consumes bids that arrived by the winner's
        departure and tasks announced by then — all known now — so the
        payment computed here equals the batch mechanism's.
        """
        schedule_so_far = TaskSchedule(
            num_slots=self._num_slots, tasks=self._tasks
        )
        known_bids = list(self._all_bids.values())
        for phone_id, win_slot in self._win_slots.items():
            if phone_id in self._payments:
                continue
            winner = self._all_bids[phone_id]
            if winner.departure != slot:
                continue
            if self._payment_rule == "paper":
                amount = algorithm2_payment(
                    known_bids,
                    schedule_so_far,
                    winner,
                    win_slot,
                    reserve_price=self._reserve_price,
                )
            else:
                amount = exact_critical_payment(
                    known_bids,
                    schedule_so_far,
                    winner,
                    reserve_price=self._reserve_price,
                )
            self._payments[phone_id] = amount
            self._payment_slots[phone_id] = slot
            self._events.append(
                PaymentSettled(slot=slot, phone_id=phone_id, amount=amount)
            )

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finalize(self) -> AuctionOutcome:
        """The round's outcome; requires every slot to be closed."""
        if not self._finished:
            raise MechanismError(
                f"round not finished: slot {self._current_slot} of "
                f"{self._num_slots} still open"
            )
        schedule = TaskSchedule(num_slots=self._num_slots, tasks=self._tasks)
        return AuctionOutcome(
            bids=list(self._all_bids.values()),
            schedule=schedule,
            allocation=self._allocation,
            payments=self._payments,
            payment_slots=self._payment_slots,
        )

    def _check_open(self) -> None:
        if self._finished:
            raise MechanismError("the round has already finished")
