"""The incremental crowdsourcing platform of Fig. 1 / Section V.

The batch :class:`~repro.mechanisms.OnlineGreedyMechanism` consumes a
whole round at once; this class executes the *same* mechanism the way a
deployed platform would:

* phones join and submit their bid in their (claimed) arrival slot,
* sensing queries arrive and are announced per slot,
* at slot close the newly announced tasks are allocated greedily to the
  cheapest active unallocated bids (Algorithm 1's loop body),
* each winner's payment is computed and settled in its reported
  departure slot (Algorithm 2 only needs bids that arrived by then, so
  the computation is causally valid),
* every state change is emitted as a typed event.

The integration tests assert that a full platform run produces an
outcome equal to the batch mechanism's on the same inputs.

Fault recovery
--------------
Real smartphones are unreliable: they depart early without notice or
fail to hand in sensing results.  The platform supports both through
:meth:`~CrowdsourcingPlatform.report_dropout` and
:meth:`~CrowdsourcingPlatform.report_task_failure`.  Delivery is
confirmed when a winner's payment settles (its reported departure slot);
a winner that drops out or fails before then forfeits its task and its
payment (``PaymentWithheld``), and the platform reallocates the task
in-slot to the next cheapest active unallocated bid whose claimed window
covers the task's slot (a bounded retry chain, ``max_reassignments`` per
task).  When no faults are reported the behaviour — and the outcome — is
identical to the fault-free platform.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Set, Tuple

from repro import obs
from repro.auction.events import (
    AuctionEvent,
    BidSubmitted,
    PaymentSettled,
    PaymentWithheld,
    PhoneDropped,
    SlotClosed,
    TaskAllocated,
    TaskFailed,
    TaskReassigned,
    TasksAnnounced,
    TaskUnserved,
)
from repro.errors import MechanismError
from repro.mechanisms.critical_payment import (
    algorithm2_payment,
    exact_critical_payment,
)
from repro.mechanisms.greedy_core import bid_sort_key
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.model.task import SensingTask, TaskSchedule
from repro.utils.validation import check_positive, check_type


class CrowdsourcingPlatform:
    """Slot-by-slot execution of the online mechanism.

    Parameters
    ----------
    num_slots:
        The round horizon ``m``.
    reserve_price:
        Refuse negative-claimed-welfare assignments (see
        :class:`~repro.mechanisms.OnlineGreedyMechanism`).
    payment_rule:
        ``"paper"`` (Algorithm 2) or ``"exact"`` (binary-search critical
        value).
    max_reassignments:
        Bound on the per-task recovery chain: after this many
        reassignments a task that fails again is abandoned
        (``TaskUnserved``).

    Usage: per slot, call :meth:`submit_bid` / :meth:`submit_tasks` in
    any order, then :meth:`close_slot`; after the last slot call
    :meth:`finalize`.  :meth:`report_dropout` and
    :meth:`report_task_failure` may be called in any open slot.
    """

    def __init__(
        self,
        num_slots: int,
        reserve_price: bool = False,
        payment_rule: str = "paper",
        max_reassignments: int = 3,
    ) -> None:
        check_type("num_slots", num_slots, int)
        check_positive("num_slots", num_slots)
        if payment_rule not in ("paper", "exact"):
            raise MechanismError(
                f"unknown payment_rule {payment_rule!r}"
            )
        check_type("max_reassignments", max_reassignments, int)
        if max_reassignments < 0:
            raise MechanismError(
                f"max_reassignments must be >= 0, got {max_reassignments}"
            )
        self._num_slots = num_slots
        self._reserve_price = bool(reserve_price)
        self._payment_rule = payment_rule
        self._max_reassignments = max_reassignments

        self._current_slot = 1
        self._finished = False
        self._finalized = False
        self._all_bids: Dict[int, Bid] = {}
        self._pool: List[Tuple[Tuple[float, int, int], Bid]] = []
        self._tasks: List[SensingTask] = []
        self._tasks_by_id: Dict[int, SensingTask] = {}
        self._pending_tasks: List[SensingTask] = []
        self._next_task_id = 0
        self._allocation: Dict[int, int] = {}
        self._win_slots: Dict[int, int] = {}
        self._payments: Dict[int, float] = {}
        self._payment_slots: Dict[int, int] = {}
        self._events: List[AuctionEvent] = []
        # -- fault-recovery state ---------------------------------------
        self._dropped: Dict[int, int] = {}      # phone -> drop slot
        self._unreliable: Set[int] = set()      # will fail delivery
        self._failed: Dict[int, int] = {}       # phone -> failure slot
        self._withheld: Dict[int, int] = {}     # phone -> withhold slot
        self._delivered: Set[int] = set()       # delivery confirmed
        self._reassigned: Set[int] = set()      # won via reassignment
        self._reassign_counts: Dict[int, int] = {}  # task -> chain length

    def _emit(self, event: AuctionEvent) -> None:
        """Record one event: append to the log, export to telemetry."""
        self._events.append(event)
        obs.record_event(event)

    # ------------------------------------------------------------------
    # State inspection
    # ------------------------------------------------------------------
    @property
    def current_slot(self) -> int:
        """The slot currently accepting submissions (1-based)."""
        return self._current_slot

    @property
    def num_slots(self) -> int:
        """The round horizon ``m``."""
        return self._num_slots

    @property
    def finished(self) -> bool:
        """Whether every slot has been closed."""
        return self._finished

    @property
    def events(self) -> Tuple[AuctionEvent, ...]:
        """All events emitted so far, in order."""
        return tuple(self._events)

    @property
    def pool_size(self) -> int:
        """Number of active, unallocated bids right now."""
        return sum(
            1
            for _, bid in self._pool
            if bid.departure >= self._current_slot
            and bid.phone_id not in self._dropped
            and bid.phone_id not in self._failed
        )

    @property
    def dropped_phones(self) -> Dict[int, int]:
        """Copy of the ``phone_id -> slot`` early-departure record."""
        return dict(self._dropped)

    @property
    def failed_deliverers(self) -> Dict[int, int]:
        """Copy of the ``phone_id -> slot`` delivery-failure record."""
        return dict(self._failed)

    @property
    def withheld_payments(self) -> Dict[int, int]:
        """Copy of the ``phone_id -> slot`` payment-withhold record."""
        return dict(self._withheld)

    @property
    def delivered_phones(self) -> Tuple[int, ...]:
        """Phones whose delivery was confirmed (settled), sorted."""
        return tuple(sorted(self._delivered))

    @property
    def reassignment_counts(self) -> Dict[int, int]:
        """Copy of the ``task_id -> reassignments`` recovery record."""
        return dict(self._reassign_counts)

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    # Every mutating entry point validates through one of these public
    # ``validate_*`` methods *before* touching state.  They are public so
    # a write-ahead wrapper (``repro.durability.JournaledPlatform``) can
    # run the same checks before appending the command to its journal —
    # a rejected command must leave the journal unchanged.

    def validate_bid(self, bid: Bid) -> None:
        """Raise :class:`~repro.errors.MechanismError` unless ``bid``
        may be submitted right now (round open, arrival == current slot,
        departure within the horizon, phone not seen before)."""
        self._check_open()
        if bid.arrival != self._current_slot:
            raise MechanismError(
                f"phone {bid.phone_id} bids with arrival {bid.arrival} in "
                f"slot {self._current_slot}; online bids are submitted in "
                f"their arrival slot"
            )
        if bid.departure > self._num_slots:
            raise MechanismError(
                f"phone {bid.phone_id} claims departure {bid.departure} "
                f"beyond the round horizon {self._num_slots}"
            )
        if bid.phone_id in self._all_bids:
            raise MechanismError(
                f"phone {bid.phone_id} already submitted a bid this round"
            )

    def validate_task_submission(self, count: int, value: float) -> None:
        """Raise unless ``count`` tasks of ``value`` may be announced."""
        self._check_open()
        check_type("count", count, int)
        if count < 0:
            raise MechanismError(f"count must be >= 0, got {count}")
        if count:
            # Run the task constructor's own field validation before any
            # task is appended, so a bad value never half-announces.
            SensingTask(
                task_id=0, slot=self._current_slot, index=1, value=value
            )

    def validate_dropout(self, phone_id: int) -> None:
        """Raise unless ``phone_id`` may drop out in the current slot."""
        self._check_open()
        bid = self._all_bids.get(phone_id)
        if bid is None:
            raise MechanismError(
                f"cannot drop phone {phone_id}: it never submitted a bid"
            )
        if phone_id in self._dropped:
            raise MechanismError(
                f"phone {phone_id} already dropped out in slot "
                f"{self._dropped[phone_id]}"
            )
        if bid.departure < self._current_slot:
            raise MechanismError(
                f"phone {phone_id} reported departure {bid.departure} and "
                f"has already left; it cannot drop out in slot "
                f"{self._current_slot}"
            )

    def validate_task_failure(self, phone_id: int) -> None:
        """Raise unless ``phone_id`` may be marked a non-deliverer."""
        self._check_open()
        if phone_id not in self._all_bids:
            raise MechanismError(
                f"cannot mark phone {phone_id} as failing: it never "
                f"submitted a bid"
            )
        if phone_id in self._delivered:
            raise MechanismError(
                f"phone {phone_id} already delivered its task; it cannot "
                f"fail retroactively"
            )
        if phone_id in self._dropped:
            raise MechanismError(
                f"phone {phone_id} already dropped out; reporting a task "
                f"failure as well is redundant"
            )

    def validate_close(self) -> None:
        """Raise unless the current slot may be closed."""
        self._check_open()

    def validate_advance(self, slot: int) -> None:
        """Raise unless the round may advance to ``slot``."""
        self._check_open()
        check_type("slot", slot, int)
        if slot < self._current_slot:
            raise MechanismError(
                f"cannot advance to slot {slot}: slot "
                f"{self._current_slot} is already open (slots advance "
                f"monotonically)"
            )
        if slot > self._num_slots:
            raise MechanismError(
                f"cannot advance to slot {slot}: the round horizon is "
                f"{self._num_slots}"
            )

    def validate_finalize(self) -> None:
        """Raise unless the round may be finalized."""
        if self._finalized:
            raise MechanismError(
                "finalize() already called: a round produces exactly one "
                "outcome"
            )
        if not self._finished:
            raise MechanismError(
                f"round not finished: slot {self._current_slot} of "
                f"{self._num_slots} still open"
            )

    # ------------------------------------------------------------------
    # Submissions
    # ------------------------------------------------------------------
    def submit_bid(self, bid: Bid) -> None:
        """A phone joins in the current slot and submits its bid.

        The online model requires a phone to bid when it becomes active:
        ``bid.arrival`` must equal the current slot.
        """
        self.validate_bid(bid)
        self._all_bids[bid.phone_id] = bid
        heapq.heappush(self._pool, (bid_sort_key(bid), bid))
        self._emit(
            BidSubmitted(
                slot=self._current_slot,
                phone_id=bid.phone_id,
                arrival=bid.arrival,
                departure=bid.departure,
                cost=bid.cost,
            )
        )

    def submit_tasks(self, count: int, value: float) -> List[SensingTask]:
        """Announce ``count`` tasks of ``value`` arriving this slot."""
        self.validate_task_submission(count, value)
        created: List[SensingTask] = []
        existing = sum(
            1 for t in self._pending_tasks if t.slot == self._current_slot
        )
        for offset in range(count):
            task = SensingTask(
                task_id=self._next_task_id,
                slot=self._current_slot,
                index=existing + offset + 1,
                value=value,
            )
            self._next_task_id += 1
            self._pending_tasks.append(task)
            created.append(task)
        if count:
            self._emit(
                TasksAnnounced(slot=self._current_slot, count=count)
            )
        return created

    # ------------------------------------------------------------------
    # Fault reports
    # ------------------------------------------------------------------
    def report_dropout(self, phone_id: int) -> None:
        """A phone departed during the current slot, without notice.

        The phone leaves the pool immediately and can never be allocated
        again.  If it holds an allocation whose delivery was not yet
        confirmed (delivery is confirmed at payment settlement, i.e. the
        reported departure slot), the task fails, the payment is
        withheld, and the platform attempts an in-slot reallocation.
        """
        self.validate_dropout(phone_id)
        slot = self._current_slot
        self._dropped[phone_id] = slot
        self._emit(PhoneDropped(slot=slot, phone_id=phone_id))
        if phone_id in self._win_slots and phone_id not in self._delivered:
            self._fail_delivery(phone_id, reason="dropout")

    def report_task_failure(self, phone_id: int) -> None:
        """Mark a phone as a non-deliverer: it will fail its task.

        The phone behaves normally through bidding and allocation, but
        when its delivery would be confirmed (its reported departure
        slot) it hands in nothing — the task fails, the payment is
        withheld, and the platform attempts an in-slot reallocation.
        """
        self.validate_task_failure(phone_id)
        self._unreliable.add(phone_id)

    def _fail_delivery(self, phone_id: int, reason: str) -> None:
        """A winner did not deliver: forfeit task + payment, reallocate."""
        slot = self._current_slot
        task_id = next(
            tid for tid, pid in self._allocation.items() if pid == phone_id
        )
        del self._allocation[task_id]
        del self._win_slots[phone_id]
        self._failed[phone_id] = slot
        self._withheld[phone_id] = slot
        self._emit(
            TaskFailed(
                slot=slot, task_id=task_id, phone_id=phone_id, reason=reason
            )
        )
        self._emit(
            PaymentWithheld(slot=slot, phone_id=phone_id, reason=reason)
        )
        self._reassign(task_id, failed_phone=phone_id)

    def _reassign(self, task_id: int, failed_phone: int) -> None:
        """Reallocate a failed task to the next cheapest eligible bid.

        Eligibility: pooled (unallocated), still present, not dropped or
        failed, claimed window covering the task's slot (constraint (4)),
        and — with a reserve price — claimed cost at most the task value.
        The chain is bounded by ``max_reassignments`` per task.
        """
        slot = self._current_slot
        task = self._tasks_by_id[task_id]
        count = self._reassign_counts.get(task_id, 0)
        candidate = None
        if count < self._max_reassignments:
            candidate = self._pop_cheapest_covering(task)
        if candidate is None:
            self._emit(TaskUnserved(slot=slot, task_id=task_id))
            return
        self._reassign_counts[task_id] = count + 1
        self._allocation[task_id] = candidate.phone_id
        self._win_slots[candidate.phone_id] = task.slot
        self._reassigned.add(candidate.phone_id)
        obs.counter("platform.reassignments")
        self._emit(
            TaskReassigned(
                slot=slot,
                task_id=task_id,
                from_phone=failed_phone,
                to_phone=candidate.phone_id,
                claimed_cost=candidate.cost,
            )
        )

    def _pop_cheapest_covering(self, task: SensingTask) -> Optional[Bid]:
        """Cheapest pooled bid whose claimed window covers ``task``'s slot.

        Unlike :meth:`_pop_cheapest`, eligibility is not monotone in the
        heap order (a cheap bid may have arrived after the task's slot),
        so ineligible-but-alive entries are stashed and pushed back.
        """
        slot = self._current_slot
        stash: List[Tuple[Tuple[float, int, int], Bid]] = []
        chosen: Optional[Bid] = None
        while self._pool:
            key, candidate = heapq.heappop(self._pool)
            if (
                candidate.departure < slot
                or candidate.phone_id in self._dropped
                or candidate.phone_id in self._failed
            ):
                continue  # permanently gone; drop from the heap
            if self._reserve_price and candidate.cost > task.value:
                stash.append((key, candidate))
                break  # heap is cost-ordered: nobody cheaper remains
            if candidate.arrival > task.slot:
                stash.append((key, candidate))
                continue  # alive but cannot cover the task's slot
            chosen = candidate
            break
        for entry in stash:
            heapq.heappush(self._pool, entry)
        return chosen

    # ------------------------------------------------------------------
    # Slot processing
    # ------------------------------------------------------------------
    def close_slot(self) -> None:
        """Allocate this slot's tasks, settle due payments, advance."""
        self.validate_close()
        slot = self._current_slot

        with obs.span(
            "platform.slot", slot=slot, tasks=len(self._pending_tasks)
        ) as tel:
            events_before = len(self._events)
            for task in self._pending_tasks:
                chosen = self._pop_cheapest(slot, task.value)
                self._tasks.append(task)
                self._tasks_by_id[task.task_id] = task
                if chosen is None:
                    self._emit(
                        TaskUnserved(slot=slot, task_id=task.task_id)
                    )
                    continue
                self._allocation[task.task_id] = chosen.phone_id
                self._win_slots[chosen.phone_id] = slot
                self._emit(
                    TaskAllocated(
                        slot=slot,
                        task_id=task.task_id,
                        phone_id=chosen.phone_id,
                        claimed_cost=chosen.cost,
                    )
                )
            self._pending_tasks = []

            self._settle_departures(slot)
            self._emit(SlotClosed(slot=slot, pool_size=self.pool_size))
            tel.set_attribute("events", len(self._events) - events_before)

        # Live-telemetry breadcrumb: a heartbeat reader polling the
        # metrics registry sees how far the platform has advanced.
        obs.gauge("platform.progress.slot", slot)

        if slot == self._num_slots:
            self._finished = True
        else:
            self._current_slot += 1

    def _pop_cheapest(self, slot: int, task_value: float) -> Optional[Bid]:
        """The cheapest active pooled bid, honouring the reserve price."""
        while self._pool:
            _, candidate = self._pool[0]
            if (
                candidate.departure < slot
                or candidate.phone_id in self._dropped
                or candidate.phone_id in self._failed
            ):
                heapq.heappop(self._pool)
                continue
            if self._reserve_price and candidate.cost > task_value:
                return None
            return heapq.heappop(self._pool)[1]
        return None

    def _settle_departures(self, slot: int) -> None:
        """Confirm deliveries and pay winners departing this slot.

        Algorithm 2 only consumes bids that arrived by the winner's
        departure and tasks announced by then — all known now — so the
        payment computed here equals the batch mechanism's.

        A due winner previously marked unreliable
        (:meth:`report_task_failure`) fails instead of delivering; the
        resulting reallocation may hand the task to another phone that is
        *also* due this slot, so the scan repeats until no due winner
        remains (the chain is finite: every failure burns a phone).
        """
        schedule_so_far = TaskSchedule(
            num_slots=self._num_slots, tasks=self._tasks
        )
        known_bids = list(self._all_bids.values())
        while True:
            due = [
                (phone_id, win_slot)
                for phone_id, win_slot in self._win_slots.items()
                if phone_id not in self._payments
                and self._all_bids[phone_id].departure == slot
            ]
            if not due:
                return
            for phone_id, win_slot in due:
                if self._win_slots.get(phone_id) != win_slot:
                    continue  # reassigned away during this scan
                if phone_id in self._unreliable:
                    self._fail_delivery(phone_id, reason="no-delivery")
                    continue
                winner = self._all_bids[phone_id]
                if self._payment_rule == "paper":
                    amount = algorithm2_payment(
                        known_bids,
                        schedule_so_far,
                        winner,
                        win_slot,
                        reserve_price=self._reserve_price,
                    )
                else:
                    amount = exact_critical_payment(
                        known_bids,
                        schedule_so_far,
                        winner,
                        reserve_price=self._reserve_price,
                    )
                if phone_id in self._reassigned and amount < winner.cost:
                    # A recovery winner was not the greedy choice in its
                    # task's slot, so its critical value can sit below its
                    # claimed cost; floor the payment to preserve
                    # individual rationality for paying winners.
                    amount = winner.cost
                self._payments[phone_id] = amount
                self._payment_slots[phone_id] = slot
                self._delivered.add(phone_id)
                self._emit(
                    PaymentSettled(
                        slot=slot, phone_id=phone_id, amount=amount
                    )
                )

    def advance_to(self, slot: int) -> None:
        """Close empty slots until ``slot`` is the open slot.

        Convenience for sparse rounds.  Raises
        :class:`~repro.errors.MechanismError` on out-of-order advancement
        (a slot already closed) or a slot beyond the round horizon.
        """
        self.validate_advance(slot)
        while self._current_slot < slot:
            self.close_slot()

    # ------------------------------------------------------------------
    # Completion
    # ------------------------------------------------------------------
    def finalize(self) -> AuctionOutcome:
        """The round's outcome; requires every slot to be closed."""
        self.validate_finalize()
        self._finalized = True
        schedule = TaskSchedule(num_slots=self._num_slots, tasks=self._tasks)
        return AuctionOutcome(
            bids=list(self._all_bids.values()),
            schedule=schedule,
            allocation=self._allocation,
            payments=self._payments,
            payment_slots=self._payment_slots,
        )

    def _check_open(self) -> None:
        if self._finished:
            raise MechanismError("the round has already finished")
