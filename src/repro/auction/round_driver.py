"""Drive a scenario through the incremental platform.

:func:`replay_scenario` feeds a :class:`~repro.simulation.Scenario` into
:class:`~repro.auction.CrowdsourcingPlatform` exactly as a live round
would unfold — each phone submits (truthfully, or via its strategy) in
its claimed arrival slot, each slot's tasks are announced in that slot —
and returns the finalized outcome together with the event log.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.agents.base import BiddingStrategy
from repro.auction.events import AuctionEvent
from repro.auction.platform import CrowdsourcingPlatform
from repro.errors import SimulationError
from repro.model.bid import Bid
from repro.model.outcome import AuctionOutcome
from repro.simulation.scenario import Scenario


def replay_scenario(
    scenario: Scenario,
    reserve_price: bool = False,
    payment_rule: str = "paper",
    strategies: Optional[Mapping[int, BiddingStrategy]] = None,
    rng: Optional[np.random.Generator] = None,
) -> Tuple[AuctionOutcome, Tuple[AuctionEvent, ...]]:
    """Run ``scenario`` through the incremental platform.

    Returns the finalized :class:`~repro.model.AuctionOutcome` and the
    full ordered event log.  With default arguments the outcome is
    identical to ``OnlineGreedyMechanism().run(...)`` on the truthful
    bids (asserted by the integration tests).

    Raises
    ------
    SimulationError
        If ``strategies`` assigns a strategy to a phone id that does not
        exist in the scenario (a silent skip would make a typo in an
        experiment config unfalsifiable).
    """
    if strategies is not None:
        known = {profile.phone_id for profile in scenario.profiles}
        unknown = sorted(set(strategies) - known)
        if unknown:
            raise SimulationError(
                f"strategies assigned to phone ids {unknown} that do not "
                f"exist in the scenario (known ids: {sorted(known)})"
            )
    if strategies:
        bids = scenario.bids_from_strategies(strategies, rng)
    else:
        bids = scenario.truthful_bids()

    bids_by_arrival: Dict[int, List[Bid]] = {}
    for bid in bids:
        bids_by_arrival.setdefault(bid.arrival, []).append(bid)

    platform = CrowdsourcingPlatform(
        num_slots=scenario.num_slots,
        reserve_price=reserve_price,
        payment_rule=payment_rule,
    )
    for slot in range(1, scenario.num_slots + 1):
        for bid in bids_by_arrival.get(slot, ()):
            platform.submit_bid(bid)
        tasks = scenario.schedule.tasks_in_slot(slot)
        for task in tasks:
            platform.submit_tasks(1, value=task.value)
        platform.close_slot()

    return platform.finalize(), platform.events
